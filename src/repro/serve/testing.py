"""In-process server harness for tests and benchmarks.

``start_server_thread`` boots a full HTTP server (real sockets, real
event loop) on a background thread and returns a :class:`ServerHandle`
whose ``request``/``post`` helpers speak plain ``http.client``.  Tests
get end-to-end coverage — admission, batching, caching, draining — at
in-process latency, with deterministic teardown (``stop()`` runs the
same drain path a SIGTERM would).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.digest import canonical_json
from repro.errors import ReproError
from repro.serve.server import ServeConfig, ServeService, serve_forever


class ServerHandle:
    """A live background server: address, HTTP helpers, clean stop."""

    def __init__(self) -> None:
        self.port: int = 0
        self.service: Optional[ServeService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[BaseException] = None

    @property
    def address(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    # -- HTTP helpers ------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: float = 30.0,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange; returns (status, headers, body)."""
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            body = (
                canonical_json(payload).encode() if payload is not None else None
            )
            connection.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            data = response.read()
            headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, headers, data
        finally:
            connection.close()

    def post_json(
        self, path: str, payload: Dict[str, Any], timeout: float = 30.0
    ) -> Tuple[int, Any]:
        status, _headers, body = self.request(
            "POST", path, payload, timeout=timeout
        )
        return status, json.loads(body)

    def get_json(self, path: str, timeout: float = 30.0) -> Tuple[int, Any]:
        status, _headers, body = self.request("GET", path, timeout=timeout)
        return status, json.loads(body)

    # -- lifecycle ---------------------------------------------------------------
    def stop(self, timeout: float = 30.0) -> None:
        """Drain and shut the server down (idempotent)."""
        if self._thread is None or self._loop is None or self._stop is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - hang safety net
            raise ReproError("server thread did not stop within the timeout")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_server_thread(
    config: Optional[ServeConfig] = None, boot_timeout: float = 30.0
) -> ServerHandle:
    """Boot a server on a daemon thread; returns once the socket is bound."""
    config = config if config is not None else ServeConfig(port=0)
    handle = ServerHandle()
    booted = threading.Event()

    async def main() -> None:
        stop = asyncio.Event()
        handle._loop = asyncio.get_running_loop()
        handle._stop = stop

        def ready(service: ServeService, port: int) -> None:
            handle.service = service
            handle.port = port
            booted.set()

        # Setting ``stop`` from another thread (via call_soon_threadsafe)
        # is the harness's SIGTERM: serve_forever drains and returns.
        await serve_forever(
            config, ready=ready, install_signals=False, stop_event=stop
        )

    def thread_main() -> None:
        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - boot failures
            handle._failure = exc
        finally:
            booted.set()

    thread = threading.Thread(
        target=thread_main, name="usfq-serve", daemon=True
    )
    handle._thread = thread
    thread.start()
    if not booted.wait(boot_timeout):
        raise ReproError("server did not boot within the timeout")
    if handle._failure is not None:
        raise ReproError(f"server failed to boot: {handle._failure!r}")
    if handle.service is None:
        raise ReproError("server thread exited before binding a socket")
    return handle
