"""Content-addressed response cache.

Keys come from :meth:`repro.serve.protocol.Request.cache_key`: the
source-tree digest crossed with the canonical JSON of the request.  The
digest makes the cache self-invalidating — edit any ``repro`` module and
every key changes, so a restarted server can never serve results computed
by older code (the same property :class:`repro.runner.cache.ResultCache`
gives experiment manifests, applied to a serving hot path).

Values are the fully rendered response **bytes**.  Caching the bytes (not
the result dict) is what makes the warm path byte-identical to the cold
path by construction — there is no second render that could diverge.

The cache lives on the event-loop thread and is only touched from
coroutines, so plain dict operations need no locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError


class ResponseCache:
    """A bounded LRU of rendered response bytes."""

    def __init__(self, max_entries: int = 4096):
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[bytes]:
        """The cached response, freshened to most-recently-used; or None."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, response: bytes) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail when full."""
        if self.max_entries == 0:
            return
        self._entries[key] = response
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
