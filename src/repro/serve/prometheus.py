"""Render a :class:`repro.trace.MetricsRegistry` as Prometheus text.

The exposition format (version 0.0.4) wants cumulative ``le`` buckets;
the registry's histograms store per-bucket counts, so the renderer
integrates them and appends the ``+Inf`` bucket, ``_sum`` and ``_count``
series.  Names are sanitised to the Prometheus grammar so any registry
(including simulation-side metrics merged into the server registry) can
be scraped as-is.
"""

from __future__ import annotations

import re
from typing import Any, Dict

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHAR = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitise(name: str) -> str:
    name = _BAD_CHAR.sub("_", name)
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a ``MetricsRegistry.to_dict()`` snapshot (sorted, stable)."""
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _sanitise(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _sanitise(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _sanitise(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += hist["bucket_counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(hist['total'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"
