"""``usfq-serve``: boot the accelerator service from the command line.

The listening line (``usfq-serve listening on http://host:port``) goes to
stdout and is flushed immediately — with ``--port 0`` that line is how a
spawning process (the load generator, the CI smoke job) learns the
ephemeral port.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.serve.server import ServeConfig, ServeService, serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="usfq-serve",
        description=(
            "Serve U-SFQ accelerator ops (DPU dot products, FIR filters, "
            "PE-array ops) over HTTP/JSON with micro-batched execution."
        ),
    )
    defaults = ServeConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port",
        type=int,
        default=defaults.port,
        help="TCP port (0 binds an ephemeral port, printed on stdout)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults.max_batch,
        help="lanes per coalesced dispatch; 1 disables coalescing",
    )
    parser.add_argument(
        "--max-wait-us",
        type=int,
        default=defaults.max_wait_us,
        help="batch window after a group's first request (microseconds)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=defaults.workers,
        help="worker processes (0 = inline execution in threads)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=defaults.max_pending,
        help="admission ceiling; beyond it requests get HTTP 429",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=defaults.cache_entries,
        help="response-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--drain-grace-s",
        type=float,
        default=defaults.drain_grace_s,
        help="seconds to wait for in-flight work on shutdown",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        workers=args.workers,
        max_pending=args.max_pending,
        cache_entries=args.cache_entries,
        drain_grace_s=args.drain_grace_s,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ConfigurationError as exc:
        print(f"usfq-serve: {exc}", file=sys.stderr)
        return 2

    def ready(service: ServeService, port: int) -> None:
        print(
            f"usfq-serve listening on http://{config.host}:{port} "
            f"(max_batch={config.max_batch}, "
            f"max_wait_us={config.max_wait_us}, workers={config.workers})",
            flush=True,
        )

    try:
        asyncio.run(serve_forever(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    except OSError as exc:
        print(f"usfq-serve: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
