"""The execution tier: where a flushed batch actually runs.

Two shapes behind one ``async execute()`` interface:

* ``workers=0`` — **inline**: one in-process :class:`ComputeEngine`
  called through a thread pool (the event loop must never block on a
  simulation; the GIL serialises the work but admission/caching/batching
  stay responsive).  Right for tests and single-tenant use.
* ``workers>=1`` — a pool of :class:`repro.parallel.ProcessActor`
  workers, each owning its own engine (and its own compiled-circuit
  memo).  Batches are handed to a free actor; actors run truly in
  parallel across cores.  A worker that *dies* mid-batch (OOM-kill,
  segfault) surfaces as :class:`~repro.parallel.WorkerCrashed`: the tier
  restarts the actor and retries the batch once — safe because every op
  is a pure function of its request — before giving up.

Handing a blocking ``actor.call`` to the loop's thread pool keeps the
asyncio side single-colour: the batcher just awaits ``execute()``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.parallel import ProcessActor, WorkerCrashed
from repro.serve.engine import ComputeEngine
from repro.trace import MetricsRegistry


def _worker_factory() -> Any:
    """Build the actor-side handler (runs inside the worker process)."""
    engine = ComputeEngine()

    def handler(command: str, payload: Any) -> Any:
        if command == "execute":
            return engine.execute_group(
                payload["op"], payload["config"], payload["operands"]
            )
        if command == "warm":
            return engine.warm(payload["op"], payload["config"])
        if command == "ping":
            return "pong"
        raise ValueError(f"unknown worker command {command!r}")

    return handler


class ExecutionTier:
    """Uniform async execution over inline threads or actor processes."""

    def __init__(
        self, workers: int = 0, metrics: Optional[MetricsRegistry] = None
    ):
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._threads = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="serve-exec"
        )
        self._engine: Optional[ComputeEngine] = None
        self._actors: List[ProcessActor] = []
        self._free: "Optional[asyncio.Queue[int]]" = None
        if workers == 0:
            self._engine = ComputeEngine()
        else:
            self._actors = [
                ProcessActor(_worker_factory) for _ in range(workers)
            ]

    def _free_queue(self) -> "asyncio.Queue[int]":
        # Built lazily so construction does not require a running loop.
        if self._free is None:
            self._free = asyncio.Queue()
            for index in range(len(self._actors)):
                self._free.put_nowait(index)
        return self._free

    async def execute(
        self,
        op: str,
        config: Dict[str, Any],
        operands_list: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run one batch group; returns results in request order."""
        loop = asyncio.get_running_loop()
        if self._engine is not None:
            return await loop.run_in_executor(
                self._threads,
                self._engine.execute_group,
                op,
                config,
                operands_list,
            )
        payload = {"op": op, "config": config, "operands": operands_list}
        index = await self._free_queue().get()
        actor = self._actors[index]
        try:
            try:
                return await loop.run_in_executor(
                    self._threads, actor.call, "execute", payload
                )
            except WorkerCrashed:
                # The batch may or may not have run; every op is pure, so
                # a single retry on a fresh process is always safe.
                self.metrics.counter("serve_worker_restarts_total").inc()
                await loop.run_in_executor(self._threads, actor.restart)
                return await loop.run_in_executor(
                    self._threads, actor.call, "execute", payload
                )
        finally:
            self._free_queue().put_nowait(index)

    async def warm(self, op: str, config: Dict[str, Any]) -> None:
        """Pre-compile ``config`` everywhere (benchmark/boot warmup)."""
        loop = asyncio.get_running_loop()
        if self._engine is not None:
            await loop.run_in_executor(
                self._threads, self._engine.warm, op, config
            )
            return
        payload = {"op": op, "config": config}
        for actor in self._actors:
            await loop.run_in_executor(
                self._threads, actor.call, "warm", payload
            )

    def close(self) -> None:
        for actor in self._actors:
            actor.close()
        self._threads.shutdown(wait=False, cancel_futures=True)
