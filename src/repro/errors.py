"""Exception hierarchy for the U-SFQ reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the event-driven pulse simulator reaches an invalid state."""


class NetlistError(ReproError):
    """Raised for wiring mistakes: unknown ports, double-driven inputs, etc."""


class EncodingError(ReproError):
    """Raised when a value cannot be represented in the requested encoding."""


class ConfigurationError(ReproError):
    """Raised when a block is constructed with unusable parameters."""


class VerificationError(ReproError):
    """Raised by the conformance harness for malformed netlist specs,
    corpus entries, or unusable generator/oracle configurations."""


class SynthesisError(ReproError):
    """Raised by the synthesis frontend for malformed dataflow specs,
    type/encoding violations, or unsatisfiable timing constraints."""
