"""Shared process-pool plumbing for the runner and the shard engine.

Two execution shapes live here:

* :func:`pool_map` — the stateless fan-out the experiment runner uses:
  map a picklable function over work units, results in submission order,
  serial fallback when a pool cannot help.  Extracted verbatim from
  ``repro.runner.engine`` so the runner and :class:`repro.shard.engine.
  ShardSimulator` share one implementation (runner behaviour is locked
  byte-identical by the runner test suite).

* :class:`ProcessActor` — the stateful shape the shard engine needs: a
  persistent worker process owning long-lived state (a sealed shard
  kernel), serving a request/response command loop over a pipe.  Several
  actors progress concurrently because :meth:`ProcessActor.submit` does
  not wait for the reply; callers broadcast commands to all actors, then
  collect with :meth:`ProcessActor.result`.

:func:`resolve_jobs` is the one place a user-facing ``--jobs`` value
(``"auto"``, a number, or ``None``) becomes a concrete worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.errors import ConfigurationError, ReproError

_T = TypeVar("_T")
_R = TypeVar("_R")


class WorkerError(ReproError):
    """Raised in the parent when a worker process fails or disappears.

    Carries the worker-side traceback (when one was captured) so the
    failure is diagnosable without attaching to the child."""


class WorkerCrashed(WorkerError):
    """The worker *process* died (killed, segfaulted, exited) mid-command.

    Distinct from a plain :class:`WorkerError` (the handler raised but the
    process is fine): after a crash the actor cannot serve again until
    :meth:`ProcessActor.restart` rebuilds it, and the command that was in
    flight may or may not have executed — callers decide whether a retry
    is safe."""


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Resolve a user-facing ``--jobs`` value to a worker count.

    ``"auto"`` (case-insensitive) and ``None`` resolve to
    ``os.cpu_count()``; integers (or integer strings) pass through.
    Raises :class:`~repro.errors.ConfigurationError` for zero, negative,
    or unparseable values, so CLIs surface a clean exit-code-2 message.
    """
    if jobs is None:
        return os.cpu_count() or 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            raise ConfigurationError(
                f"invalid jobs value {jobs!r}: expected a positive integer "
                "or 'auto'"
            ) from None
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def pool_map(
    fn: Callable[[_T], _R], items: Sequence[_T], jobs: int
) -> List[_R]:
    """Map ``fn`` over ``items``, results in submission order.

    Runs serially when ``jobs <= 1`` or there is at most one item (a pool
    cannot help and its spawn cost would dominate); otherwise fans out
    across a :class:`~concurrent.futures.ProcessPoolExecutor`.  ``fn``
    and every item must be picklable in the pooled case.
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


# -- persistent actors ---------------------------------------------------------
def _actor_main(conn, factory, args, kwargs) -> None:
    """Worker-process loop: build the handler, then serve commands.

    The handler is ``factory(*args, **kwargs)``; each pipe message is a
    ``(command, payload)`` pair answered with ``("ok", result)`` or
    ``("error", traceback_text)``.  ``None`` shuts the loop down.
    """
    try:
        handler = factory(*args, **kwargs)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", None))  # ready handshake
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            command, payload = message
            try:
                conn.send(("ok", handler(command, payload)))
            except BaseException:
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class ProcessActor:
    """A persistent worker process serving a request/response loop.

    ``factory`` (a picklable, module-level callable) runs once inside the
    child and returns a *handler*: ``handler(command, payload) -> result``.
    The parent talks to it with :meth:`call`, or — to keep several actors
    busy at once — :meth:`submit` to all of them first and :meth:`result`
    afterwards.  One request may be outstanding per actor.

    Construction does not wait for the child's handler to finish building
    (K actors boot concurrently); factory failures surface on the first
    :meth:`result`/:meth:`call` as :class:`WorkerError`.
    """

    def __init__(self, factory: Callable[..., Any], *args: Any, **kwargs: Any):
        self._factory = factory
        self._args = args
        self._kwargs = kwargs
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self._conn = parent_conn
        self._process = multiprocessing.Process(
            target=_actor_main,
            args=(child_conn, self._factory, self._args, self._kwargs),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._ready = False
        self._closed = False

    def is_alive(self) -> bool:
        """True while the worker process exists and has not exited."""
        return not self._closed and self._process.is_alive()

    def restart(self) -> None:
        """Tear the worker down (if anything is left) and spawn a fresh one.

        The replacement runs the same ``factory(*args, **kwargs)``; any
        reply still in flight from the old process is discarded.  Safe to
        call after :class:`WorkerCrashed`, after :meth:`close`, or on a
        healthy actor (which is simply recycled)."""
        self.close()
        self._spawn()

    def _recv(self) -> Any:
        # Poll in small slices so a worker that dies *without* closing the
        # pipe (SIGKILL during a long command never flushes buffers; an
        # inherited descriptor can keep the pipe open) surfaces as a typed
        # crash instead of a parent blocked on recv() forever.  Buffered
        # replies win over death detection: a worker that answered and then
        # exited still delivers its answer.
        while True:
            try:
                if self._conn.poll(0.05):
                    break
            except (OSError, ValueError):
                raise WorkerCrashed(
                    "worker pipe closed "
                    f"(exitcode={self._process.exitcode})"
                ) from None
            if not self._process.is_alive() and not self._conn.poll(0):
                raise WorkerCrashed(
                    "worker process died before replying "
                    f"(exitcode={self._process.exitcode})"
                )
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError):
            # EOFError: clean close without a reply.  OSError (notably
            # ConnectionResetError): the peer was killed hard and the
            # kernel reset the socketpair.  Both mean the same thing here.
            raise WorkerCrashed(
                "worker process died before replying "
                f"(exitcode={self._process.exitcode})"
            ) from None
        if status != "ok":
            raise WorkerError(f"worker command failed:\n{payload}")
        return payload

    def submit(self, command: str, payload: Any = None) -> None:
        """Send one command without waiting for its reply."""
        if self._closed:
            raise WorkerError("actor is closed")
        try:
            self._conn.send((command, payload))
        except (BrokenPipeError, OSError):
            raise WorkerCrashed(
                "worker process is gone; cannot submit "
                f"(exitcode={self._process.exitcode})"
            ) from None

    def result(self) -> Any:
        """Receive the reply to the oldest un-collected :meth:`submit`."""
        if not self._ready:
            self._recv()  # the ready handshake (or the factory's error)
            self._ready = True
        return self._recv()

    def call(self, command: str, payload: Any = None) -> Any:
        """``submit`` + ``result`` in one step."""
        self.submit(command, payload)
        return self.result()

    def close(self) -> None:
        """Shut the worker down (idempotent; terminates if it lingers)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - hang safety net
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()

    def __enter__(self) -> "ProcessActor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def broadcast(
    actors: Iterable[ProcessActor], command: str, payloads: Optional[Sequence[Any]] = None
) -> List[Any]:
    """Send one command to every actor, then collect all replies.

    All actors compute concurrently (submits complete before the first
    result is awaited).  ``payloads`` gives each actor its own payload;
    omitted, every actor receives ``None``.
    """
    actors = list(actors)
    if payloads is None:
        payloads = [None] * len(actors)
    for actor, payload in zip(actors, payloads):
        actor.submit(command, payload)
    return [actor.result() for actor in actors]
