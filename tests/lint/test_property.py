"""Property test: randomly generated *legal* netlists always lint clean.

The generator only ever uses the constructions the design rules permit —
splitter-mediated fanout, merger-mediated fan-in, every input driven,
every leaf output probed — so whatever topology Hypothesis assembles,
the DRC must have nothing to say at error severity.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cells import Jtl, Merger, Splitter  # noqa: E402
from repro.lint import Severity, lint_circuit  # noqa: E402
from repro.pulsesim import Circuit  # noqa: E402


def build_legal_netlist(ops, fanout_choices):
    """Grow a legal netlist from a random op sequence.

    Maintains a frontier of open (element, port) outputs.  Each op either
    extends an output through a JTL, legally doubles it through a
    splitter, or legally merges two outputs.  Finally every remaining
    open output is probed, so nothing dangles.
    """
    circuit = Circuit("random")
    first = circuit.add(Jtl("entry"))
    entries = [(first, "a")]
    frontier = [(first, "q")]
    counter = 0

    for op in ops:
        counter += 1
        if op == "extend":
            src, port = frontier.pop(0)
            jtl = circuit.add(Jtl(f"jtl{counter}"))
            circuit.connect(src, port, jtl, "a")
            frontier.append((jtl, "q"))
        elif op == "split":
            src, port = frontier.pop(0)
            split = circuit.add(Splitter(f"split{counter}"))
            circuit.connect(src, port, split, "a")
            frontier.append((split, "q1"))
            frontier.append((split, "q2"))
        elif op == "merge" and len(frontier) >= 2:
            pick = fanout_choices[counter % len(fanout_choices)]
            a = frontier.pop(pick % len(frontier))
            b = frontier.pop(0)
            # Generous dead time would trip the (warning-level) collision
            # rule; a zero-window merger keeps the *error* claim sharp.
            merger = circuit.add(Merger(f"merge{counter}", dead_time=0))
            circuit.connect(a[0], a[1], merger, "a")
            circuit.connect(b[0], b[1], merger, "b")
            frontier.append((merger, "q"))

    for element, port in frontier:
        circuit.probe(element, port)
    return circuit, entries


@given(
    ops=st.lists(
        st.sampled_from(["extend", "split", "merge"]), min_size=1, max_size=40
    ),
    fanout_choices=st.lists(st.integers(0, 7), min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_random_legal_netlists_lint_clean(ops, fanout_choices):
    circuit, entries = build_legal_netlist(ops, fanout_choices)
    report = lint_circuit(circuit, entry_points=entries)
    assert not report.errors, report.format_text()
    # Legal constructions also produce no structural warnings (collision
    # windows were generated away; everything is driven and observed).
    non_timing = [d for d in report.warnings if d.rule != "merger-collision"]
    assert not non_timing, report.format_text()


@given(extra_sinks=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_random_illegal_fanout_always_caught(extra_sinks):
    """Dual property: implicit fanout of any width is always an error."""
    circuit = Circuit("bad")
    src = circuit.add(Jtl("src"))
    for i in range(1 + extra_sinks):
        sink = circuit.add(Jtl(f"sink{i}"))
        circuit.connect(src, "q", sink, "a")
        circuit.probe(sink, "q")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    hits = [
        d
        for d in report.by_rule("implicit-fanout")
        if d.severity is Severity.ERROR
    ]
    assert hits
