"""The ``usfq-lint`` / ``python -m repro.lint`` command-line interface."""

import json

import pytest

from repro.lint.blocks import SHIPPED_BLOCKS
from repro.lint.cli import main
from repro.lint.rules import RULES


def test_list_blocks(capsys):
    assert main(["--list-blocks"]) == 0
    out = capsys.readouterr().out
    for name in SHIPPED_BLOCKS:
        assert name in out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in RULES:
        assert name in out


def test_single_block_text_output(capsys):
    assert main(["pnm"]) == 0
    out = capsys.readouterr().out
    assert "lint pnm" in out
    assert "linted 1 block(s)" in out


def test_all_blocks_exits_zero_on_errors_policy(capsys):
    # Acceptance criterion: zero errors over every shipped block.
    assert main(["--all-blocks"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_json_output_is_machine_readable(capsys):
    assert main(["--json", "multiplier-unipolar", "balancer"]) == 0
    payload = json.loads(capsys.readouterr().out)
    targets = [r["target"] for r in payload]
    assert targets[0].startswith("multiplier_unipolar")
    assert targets[1].startswith("balancer")
    assert all(r["ok"] for r in payload)


def test_fail_on_warning_trips_exit_code():
    # The balancer legitimately warns (coincident merger arrivals), so
    # gating at `warning` must flip the exit code despite zero errors.
    assert main(["balancer", "--fail-on", "warning"]) == 1
    assert main(["balancer", "--fail-on", "error"]) == 0
    assert main(["balancer", "--fail-on", "never"]) == 0


def test_cli_suppress_drops_rule_and_accounts_for_it(capsys):
    assert main(["balancer", "--suppress", "merger-collision",
                 "--fail-on", "warning"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out
    assert "[warning] merger-collision" not in out


def test_verbose_shows_info_notes(capsys):
    main(["pnm", "--verbose"])
    out = capsys.readouterr().out
    assert "jj-budget" in out


def test_unknown_block_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["no-such-block"])
    assert excinfo.value.code == 2
    assert "unknown block" in capsys.readouterr().err


def test_unknown_suppress_rule_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["pnm", "--suppress", "no-such-rule"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "no-such-rule" in err


def test_no_targets_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
    assert "nothing to lint" in capsys.readouterr().err
