"""Acceptance gate: every shipped structural block lints error-free."""

import pytest

from repro.lint import SHIPPED_BLOCKS, Severity, lint_all_blocks, lint_shipped_block


@pytest.mark.parametrize("name", sorted(SHIPPED_BLOCKS))
def test_shipped_block_has_zero_errors(name):
    report = lint_shipped_block(name)
    assert report.ok, report.format_text()


@pytest.mark.parametrize("name", sorted(SHIPPED_BLOCKS))
def test_shipped_block_jj_budget_within_tolerance(name):
    report = lint_shipped_block(name)
    divergent = [
        d for d in report.by_rule("jj-budget") if d.severity > Severity.INFO
    ]
    assert not divergent, report.format_text()


def test_registry_covers_the_paper_datapath():
    # The acceptance list from the issue: multiplier, balancer, adder,
    # PNM, DPU, structural FIR, and the CGRA fabric must all be lintable.
    expected = {
        "multiplier-unipolar",
        "multiplier-bipolar",
        "balancer",
        "adder-merger",
        "counting-network",
        "pnm",
        "dpu",
        "pe",
        "structural-fir",
        "cgra-fabric",
    }
    assert set(SHIPPED_BLOCKS) == expected


def test_lint_all_blocks_matches_registry_order():
    reports = lint_all_blocks()
    assert len(reports) == len(SHIPPED_BLOCKS)
    assert all(r.ok for r in reports)
