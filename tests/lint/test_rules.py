"""Every lint rule: one minimal failing circuit and one passing circuit.

Each test builds the smallest netlist that violates exactly one design
rule, asserts the rule fires there, and asserts it stays silent on the
corrected construction.
"""

import pytest

from repro.cells import Dff, Inverter, Jtl, Merger, Ndro, Splitter
from repro.cells.interconnect import IdealMerger
from repro.lint import LintConfig, Severity, lint_circuit
from repro.pulsesim import Circuit


def rule_hits(report, rule, severity=None):
    hits = report.by_rule(rule)
    if severity is not None:
        hits = [d for d in hits if d.severity is severity]
    return hits


# -- implicit-fanout -----------------------------------------------------------
def test_implicit_fanout_flagged():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    s1 = circuit.add(Jtl("s1"))
    s2 = circuit.add(Jtl("s2"))
    circuit.connect(src, "q", s1, "a")
    circuit.connect(src, "q", s2, "a")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    (hit,) = rule_hits(report, "implicit-fanout", Severity.ERROR)
    assert hit.element == "src" and hit.port == "q"


def test_splitter_mediated_fanout_clean():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    split = circuit.add(Splitter("split"))
    s1 = circuit.add(Jtl("s1"))
    s2 = circuit.add(Jtl("s2"))
    circuit.connect(src, "q", split, "a")
    circuit.connect(split, "q1", s1, "a")
    circuit.connect(split, "q2", s2, "a")
    circuit.probe(s1, "q")
    circuit.probe(s2, "q")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    assert not rule_hits(report, "implicit-fanout")
    assert report.ok


# -- unmerged-fanin ------------------------------------------------------------
def test_unmerged_fanin_flagged():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    sink = circuit.add(Jtl("sink"))
    circuit.connect(a, "q", sink, "a")
    circuit.connect(b, "q", sink, "a")
    circuit.probe(sink, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a"), (b, "a")])
    (hit,) = rule_hits(report, "unmerged-fanin", Severity.ERROR)
    assert hit.element == "sink" and hit.port == "a"


def test_merger_mediated_fanin_clean():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    merger = circuit.add(Merger("m"))
    sink = circuit.add(Jtl("sink"))
    circuit.connect(a, "q", merger, "a")
    circuit.connect(b, "q", merger, "b")
    circuit.connect(merger, "q", sink, "a")
    circuit.probe(sink, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a"), (b, "a")])
    assert not rule_hits(report, "unmerged-fanin", Severity.ERROR)


def test_shared_merger_input_port_is_an_info_note():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    merger = circuit.add(Merger("m"))
    circuit.connect(a, "q", merger, "a")
    circuit.connect(b, "q", merger, "a")  # both onto one merger leg
    circuit.probe(merger, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a"), (b, "a")])
    (hit,) = rule_hits(report, "unmerged-fanin")
    assert hit.severity is Severity.INFO


# -- floating-input ------------------------------------------------------------
def test_floating_input_flagged():
    circuit = Circuit()
    merger = circuit.add(Merger("m"))
    circuit.probe(merger, "q")
    report = lint_circuit(circuit, entry_points=[(merger, "a")])
    (hit,) = rule_hits(report, "floating-input", Severity.WARNING)
    assert hit.element == "m" and hit.port == "b"


def test_fully_driven_inputs_clean():
    circuit = Circuit()
    merger = circuit.add(Merger("m"))
    circuit.probe(merger, "q")
    report = lint_circuit(circuit, entry_points=[(merger, "a"), (merger, "b")])
    assert not rule_hits(report, "floating-input")


# -- dead-element --------------------------------------------------------------
def test_dead_element_flagged():
    circuit = Circuit()
    live = circuit.add(Jtl("live"))
    dead = circuit.add(Jtl("dead"))
    orphan = circuit.add(Jtl("orphan"))
    circuit.connect(dead, "q", orphan, "a")
    circuit.probe(live, "q")
    circuit.probe(orphan, "q")
    report = lint_circuit(circuit, entry_points=[(live, "a")])
    names = {d.element for d in rule_hits(report, "dead-element")}
    assert names == {"dead", "orphan"}


def test_reachable_elements_clean():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", b, "a")
    circuit.probe(b, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a")])
    assert not rule_hits(report, "dead-element")


def test_missing_entry_points_reported_once():
    circuit = Circuit()
    circuit.add(Jtl("a"))
    report = lint_circuit(circuit)
    (hit,) = rule_hits(report, "dead-element")
    assert "no entry points" in hit.message


# -- dangling-output -----------------------------------------------------------
def test_dangling_output_flagged():
    circuit = Circuit()
    ndro = circuit.add(Ndro("cell"))
    report = lint_circuit(
        circuit, entry_points=[(ndro, "set"), (ndro, "clk")]
    )
    (hit,) = rule_hits(report, "dangling-output", Severity.WARNING)
    assert hit.element == "cell" and hit.port == "q"


def test_probed_output_clean():
    circuit = Circuit()
    ndro = circuit.add(Ndro("cell"))
    circuit.probe(ndro, "q")
    report = lint_circuit(circuit, entry_points=[(ndro, "set"), (ndro, "clk")])
    assert not rule_hits(report, "dangling-output", Severity.WARNING)


def test_jtl_termination_is_an_info_note():
    circuit = Circuit()
    jtl = circuit.add(Jtl("term"))
    report = lint_circuit(circuit, entry_points=[(jtl, "a")])
    (hit,) = rule_hits(report, "dangling-output")
    assert hit.severity is Severity.INFO


# -- combinational-loop --------------------------------------------------------
def test_combinational_loop_flagged():
    circuit = Circuit()
    merger = circuit.add(Merger("m"))
    jtl = circuit.add(Jtl("j"))
    circuit.connect(merger, "q", jtl, "a")
    circuit.connect(jtl, "q", merger, "b")
    circuit.probe(merger, "q")
    report = lint_circuit(circuit, entry_points=[(merger, "a")])
    (hit,) = rule_hits(report, "combinational-loop", Severity.ERROR)
    assert "m" in hit.message and "j" in hit.message


def test_storage_gated_loop_clean():
    circuit = Circuit()
    merger = circuit.add(Merger("m"))
    dff = circuit.add(Dff("d"))
    circuit.connect(merger, "q", dff, "d")
    circuit.connect(dff, "q", merger, "b")
    circuit.probe(merger, "q")
    report = lint_circuit(
        circuit, entry_points=[(merger, "a"), (dff, "clk")]
    )
    assert not rule_hits(report, "combinational-loop")


def test_self_loop_flagged():
    circuit = Circuit()
    merger = circuit.add(IdealMerger("m"))
    circuit.connect(merger, "q", merger, "b")
    circuit.probe(merger, "q")
    report = lint_circuit(circuit, entry_points=[(merger, "a")])
    assert rule_hits(report, "combinational-loop", Severity.ERROR)


# -- no-clock-driver -----------------------------------------------------------
def test_undriven_clock_flagged():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    inverter = circuit.add(Inverter("inv"))
    circuit.connect(src, "q", inverter, "a")
    circuit.probe(inverter, "q")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    (hit,) = rule_hits(report, "no-clock-driver", Severity.ERROR)
    assert hit.element == "inv"


def test_driven_clock_clean():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    inverter = circuit.add(Inverter("inv"))
    circuit.connect(src, "q", inverter, "a")
    circuit.probe(inverter, "q")
    report = lint_circuit(
        circuit, entry_points=[(src, "a"), (inverter, "clk")]
    )
    assert not rule_hits(report, "no-clock-driver")


def test_dff2_needs_only_one_control_line():
    """Either readout strobe satisfies the clocked-cell rule."""
    from repro.cells import Dff2

    circuit = Circuit()
    cell = circuit.add(Dff2("d2"))
    circuit.probe(cell, "y1")
    circuit.probe(cell, "y2")
    report = lint_circuit(circuit, entry_points=[(cell, "a"), (cell, "c1")])
    assert not rule_hits(report, "no-clock-driver")


# -- suppression ---------------------------------------------------------------
def test_suppressed_rule_moves_to_suppressed_bucket():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    s1 = circuit.add(Jtl("s1"))
    s2 = circuit.add(Jtl("s2"))
    circuit.connect(src, "q", s1, "a")
    circuit.connect(src, "q", s2, "a")
    config = LintConfig(suppress=frozenset({"implicit-fanout"}))
    report = lint_circuit(circuit, entry_points=[(src, "a")], config=config)
    assert not report.by_rule("implicit-fanout")
    assert any(d.rule == "implicit-fanout" for d in report.suppressed)


def test_unknown_suppression_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown rule"):
        LintConfig(suppress=frozenset({"no-such-rule"}))
