"""Report / Diagnostic / Severity plumbing."""

import json

import pytest

from repro.lint.report import Diagnostic, Report, Severity


def _diag(rule="implicit-fanout", severity=Severity.ERROR, element="x", port="q"):
    return Diagnostic(
        rule=rule,
        severity=severity,
        message="msg",
        element=element,
        port=port,
    )


def test_severity_ordering_and_str():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert str(Severity.WARNING) == "warning"


def test_severity_parse_round_trip():
    for level in Severity:
        assert Severity.parse(str(level)) is level
    assert Severity.parse("ERROR") is Severity.ERROR


def test_severity_parse_rejects_unknown():
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_diagnostic_location_and_render():
    diag = _diag(element="mul.bff0", port="t")
    assert diag.location == "mul.bff0.t"
    rendered = diag.render()
    assert "error" in rendered
    assert "implicit-fanout" in rendered
    assert "mul.bff0.t" in rendered


def test_report_buckets_and_worst():
    report = Report(
        target="t",
        diagnostics=[
            _diag(severity=Severity.INFO),
            _diag(severity=Severity.WARNING),
            _diag(severity=Severity.ERROR),
        ],
    )
    assert len(report.errors) == 1
    assert len(report.warnings) == 1
    assert len(report.infos) == 1
    assert report.worst() is Severity.ERROR
    assert not report.ok


def test_report_ok_with_only_notes():
    report = Report(target="t", diagnostics=[_diag(severity=Severity.INFO)])
    assert report.ok
    assert report.worst() is Severity.INFO


def test_fails_at_thresholds():
    report = Report(target="t", diagnostics=[_diag(severity=Severity.WARNING)])
    assert report.fails_at(Severity.WARNING)
    assert report.fails_at(Severity.INFO)
    assert not report.fails_at(Severity.ERROR)


def test_empty_report_is_ok_and_never_fails():
    report = Report(target="t", diagnostics=[])
    assert report.ok
    assert report.worst() is None
    assert not report.fails_at(Severity.INFO)


def test_format_text_hides_infos_when_terse():
    report = Report(
        target="t",
        diagnostics=[
            _diag(severity=Severity.ERROR),
            _diag(rule="jj-budget", severity=Severity.INFO),
        ],
    )
    assert "jj-budget" not in report.format_text(verbose=False)
    assert "jj-budget" in report.format_text(verbose=True)


def test_format_text_accounts_for_suppressions():
    report = Report(
        target="t",
        suppressed=[_diag(rule="merger-collision", severity=Severity.WARNING)],
    )
    text = report.format_text()
    assert "suppressed" in text
    assert "merger-collision" in text


def test_to_json_round_trips():
    report = Report(
        target="t",
        diagnostics=[_diag()],
        suppressed=[_diag(rule="merger-collision", severity=Severity.WARNING)],
    )
    payload = json.loads(report.to_json())
    assert payload["target"] == "t"
    assert payload["ok"] is False
    assert payload["errors"] == 1
    assert payload["suppressed"] == 1
    assert payload["diagnostics"][0]["rule"] == "implicit-fanout"
    assert payload["diagnostics"][0]["severity"] == "error"
