"""Static timing analysis: arrival times, epoch overflow, merger collisions."""

from repro.cells import Jtl, Merger, Splitter
from repro.encoding import EpochSpec
from repro.lint import CircuitGraph, LintConfig, Severity, lint_circuit
from repro.pulsesim import Circuit


def rule_hits(report, rule, severity=None):
    hits = report.by_rule(rule)
    if severity is not None:
        hits = [d for d in hits if d.severity is severity]
    return hits


# -- arrival-time engine -------------------------------------------------------
def test_arrival_times_accumulate_wire_and_cell_delays():
    circuit = Circuit()
    a = circuit.add(Jtl("a", delay=3))
    b = circuit.add(Jtl("b", delay=5))
    circuit.connect(a, "q", b, "a", delay=7)
    circuit.probe(b, "q")
    graph = CircuitGraph(circuit, entry_points=[(a, "a")])
    assert graph.output_arrival(a, "q") == 3
    assert graph.output_arrival(b, "q") == 3 + 7 + 5


def test_arrival_times_take_worst_case_path():
    circuit = Circuit()
    src = circuit.add(Jtl("src", delay=1))
    split = circuit.add(Splitter("split", delay=1))
    fast = circuit.add(Jtl("fast", delay=1))
    slow = circuit.add(Jtl("slow", delay=100))
    merger = circuit.add(Merger("m", delay=1, dead_time=0))
    circuit.connect(src, "q", split, "a")
    circuit.connect(split, "q1", fast, "a")
    circuit.connect(split, "q2", slow, "a")
    circuit.connect(fast, "q", merger, "a")
    circuit.connect(slow, "q", merger, "b")
    circuit.probe(merger, "q")
    graph = CircuitGraph(circuit, entry_points=[(src, "a")])
    assert graph.output_arrival(merger, "q") == 1 + 1 + 100 + 1


def test_arrival_times_terminate_on_cyclic_netlists():
    circuit = Circuit()
    a = circuit.add(Jtl("a", delay=2))
    b = circuit.add(Jtl("b", delay=2))
    circuit.connect(a, "q", b, "a")
    circuit.connect(b, "q", a, "a")
    graph = CircuitGraph(circuit, entry_points=[(a, "a")])
    # Back edge is skipped; analysis completes with finite arrivals.
    assert graph.output_arrival(a, "q") >= 2


# -- epoch-overflow ------------------------------------------------------------
def _chain(circuit, n, delay):
    cells = [circuit.add(Jtl(f"j{i}", delay=delay)) for i in range(n)]
    for up, down in zip(cells, cells[1:]):
        circuit.connect(up, "q", down, "a")
    circuit.probe(cells[-1], "q")
    return cells


def test_epoch_overflow_flagged():
    epoch = EpochSpec(bits=2, slot_fs=10)  # 40 fs budget
    circuit = Circuit()
    cells = _chain(circuit, 5, delay=20)  # 100 fs worst case
    config = LintConfig(epoch=epoch)
    report = lint_circuit(
        circuit, entry_points=[(cells[0], "a")], config=config
    )
    hits = rule_hits(report, "epoch-overflow", Severity.ERROR)
    assert hits and "exceeds" in hits[0].message


def test_epoch_overflow_clean_when_paths_fit():
    epoch = EpochSpec(bits=4, slot_fs=100)  # 1600 fs budget
    circuit = Circuit()
    cells = _chain(circuit, 5, delay=20)
    config = LintConfig(epoch=epoch)
    report = lint_circuit(
        circuit, entry_points=[(cells[0], "a")], config=config
    )
    assert not rule_hits(report, "epoch-overflow")


def test_epoch_overflow_skipped_without_epoch():
    circuit = Circuit()
    cells = _chain(circuit, 5, delay=10**9)
    report = lint_circuit(circuit, entry_points=[(cells[0], "a")])
    assert not rule_hits(report, "epoch-overflow")


# -- merger-collision ----------------------------------------------------------
def _merger_pair(skew: int, dead_time: int):
    """Two entry-driven legs into one merger, arriving `skew` fs apart."""
    circuit = Circuit()
    a = circuit.add(Jtl("a", delay=10))
    b = circuit.add(Jtl("b", delay=10 + skew))
    merger = circuit.add(Merger("m", dead_time=dead_time))
    circuit.connect(a, "q", merger, "a")
    circuit.connect(b, "q", merger, "b")
    circuit.probe(merger, "q")
    return circuit, [(a, "a"), (b, "a")]


def test_merger_collision_flagged_inside_dead_time():
    circuit, entries = _merger_pair(skew=3, dead_time=5)
    report = lint_circuit(circuit, entry_points=entries)
    (hit,) = rule_hits(report, "merger-collision", Severity.WARNING)
    assert hit.element == "m"


def test_merger_collision_clean_outside_dead_time():
    circuit, entries = _merger_pair(skew=50, dead_time=5)
    report = lint_circuit(circuit, entry_points=entries)
    assert not rule_hits(report, "merger-collision")


def test_ideal_merger_has_no_collision_window():
    circuit, entries = _merger_pair(skew=0, dead_time=0)
    report = lint_circuit(circuit, entry_points=entries)
    assert not rule_hits(report, "merger-collision")
