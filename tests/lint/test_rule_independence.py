"""Rule independence: one minimal circuit per rule, firing *only* that rule.

``test_rules.py`` proves each rule fires on a violation and stays silent
on the fix.  This module proves the stronger property the fuzzing
generator in :mod:`repro.verify` relies on: the rules are independent
axes.  Each circuit here is the smallest netlist that violates exactly
one rule, and the assertion is over *every* diagnostic in the report —
any cross-talk between rules (a violation of rule A also tripping rule
B) would fail the exact-set check.

One coupling is definitional and documented rather than worked around:
an undriven clock port *is* an undriven input port, so ``no-clock-driver``
can never fire without ``floating-input`` on the same port (see
:func:`test_no_clock_driver_coupling_is_exactly_the_clock_port`).
"""

from repro.cells import Dff, Jtl, Merger, Splitter, Tff
from repro.encoding.epoch import EpochSpec
from repro.lint import LintConfig, Severity, lint_circuit
from repro.lint.rules import rule_catalogue
from repro.models import technology as tech
from repro.pulsesim import Circuit


def fired(report):
    """Every rule with at least one diagnostic, regardless of severity."""
    return {diagnostic.rule for diagnostic in report.diagnostics}


# -- drc rules, one at a time --------------------------------------------------
def test_implicit_fanout_fires_alone():
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    s1 = circuit.add(Jtl("s1"))
    s2 = circuit.add(Jtl("s2"))
    circuit.connect(src, "q", s1, "a")
    circuit.connect(src, "q", s2, "a")
    circuit.probe(s1, "q")
    circuit.probe(s2, "q")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    assert fired(report) == {"implicit-fanout"}
    (hit,) = report.diagnostics
    assert (hit.element, hit.port) == ("src", "q")


def test_unmerged_fanin_fires_alone():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    sink = circuit.add(Jtl("sink"))
    circuit.connect(a, "q", sink, "a")
    circuit.connect(b, "q", sink, "a")
    circuit.probe(sink, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a"), (b, "a")])
    assert fired(report) == {"unmerged-fanin"}
    (hit,) = report.diagnostics
    assert (hit.element, hit.port) == ("sink", "a")


def test_floating_input_fires_alone():
    # A merger with one driven input: port b floats, but with a single
    # arrival the merger-collision rule has nothing to compare.
    circuit = Circuit()
    m = circuit.add(Merger("m"))
    circuit.probe(m, "q")
    report = lint_circuit(circuit, entry_points=[(m, "a")])
    assert fired(report) == {"floating-input"}
    (hit,) = report.diagnostics
    assert (hit.element, hit.port) == ("m", "b")


def test_dead_element_fires_alone():
    # The dead island must have every input driven (no floating-input),
    # every output consumed (no dangling-output), and its feedback loop
    # broken by a storage cell (no combinational-loop) — which forces it
    # to be a splitter/DFF pair, the smallest self-sustaining subgraph.
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    circuit.probe(src, "q")
    split = circuit.add(Splitter("split"))
    dff = circuit.add(Dff("dff"))
    circuit.connect(dff, "q", split, "a")
    circuit.connect(split, "q1", dff, "d")
    circuit.connect(split, "q2", dff, "clk")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    assert fired(report) == {"dead-element"}
    assert {d.element for d in report.diagnostics} == {"split", "dff"}


def test_dead_element_vacuous_diagnostic_fires_alone():
    # No entry points at all: reachability is vacuous, and on an empty
    # circuit no other rule has anything to say.
    report = lint_circuit(Circuit())
    assert fired(report) == {"dead-element"}
    (hit,) = report.diagnostics
    assert hit.element is None and "vacuous" in hit.message


def test_dangling_output_fires_alone():
    circuit = Circuit()
    t = circuit.add(Tff("t"))
    report = lint_circuit(circuit, entry_points=[(t, "a")])
    assert fired(report) == {"dangling-output"}
    (hit,) = report.diagnostics
    assert (hit.element, hit.port) == ("t", "q")
    assert hit.severity is Severity.WARNING


def test_dangling_buffer_output_is_still_only_dangling_output():
    # Buffer termination downgrades to INFO but stays the same rule.
    circuit = Circuit()
    j = circuit.add(Jtl("j"))
    report = lint_circuit(circuit, entry_points=[(j, "a")])
    assert fired(report) == {"dangling-output"}
    (hit,) = report.diagnostics
    assert hit.severity is Severity.INFO


def test_combinational_loop_fires_alone():
    circuit = Circuit()
    split = circuit.add(Splitter("split"))
    j = circuit.add(Jtl("j"))
    circuit.connect(split, "q1", j, "a")
    circuit.connect(j, "q", split, "a")
    circuit.probe(split, "q2")
    report = lint_circuit(circuit, entry_points=[(split, "a")])
    assert fired(report) == {"combinational-loop"}
    (hit,) = report.diagnostics
    assert "split" in hit.message and "j" in hit.message


def test_no_clock_driver_coupling_is_exactly_the_clock_port():
    """An undriven clock port is, definitionally, a floating input: the
    two rules test the same predicate on clock ports, so they can never
    be separated.  Independence here means the overlap is *only* that
    port — no third rule joins in, and both diagnostics anchor there."""
    circuit = Circuit()
    src = circuit.add(Jtl("src"))
    dff = circuit.add(Dff("dff"))
    circuit.connect(src, "q", dff, "d")
    circuit.probe(dff, "q")
    report = lint_circuit(circuit, entry_points=[(src, "a")])
    assert fired(report) == {"no-clock-driver", "floating-input"}
    assert {(d.element, d.port) for d in report.diagnostics} == {("dff", "clk")}


# -- timing rules --------------------------------------------------------------
def test_merger_collision_fires_alone():
    circuit = Circuit()
    m = circuit.add(Merger("m"))
    circuit.probe(m, "q")
    report = lint_circuit(circuit, entry_points=[(m, "a"), (m, "b")])
    assert fired(report) == {"merger-collision"}
    (hit,) = report.diagnostics
    assert hit.element == "m" and "0 fs apart" in hit.message


def test_merger_collision_silent_when_paths_staggered():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    m = circuit.add(Merger("m"))
    circuit.connect(a, "q", m, "a")
    circuit.connect(b, "q", m, "b", delay=tech.T_MERGER_DEAD_FS)
    circuit.probe(m, "q")
    report = lint_circuit(circuit, entry_points=[(a, "a"), (b, "a")])
    assert report.ok and fired(report) == set()


def test_epoch_overflow_fires_alone_and_only_when_configured():
    circuit = Circuit()
    j = circuit.add(Jtl("j"))
    circuit.probe(j, "q")
    entries = [(j, "a")]
    assert fired(lint_circuit(circuit, entry_points=entries)) == set()
    report = lint_circuit(
        circuit,
        entry_points=entries,
        config=LintConfig(epoch=EpochSpec(bits=1, slot_fs=1)),
    )
    assert fired(report) == {"epoch-overflow"}
    (hit,) = report.diagnostics
    assert (hit.element, hit.port) == ("j", "q")


# -- budget rule ---------------------------------------------------------------
def test_jj_budget_fires_alone_and_only_when_configured():
    circuit = Circuit()
    j = circuit.add(Jtl("j"))
    circuit.probe(j, "q")
    entries = [(j, "a")]
    assert fired(lint_circuit(circuit, entry_points=entries)) == set()
    report = lint_circuit(
        circuit,
        entry_points=entries,
        config=LintConfig(expected_jj=10 * circuit.jj_count),
    )
    assert fired(report) == {"jj-budget"}
    (hit,) = report.diagnostics
    assert hit.severity is Severity.WARNING

    # On an exact match the rule still speaks, as an INFO receipt.
    report = lint_circuit(
        circuit,
        entry_points=entries,
        config=LintConfig(expected_jj=circuit.jj_count),
    )
    assert fired(report) == {"jj-budget"}
    (hit,) = report.diagnostics
    assert hit.severity is Severity.INFO


def test_noc_link_lookahead_fires_alone():
    # NocLink itself rejects a zero latency at construction, so the rule's
    # target is a custom NOC-role cell that lost its lookahead.
    from repro.pulsesim.element import CellRole, Element

    class ZeroLatencyLink(Element):
        INPUTS = ("a",)
        OUTPUTS = ("q",)
        ROLES = frozenset({CellRole.BUFFER, CellRole.NOC})

        def __init__(self, name):
            super().__init__(name)
            self.delay = 0
            self.fifo_depth = 0

        def handle(self, sim, port, time):  # pragma: no cover - not run
            self.emit(sim, "q", time)

    circuit = Circuit()
    link = circuit.add(ZeroLatencyLink("link"))
    circuit.probe(link, "q")
    report = lint_circuit(circuit, entry_points=[(link, "a")])
    assert fired(report) == {"noc-link-lookahead"}
    assert len(report.diagnostics) == 2  # zero latency + zero-depth FIFO

    # A well-formed NocLink stays silent.
    from repro.cells import NocLink

    circuit = Circuit()
    good = circuit.add(NocLink("good"))
    circuit.probe(good, "q")
    report = lint_circuit(circuit, entry_points=[(good, "a")])
    assert fired(report) == set()


# -- catalogue coverage --------------------------------------------------------
def test_every_registered_rule_has_an_independence_circuit():
    """A new rule must come with its minimal isolating circuit."""
    covered = {
        "implicit-fanout",
        "unmerged-fanin",
        "floating-input",
        "dead-element",
        "dangling-output",
        "combinational-loop",
        "no-clock-driver",
        "merger-collision",
        "epoch-overflow",
        "jj-budget",
        "noc-link-lookahead",
    }
    assert {info.name for info in rule_catalogue()} == covered
