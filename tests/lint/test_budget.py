"""JJ-budget cross-check: structural counts vs the analytical area models."""

import pytest

from repro.cells import Jtl
from repro.errors import ConfigurationError
from repro.lint import LintConfig, Severity, lint_circuit
from repro.pulsesim import Circuit


def _probe_chain():
    circuit = Circuit()
    jtl = circuit.add(Jtl("j"))
    circuit.probe(jtl, "q")
    return circuit, [(jtl, "a")]


def _budget_report(expected, actual, tolerance=0.15):
    circuit, entries = _probe_chain()
    config = LintConfig(expected_jj=expected, jj_tolerance=tolerance)
    return lint_circuit(
        circuit, entry_points=entries, config=config, actual_jj=actual
    )


def test_exact_match_is_an_info_note():
    report = _budget_report(expected=100, actual=100)
    (hit,) = report.by_rule("jj-budget")
    assert hit.severity is Severity.INFO
    assert "matches" in hit.message


def test_divergence_within_tolerance_is_info():
    report = _budget_report(expected=100, actual=110)
    (hit,) = report.by_rule("jj-budget")
    assert hit.severity is Severity.INFO


def test_divergence_beyond_tolerance_is_warning():
    report = _budget_report(expected=100, actual=150)
    (hit,) = report.by_rule("jj-budget")
    assert hit.severity is Severity.WARNING
    assert "100" in hit.message and "150" in hit.message


def test_budget_rule_skipped_without_expectation():
    circuit, entries = _probe_chain()
    report = lint_circuit(circuit, entry_points=entries, actual_jj=123)
    assert not report.by_rule("jj-budget")


def test_structural_count_defaults_to_circuit_jj_count():
    circuit, entries = _probe_chain()
    config = LintConfig(expected_jj=circuit.jj_count)
    report = lint_circuit(circuit, entry_points=entries, config=config)
    (hit,) = report.by_rule("jj-budget")
    assert hit.severity is Severity.INFO


def test_tolerance_validation():
    with pytest.raises(ConfigurationError):
        LintConfig(jj_tolerance=1.5)
    with pytest.raises(ConfigurationError):
        LintConfig(jj_tolerance=-0.1)
