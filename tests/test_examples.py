"""Smoke tests: the fast example scripts run end to end.

The heavier demos (DPU neural network, FIR audio recovery) are exercised
indirectly through their underlying APIs; these four finish in seconds
and guard the documented entry points against drift.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, argv=None):
    saved_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "unipolar multiply" in out
    assert "46 JJs" in out


def test_racelogic_edit_distance(capsys):
    _run("racelogic_edit_distance.py")
    out = capsys.readouterr().out
    assert "MISMATCH" not in out
    assert "[ok]" in out


def test_design_space_explorer_query_mode(capsys):
    _run("design_space_explorer.py", argv=["32", "6"])
    out = capsys.readouterr().out
    assert "verdict" in out
    assert "U-SFQ" in out


def test_cgra_dataflow_kernel(capsys):
    _run("cgra_dataflow_kernel.py")
    out = capsys.readouterr().out
    assert "worst-case error" in out
    assert "placement" in out


def test_pulse_sim_tutorial(capsys):
    _run("pulse_sim_tutorial.py")
    out = capsys.readouterr().out
    assert "step 5 - export" in out
    assert "PulseGater" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "fir_audio_recovery.py",
        "dpu_neural_network.py",
        "cgra_convolution.py",
        "racelogic_edit_distance.py",
        "design_space_explorer.py",
        "cgra_dataflow_kernel.py",
        "pulse_sim_tutorial.py",
    ],
)
def test_every_example_has_a_main_guard(name):
    source = (EXAMPLES / name).read_text()
    assert '__name__ == "__main__"' in source
    assert source.lstrip().startswith(("#!/usr/bin/env python3", '"""'))