"""ProcessActor lifecycle: crashes are typed, restart() recovers.

The serving layer keeps a pool of persistent actors and must tell three
situations apart: the handler raised (actor still healthy), the worker
*process* died (actor unusable until restarted), and a clean close.  These
tests kill real child processes to pin the first two down.
"""

import os
import signal
import time

import pytest

from repro.parallel import ProcessActor, WorkerCrashed, WorkerError


def _echo_factory(tag):
    def handler(command, payload):
        if command == "echo":
            return (tag, payload)
        if command == "pid":
            return os.getpid()
        if command == "sleep":
            time.sleep(payload)
            return "slept"
        if command == "boom":
            raise RuntimeError("handler exploded")
        if command == "die":
            os._exit(payload)
        raise ValueError(f"unknown command {command}")

    return handler


def _broken_factory():
    raise RuntimeError("factory cannot build")


def test_actor_round_trip_and_handler_error_keeps_actor_alive():
    with ProcessActor(_echo_factory, "t1") as actor:
        assert actor.call("echo", 42) == ("t1", 42)
        with pytest.raises(WorkerError) as excinfo:
            actor.call("boom")
        # A handler exception is NOT a crash: the process survives and the
        # traceback travels back for diagnosis.
        assert not isinstance(excinfo.value, WorkerCrashed)
        assert "handler exploded" in str(excinfo.value)
        assert actor.is_alive()
        assert actor.call("echo", "after") == ("t1", "after")


def test_sigkill_mid_command_raises_worker_crashed():
    with ProcessActor(_echo_factory, "t2") as actor:
        pid = actor.call("pid")
        actor.submit("sleep", 30.0)
        os.kill(pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            actor.result()
        deadline = time.monotonic() + 5
        while actor.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)  # killed child needs a beat to become waitable
        assert not actor.is_alive()


def test_worker_exit_mid_command_raises_worker_crashed():
    with ProcessActor(_echo_factory, "t3") as actor:
        actor.call("pid")  # consume the ready handshake first
        actor.submit("die", 3)
        with pytest.raises(WorkerCrashed):
            actor.result()


def test_restart_after_crash_serves_again_with_fresh_process():
    with ProcessActor(_echo_factory, "t4") as actor:
        first_pid = actor.call("pid")
        actor.submit("sleep", 30.0)
        os.kill(first_pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            actor.result()
        actor.restart()
        second_pid = actor.call("pid")
        assert second_pid != first_pid
        assert actor.call("echo", "hello") == ("t4", "hello")


def test_restart_recycles_a_healthy_actor():
    with ProcessActor(_echo_factory, "t5") as actor:
        first_pid = actor.call("pid")
        actor.restart()
        assert actor.call("pid") != first_pid


def test_submit_to_dead_worker_raises_worker_crashed():
    actor = ProcessActor(_echo_factory, "t6")
    try:
        pid = actor.call("pid")
        os.kill(pid, signal.SIGKILL)
        # Give the OS a moment to reap; submit may succeed into the buffer
        # on some platforms, in which case the crash surfaces on result().
        deadline = time.monotonic() + 5
        while actor._process.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(WorkerCrashed):
            actor.submit("echo", 1)
            actor.result()
    finally:
        actor.close()


def test_factory_failure_surfaces_as_worker_error():
    with ProcessActor(_broken_factory) as actor:
        with pytest.raises(WorkerError, match="factory cannot build"):
            actor.call("echo", 1)
