"""Generator: determinism, legality, and lint-cleanliness by construction."""

import pytest
from hypothesis import given, settings

from repro.errors import VerificationError
from repro.lint.api import lint_circuit
from repro.pulsesim.element import CellRole
from repro.verify.generator import (
    KIND_WEIGHTS,
    PROFILES,
    example_rng,
    generate_spec,
    profile,
)
from repro.verify.spec import build, template, validate
from tests.strategies import verify_specs


def test_profiles_and_unknown_profile():
    assert profile("ci").examples == 200
    assert set(PROFILES) == {"smoke", "ci", "nightly"}
    with pytest.raises(VerificationError, match="unknown profile"):
        profile("exhaustive")


def test_example_rng_is_a_deterministic_substream():
    assert example_rng(3, 7).random() == example_rng(3, 7).random()
    assert example_rng(3, 7).random() != example_rng(3, 8).random()
    assert example_rng(3, 7).random() != example_rng(4, 7).random()


def test_generation_is_deterministic():
    prof = profile("smoke")
    first = [generate_spec(example_rng(0, i), prof) for i in range(10)]
    second = [generate_spec(example_rng(0, i), prof) for i in range(10)]
    assert first == second


def test_specs_respect_profile_envelope():
    prof = profile("smoke")
    for example in range(30):
        spec = generate_spec(example_rng(5, example), prof)
        validate(spec)
        assert 1 <= len(spec.stimulus) <= prof.max_stimulus
        assert all(0 <= t <= prof.max_slot * prof.time_scale
                   for t in spec.stimulus)
        # Cell count can exceed the target via splitter insertion, but
        # only by the largest fan-in the library needs (4-input Bff).
        assert len(spec.cells) <= prof.max_cells + 4


@settings(max_examples=40, deadline=None)
@given(verify_specs())
def test_generated_circuits_are_lint_clean(spec):
    built = build(spec)
    report = lint_circuit(built.circuit, entry_points=[(built.entry, "a")])
    assert not report.diagnostics, report.format_text()


def test_merger_arrivals_are_spaced_by_dead_time():
    # The generator's static arrival model must keep worst-case merger
    # input skew >= dead_time; mergers appear often enough in 40 specs.
    from repro.lint.graph import CircuitGraph

    prof = profile("ci")
    seen = 0
    for example in range(40):
        spec = generate_spec(example_rng(11, example), prof)
        built = build(spec)
        graph = CircuitGraph(built.circuit,
                             entry_points=[(built.entry, "a")])
        arrivals = graph.arrival_times()
        for element in built.circuit.elements:
            dead_time = getattr(element, "dead_time", 0)
            if not element.has_role(CellRole.MERGER) or not dead_time:
                continue
            times = sorted(
                arrivals[id(wire.source)] + wire.source.propagation_delay_fs
                + wire.delay
                for port in element.input_names
                for wire in built.circuit.wires_into(element, port)
            )
            seen += 1
            for early, late in zip(times, times[1:]):
                assert late - early >= dead_time
    assert seen > 0


def test_kind_weights_cover_only_spliceable_library():
    for kind, weight in KIND_WEIGHTS:
        assert weight > 0
        template(kind)  # raises for unknown kinds
    kinds = {kind for kind, _ in KIND_WEIGHTS}
    assert "DropChannel" not in kinds  # fault channels are oracle-only
    assert "JitterChannel" not in kinds
