"""Defect-injection tooling for harness self-tests.

The sealed compiler keys its inline-opcode registry by handle function,
so a cell class whose ``handle`` was overridden is (correctly) demoted to
the generic-call opcode — both kernels then agree on the patched
behaviour and nothing diverges.  :func:`inline_defect` therefore patches
*both* the handle and the registry: the reference loop runs the modified
handler while the sealed kernel keeps the stock inline opcode.  That is
exactly the bug class the kernel-differential oracle exists for — a
compiled opcode whose semantics drift from the reference implementation.
"""

import contextlib

from repro.pulsesim import kernel as kernelmod


@contextlib.contextmanager
def inline_defect(cell_cls, handler):
    """Run with ``cell_cls.handle = handler`` while the sealed kernel
    still compiles the cell to its stock inline opcode."""
    registry = kernelmod._inline_registry()
    stock = cell_cls.handle
    compiler = registry[stock]
    cell_cls.handle = handler
    registry[handler] = compiler
    try:
        yield
    finally:
        cell_cls.handle = stock
        del registry[handler]
