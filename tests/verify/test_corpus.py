"""Corpus round trip: save, load, iterate, replay, reject malformed."""

import json

import pytest

from repro.errors import VerificationError
from repro.verify.corpus import (
    FORMAT,
    corpus_entry,
    entry_path,
    iter_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.verify.spec import CellSpec, NetlistSpec, WireSpec


def _spec():
    return NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0),)),),
                       stimulus=(0, 4_000))


def test_entry_round_trip(tmp_path):
    entry = corpus_entry("kernel-differential", "events: 3 != 4", _spec(),
                        profile="ci", seed=0, example=17)
    path = save_entry(tmp_path, entry)
    assert path.name == f"kernel-differential-{_spec().key()}.json"
    assert load_entry(path) == entry
    assert entry["format"] == FORMAT
    assert entry["original_key"] == _spec().key()


def test_identical_shrunk_specs_dedupe_to_one_file(tmp_path):
    first = corpus_entry("time-shift", "d1", _spec(), example=1)
    second = corpus_entry("time-shift", "d2", _spec(), example=2)
    assert entry_path(tmp_path, first) == entry_path(tmp_path, second)
    save_entry(tmp_path, first)
    save_entry(tmp_path, second)
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_iter_corpus_sorted_and_missing_dir(tmp_path):
    assert list(iter_corpus(tmp_path / "absent")) == []
    save_entry(tmp_path, corpus_entry("time-shift", "", _spec()))
    save_entry(tmp_path, corpus_entry("lint-clean", "", _spec()))
    names = [path.name for path, _entry in iter_corpus(tmp_path)]
    assert names == sorted(names)
    assert len(names) == 2


def test_replay_entry_runs_the_named_oracle():
    entry = corpus_entry("kernel-differential", "", _spec())
    result = replay_entry(entry)
    assert result.oracle == "kernel-differential"
    assert result.ok  # no defect injected: the fixed bug stays fixed


def test_load_rejects_bad_format_and_missing_fields(tmp_path):
    good = corpus_entry("time-shift", "", _spec())

    bad_format = dict(good, format=99)
    path = tmp_path / "bad-format.json"
    path.write_text(json.dumps(bad_format))
    with pytest.raises(VerificationError, match="unsupported format"):
        load_entry(path)

    for field in ("oracle", "spec"):
        broken = {k: v for k, v in good.items() if k != field}
        path = tmp_path / f"missing-{field}.json"
        path.write_text(json.dumps(broken))
        with pytest.raises(VerificationError, match=field):
            load_entry(path)

    path = tmp_path / "not-json.json"
    path.write_text("{nope")
    with pytest.raises(VerificationError, match="unreadable"):
        load_entry(path)

    with pytest.raises(VerificationError, match="unreadable"):
        load_entry(tmp_path / "never-written.json")
