"""NetlistSpec: serialisation, validation, building, and transforms."""

import pytest

from repro.errors import VerificationError
from repro.verify.spec import (
    CellSpec,
    NetlistSpec,
    WireSpec,
    build,
    pool_outputs,
    remove_cell,
    shift_stimulus,
    spec_from_json,
    splice_cell,
    swap_cell_inputs,
    template,
    validate,
)


def _chain():
    """entry -> Jtl -> Merger(b <- entry.q2); merger output unconsumed."""
    return NetlistSpec(
        cells=(
            CellSpec("Jtl", (WireSpec(0, 500),)),
            CellSpec("Merger", (WireSpec(2, 0), WireSpec(1, 9_000))),
        ),
        stimulus=(0, 1_000, 1_000),
    )


def test_json_round_trip():
    spec = _chain()
    assert spec_from_json(spec.to_json()) == spec


def test_params_round_trip():
    spec = NetlistSpec(cells=(
        CellSpec("DropChannel", (WireSpec(0),),
                 params=(("drop_rate", 0.0),)),
    ))
    again = spec_from_json(spec.to_json())
    assert again == spec
    assert again.to_json()["cells"][0]["params"] == {"drop_rate": 0.0}


def test_key_is_stable_and_content_sensitive():
    spec = _chain()
    assert spec.key() == _chain().key()
    assert spec.key() != shift_stimulus(spec, 1).key()


def test_malformed_json_raises():
    with pytest.raises(VerificationError, match="malformed"):
        spec_from_json({"cells": [{"kind": "Jtl"}], "stimulus": []})


def test_validate_rejects_unknown_kind():
    spec = NetlistSpec(cells=(CellSpec("Warp", (WireSpec(0),)),))
    with pytest.raises(VerificationError, match="unknown cell kind"):
        validate(spec)


def test_validate_rejects_wrong_input_count():
    spec = NetlistSpec(cells=(CellSpec("Merger", (WireSpec(0),)),))
    with pytest.raises(VerificationError, match="input ports"):
        validate(spec)


def test_validate_rejects_forward_reference():
    spec = NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(2),)),))
    with pytest.raises(VerificationError, match="earlier pool output"):
        validate(spec)


def test_validate_rejects_double_driven_output():
    spec = NetlistSpec(cells=(
        CellSpec("Jtl", (WireSpec(0),)),
        CellSpec("Jtl", (WireSpec(0),)),
    ))
    with pytest.raises(VerificationError, match="two sinks"):
        validate(spec)


def test_validate_rejects_negative_delay_and_stimulus():
    with pytest.raises(VerificationError, match="negative wire delay"):
        validate(NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0, -1),)),)))
    with pytest.raises(VerificationError, match="negative stimulus"):
        validate(NetlistSpec(stimulus=(-5,)))


def test_template_is_cached_and_unknown_kind_raises():
    assert template("Jtl") is template("Jtl")
    with pytest.raises(VerificationError, match="unknown cell kind"):
        template("Nope")


def test_build_names_probes_and_pool():
    built = build(_chain())
    assert [e.name for e in built.circuit.elements] == ["entry", "c0", "c1"]
    # Unconsumed outputs: only the merger's q (pool slot 3).
    assert [probe.label for probe in built.probes] == ["c1.q"]
    assert built.pool[3] == (built.circuit["c1"], "q")
    assert pool_outputs(_chain())[3] == (1, "q")


def test_build_rejects_bad_params():
    spec = NetlistSpec(cells=(
        CellSpec("Jtl", (WireSpec(0),), params=(("warp", 9),)),
    ))
    with pytest.raises(VerificationError, match="bad constructor params"):
        build(spec)


def test_shift_stimulus():
    assert shift_stimulus(_chain(), 7).stimulus == (7, 1_007, 1_007)


def test_swap_cell_inputs():
    swapped = swap_cell_inputs(_chain(), 1)
    assert swapped.cells[1].inputs == (WireSpec(1, 9_000), WireSpec(2, 0))
    assert swap_cell_inputs(swapped, 1) == _chain()


def test_splice_cell_remaps_later_sources():
    spliced = splice_cell(_chain(), 1, 1, "Jtl")
    validate(spliced)
    # The new Jtl takes over entry.q2 -> merger.b (source 1, delay 9000)
    # and feeds the merger's b port through a zero-delay wire.
    assert spliced.cells[1] == CellSpec("Jtl", (WireSpec(1, 9_000),))
    # merger input a keeps its pre-splice source (slot 2, the chain Jtl);
    # input b now comes from the spliced cell's output (slot 3).
    assert spliced.cells[2].inputs == (WireSpec(2, 0), WireSpec(3, 0))


def test_splice_rejects_multiport_kinds():
    with pytest.raises(VerificationError, match="1-in/1-out"):
        splice_cell(_chain(), 1, 0, "Splitter")


def test_remove_cell_leaf_only():
    spec = _chain()
    shrunk = remove_cell(spec, 1)  # the merger is a leaf
    validate(shrunk)
    assert len(shrunk.cells) == 1
    with pytest.raises(VerificationError, match="leaf"):
        remove_cell(spec, 0)  # the Jtl still drives the merger
