"""End-to-end campaigns: clean sweep, injected defect, CLI, corpus replay.

The injected-defect tests are the harness's own conformance proof: a
deliberate bug (a monkeypatched cell delay) must be *detected* by the
oracle matrix, *shrunk* to a minimal netlist, and *persisted* as a
committed-format corpus entry that reproduces the failure on replay.
"""

import contextlib
import json

import pytest

from repro.cells import Jtl
from repro.errors import VerificationError
from repro.verify.cli import main
from repro.verify.corpus import FORMAT, load_entry
from repro.verify.harness import (
    VerifyConfig,
    replay_corpus,
    run_verify,
)
from repro.verify.oracles import ORACLES
from tests.verify.helpers import inline_defect


@contextlib.contextmanager
def _late_jtl():
    """The acceptance defect: JTL reference semantics drift one
    femtosecond from the sealed inline opcode."""

    def late(self, sim, port, time):
        self.emit(sim, "q", time + self.delay + 1)

    with inline_defect(Jtl, late):
        yield


def test_smoke_campaign_is_clean():
    report = run_verify(VerifyConfig(profile="smoke", seed=0))
    assert report.ok
    assert report.examples == 25
    assert report.oracle_runs == 25 * len(ORACLES)
    assert report.wall_s > 0
    payload = report.to_json()
    assert payload["ok"] and payload["discrepancies"] == []


def test_max_examples_override_and_oracle_subset():
    report = run_verify(VerifyConfig(profile="ci", max_examples=5,
                                     oracles=["lint-clean", "time-shift"]))
    assert report.examples == 5
    assert report.oracle_runs == 10


def test_unknown_oracle_selection_raises():
    with pytest.raises(VerificationError, match="unknown oracle"):
        run_verify(VerifyConfig(oracles=["vibes"]))


def test_progress_callback_sees_every_example():
    seen = []
    run_verify(VerifyConfig(profile="smoke", max_examples=4),
               progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


@pytest.fixture
def delayed_jtl():
    """Fixture form of :func:`_late_jtl` for tests that keep the defect
    live for their whole body."""
    with _late_jtl():
        yield


def test_injected_defect_is_detected_shrunk_and_persisted(
        delayed_jtl, tmp_path):
    corpus_dir = tmp_path / "corpus"
    report = run_verify(VerifyConfig(profile="ci", max_examples=40,
                                     corpus_dir=str(corpus_dir)))
    assert not report.ok
    kernel_failures = [d for d in report.discrepancies
                       if d.oracle == "kernel-differential"]
    assert kernel_failures

    # Shrinking reaches the minimal reproduction: a single JTL fed by
    # a single pulse at t=0 over a zero-delay wire.
    minimal = min(kernel_failures, key=lambda d: len(d.shrunk.cells))
    assert len(minimal.shrunk.cells) == 1
    assert minimal.shrunk.cells[0].kind == "Jtl"
    assert minimal.shrunk.cells[0].inputs[0].delay == 0
    assert minimal.shrunk.stimulus == (0,)

    # Persisted in the committed corpus format, and the entry replays
    # to a failure while the defect is live.
    entry = load_entry(minimal.corpus_path)
    assert entry["format"] == FORMAT
    assert entry["oracle"] == "kernel-differential"
    assert entry["seed"] == 0 and entry["profile"] == "ci"
    outcomes = replay_corpus(str(corpus_dir))
    assert outcomes and not all(outcome["ok"] for outcome in outcomes)


def test_replayed_corpus_passes_once_the_defect_is_fixed(tmp_path):
    corpus_dir = tmp_path / "corpus"
    with _late_jtl():
        run_verify(VerifyConfig(profile="ci", max_examples=15,
                                corpus_dir=str(corpus_dir)))
    outcomes = replay_corpus(str(corpus_dir))
    assert outcomes  # the defect produced entries ...
    assert all(outcome["ok"] for outcome in outcomes)  # ... now fixed


def test_exceptions_inside_oracles_count_as_discrepancies(monkeypatch):
    import repro.verify.harness as harness

    def explode(spec):
        raise RuntimeError("boom")

    monkeypatch.setitem(harness.ORACLES, "lint-clean", explode)
    report = run_verify(VerifyConfig(profile="smoke", max_examples=1,
                                     oracles=["lint-clean"], shrink=False))
    assert not report.ok
    assert "RuntimeError: boom" in report.discrepancies[0].detail


# -- CLI -----------------------------------------------------------------------
def test_cli_clean_campaign(capsys):
    code = main(["--profile", "smoke", "--max-examples", "5", "--quiet",
                 "--corpus-dir", "/nonexistent/never-created"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("OK: 5 examples")


def test_cli_json_report(capsys):
    code = main(["--profile", "smoke", "--max-examples", "3", "--quiet",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["examples"] == 3


def test_cli_list_oracles(capsys):
    assert main(["--list-oracles"]) == 0
    out = capsys.readouterr().out
    for name in ORACLES:
        assert name in out
    assert main(["--list-oracles", "--json"]) == 0
    assert set(json.loads(capsys.readouterr().out)) == set(ORACLES)


def test_cli_unknown_oracle_is_a_usage_error(capsys):
    assert main(["--oracle", "vibes"]) == 2
    assert "unknown oracle" in capsys.readouterr().err


def test_cli_detects_defect_and_saves_corpus(delayed_jtl, tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    code = main(["--profile", "ci", "--max-examples", "15", "--quiet",
                 "--oracle", "kernel-differential",
                 "--corpus-dir", str(corpus_dir)])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "kernel-differential" in out
    assert list(corpus_dir.glob("kernel-differential-*.json"))


def test_cli_replay_modes(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    with _late_jtl():
        assert main(["--profile", "ci", "--max-examples", "15", "--quiet",
                     "--oracle", "kernel-differential",
                     "--corpus-dir", str(corpus_dir)]) == 1
        capsys.readouterr()
        # Defect still live: replay reproduces it.
        assert main(["--replay", str(corpus_dir)]) == 1
        assert "FAIL" in capsys.readouterr().out
    # Defect fixed: the corpus becomes a passing regression suite.
    assert main(["--replay", str(corpus_dir), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload and all(outcome["ok"] for outcome in payload)
    # Empty corpus replays clean.
    assert main(["--replay", str(tmp_path / "empty")]) == 0


def test_committed_corpus_replays_clean():
    """Every counterexample ever committed must stay fixed."""
    from pathlib import Path

    corpus = Path(__file__).parent / "corpus"
    outcomes = replay_corpus(str(corpus))
    failing = [outcome for outcome in outcomes if not outcome["ok"]]
    assert not failing, failing
