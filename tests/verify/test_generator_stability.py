"""Fixed-seed stability lock on the verify generator's output stream.

The generator's merger-spacing and splitter-growth logic is shared with
the synthesis builder (:mod:`repro.synth.builder`); these digests were
captured from the pre-hoist implementation, so any behavioral drift in
the shared helpers — bump order, tie-breaking, shortfall arithmetic —
shows up here as a key mismatch before it can silently reshuffle every
seeded campaign and corpus entry.
"""

import pytest

from repro.verify.generator import example_rng, generate_spec, profile

#: ``profile/seed/example`` -> NetlistSpec.key() of the generated spec,
#: captured before the legality helpers were hoisted into repro.synth.
DIGESTS = {
    "smoke/0/0": "413447d20874",
    "smoke/0/1": "488e6ccd965f",
    "smoke/0/2": "37b60941a366",
    "smoke/0/3": "38777a9831f0",
    "smoke/1/0": "814ff4ba9ffa",
    "smoke/1/1": "7337f39b65f9",
    "smoke/1/2": "11df19bf11a1",
    "smoke/1/3": "72a0c92586fc",
    "smoke/7/0": "37ff3b61f385",
    "smoke/7/1": "9d701fd26420",
    "smoke/7/2": "65f838ff8ece",
    "smoke/7/3": "49c1817625a9",
    "ci/0/0": "2ba7e947b01a",
    "ci/0/1": "e8e711a7690e",
    "ci/0/2": "6b50732b990d",
    "ci/0/3": "aae93139e006",
    "ci/1/0": "71992d04d13a",
    "ci/1/1": "0ed806f99da7",
    "ci/1/2": "26f89d8b15b6",
    "ci/1/3": "588e05fb1706",
    "ci/7/0": "4cfafbad7973",
    "ci/7/1": "9ae8e21bc5ec",
    "ci/7/2": "9da0d9c63679",
    "ci/7/3": "7c1b94066605",
    "nightly/0/0": "c28506c4f29e",
    "nightly/0/1": "a8e4cd0152e3",
    "nightly/0/2": "dd2cc59863d9",
    "nightly/0/3": "a79ac1ea9670",
    "nightly/1/0": "b38a09d4e616",
    "nightly/1/1": "3db39097c304",
    "nightly/1/2": "97e3f7c7c489",
    "nightly/1/3": "82ea5bb6abcb",
    "nightly/7/0": "d56995075f57",
    "nightly/7/1": "781b86f336b2",
    "nightly/7/2": "4a59420fe9fe",
    "nightly/7/3": "f4ca16c5a77d",
}


@pytest.mark.parametrize("case", sorted(DIGESTS))
def test_generated_spec_keys_are_byte_stable(case):
    prof_name, seed, example = case.split("/")
    spec = generate_spec(example_rng(int(seed), int(example)),
                         profile(prof_name))
    assert spec.key() == DIGESTS[case]
