"""Oracle matrix: every property holds on generated circuits, and each
oracle actually has teeth (a seeded defect trips it)."""

import pytest
from hypothesis import given, settings

from repro.errors import VerificationError
from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.oracles import (
    ORACLES,
    TIE_ORDER_SENSITIVE,
    oracle_drop_identity,
    oracle_kernel_differential,
    oracle_merger_commutativity,
    oracle_time_shift,
    run_oracle,
)
from repro.verify.spec import CellSpec, NetlistSpec, WireSpec
from tests.strategies import verify_specs


@settings(max_examples=25, deadline=None)
@given(verify_specs())
def test_full_matrix_holds_on_generated_specs(spec):
    for name, oracle in ORACLES.items():
        result = oracle(spec)
        assert result.ok, f"{name}: {result.detail}"
        assert result.oracle == name


def test_run_oracle_by_name_and_unknown_name():
    spec = generate_spec(example_rng(0, 0), profile("smoke"))
    assert run_oracle("lint-clean", spec).ok
    with pytest.raises(VerificationError, match="unknown oracle"):
        run_oracle("vibes", spec)


def test_merger_commutativity_inapplicable_without_mergers():
    spec = NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0),)),),
                       stimulus=(0,))
    result = oracle_merger_commutativity(spec)
    assert result.ok and not result.applicable


def test_identity_oracles_gate_on_tie_order_sensitive_cells():
    assert TIE_ORDER_SENSITIVE == {"Bff", "Dff2", "Mux", "Demux"}
    spec = NetlistSpec(
        cells=(
            CellSpec("Splitter", (WireSpec(0),)),
            CellSpec("Splitter", (WireSpec(2),)),
            CellSpec("Bff", (WireSpec(1), WireSpec(3),
                             WireSpec(4), WireSpec(5))),
        ),
        stimulus=(0, 1_000),
    )
    result = oracle_drop_identity(spec)
    assert result.ok and not result.applicable
    assert "tie-order" in result.detail


def test_kernel_differential_catches_a_reference_only_defect():
    """A cell whose reference ``handle`` drifts from its sealed inline
    opcode is exactly what the differential oracle trips on."""
    from repro.cells import Tff

    from tests.verify.helpers import inline_defect

    spec = NetlistSpec(cells=(CellSpec("Tff", (WireSpec(0),)),),
                       stimulus=(0, 5_000, 10_000, 15_000))
    assert oracle_kernel_differential(spec).ok

    original = Tff.handle

    def sticky(self, sim, port, time):  # never toggles back
        self.state = 1
        original(self, sim, port, time)

    with inline_defect(Tff, sticky):
        result = oracle_kernel_differential(spec)
    assert not result.ok
    assert result.detail


def test_time_shift_catches_absolute_time_defects(monkeypatch):
    """A cell that latches absolute timestamps into its behaviour breaks
    time-translation symmetry — and only that oracle sees it."""
    from repro.cells import Jtl

    spec = NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0),)),),
                       stimulus=(2_000, 9_000))
    assert oracle_time_shift(spec).ok

    def warped(self, sim, port, time):
        # Extra delay only before t=10ps: not shift-equivariant.
        self.emit(sim, "q", time + self.delay + (100 if time < 10_000 else 0))

    monkeypatch.setattr(Jtl, "handle", warped)
    assert not oracle_time_shift(spec).ok


def test_drop_identity_catches_lossy_channels(monkeypatch):
    """If a zero-rate DropChannel ever ate a pulse, the splice oracle
    notices immediately."""
    from repro.pulsesim.faults import DropChannel

    spec = NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0),)),),
                       stimulus=(0, 3_000))
    assert oracle_drop_identity(spec).ok

    def lossy(self, sim, port, time):
        self.pulses_seen += 1  # drops everything regardless of rate

    monkeypatch.setattr(DropChannel, "handle", lossy)
    result = oracle_drop_identity(spec)
    assert not result.ok
    assert "recordings" in result.detail or "state" in result.detail
