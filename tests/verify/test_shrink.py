"""Greedy shrinking: minimises, stays legal, respects its budget."""

from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.shrink import shrink
from repro.verify.spec import NetlistSpec, validate


def _big_spec():
    return generate_spec(example_rng(42, 7), profile("ci"))


def test_shrink_to_any_jtl_failure():
    spec = _big_spec()
    checked = []

    def has_jtl(candidate: NetlistSpec) -> bool:
        checked.append(candidate)
        return any(cell.kind == "Jtl" for cell in candidate.cells)

    if not has_jtl(spec):  # make the predicate initially true
        spec = generate_spec(example_rng(42, 9), profile("ci"))
        assert has_jtl(spec)
    result = shrink(spec, has_jtl)
    validate(result.spec)
    for candidate in checked:
        validate(candidate)  # the predicate only ever saw legal specs
    # Minimal failing form: some cells (>=1 Jtl plus any non-leaf
    # ancestors) with no stimulus left.
    assert any(cell.kind == "Jtl" for cell in result.spec.cells)
    assert len(result.spec.cells) <= len(spec.cells)
    assert result.spec.stimulus == ()
    assert result.improved


def test_shrink_zeroes_delays_and_times():
    spec = _big_spec()

    def failing(candidate: NetlistSpec) -> bool:
        return len(candidate.cells) >= 1

    result = shrink(spec, failing)
    assert all(wire.delay == 0
               for cell in result.spec.cells for wire in cell.inputs)
    assert result.spec.stimulus == ()
    assert len(result.spec.cells) == 1


def test_budget_caps_predicate_calls():
    spec = _big_spec()
    calls = []

    def failing(candidate: NetlistSpec) -> bool:
        calls.append(1)
        return True

    result = shrink(spec, failing, budget=5)
    assert result.calls == len(calls) == 5


def test_unshrinkable_failure_returns_original():
    spec = _big_spec()
    result = shrink(spec, lambda candidate: False)
    assert result.spec == spec
    assert not result.improved
