"""Waveform rendering."""

import numpy as np
import pytest

from repro.analog.waveform import Trace, pulses_to_trace


def test_pulses_render_as_peaks():
    trace = pulses_to_trace("x", [20_000, 60_000], 0, 100_000)
    peaks = trace.peak_times()
    assert len(peaks) == 2
    assert peaks[0] == pytest.approx(20_000, abs=300)
    assert peaks[1] == pytest.approx(60_000, abs=300)


def test_empty_pulse_train_is_flat():
    trace = pulses_to_trace("x", [], 0, 10_000)
    assert np.all(trace.value == 0)
    assert trace.peak_times() == []


def test_at_interpolates():
    trace = Trace("x", np.array([0.0, 10.0]), np.array([0.0, 1.0]))
    assert trace.at(5.0) == pytest.approx(0.5)


def test_sparkline_width_and_contrast():
    trace = pulses_to_trace("x", [50_000], 0, 100_000)
    line = trace.ascii_sparkline(width=40)
    assert len(line) == 40
    assert line.count("@") >= 1  # the peak
    assert line[0] == " "       # the baseline


def test_sparkline_of_empty_trace():
    trace = Trace("x", np.array([]), np.array([]))
    assert trace.ascii_sparkline() == ""


def test_amplitude_parameter():
    trace = pulses_to_trace("x", [5_000], 0, 10_000, amplitude_mv=2.0)
    assert float(np.max(trace.value)) == pytest.approx(2.0, rel=0.05)
