"""Inductor-integrator buffer model."""

import pytest
from hypothesis import given, strategies as st

from repro.analog.integrator import IntegratorBuffer
from repro.errors import ConfigurationError

EPOCH = 384_000  # 32 x 12 ps


@given(input_time=st.integers(min_value=0, max_value=EPOCH))
def test_output_delayed_exactly_one_epoch(input_time):
    buffer = IntegratorBuffer(EPOCH)
    assert buffer.output_time(input_time) == input_time + EPOCH


def test_current_profile_triangle():
    buffer = IntegratorBuffer(EPOCH, critical_current_ua=200.0)
    t_in = 50_000
    assert buffer.current_ua(t_in - 1, t_in) == 0.0
    assert buffer.current_ua(t_in, t_in) == 0.0
    assert buffer.current_ua(t_in + EPOCH // 2, t_in) == pytest.approx(200.0)
    assert buffer.current_ua(t_in + EPOCH // 4, t_in) == pytest.approx(100.0)
    assert buffer.current_ua(t_in + 3 * EPOCH // 4, t_in) == pytest.approx(100.0)
    assert buffer.current_ua(t_in + EPOCH + 1, t_in) == 0.0


def test_charge_rate():
    buffer = IntegratorBuffer(EPOCH, critical_current_ua=200.0)
    assert buffer.charge_rate_ua_per_fs() == pytest.approx(200.0 / (EPOCH / 2))


def test_simulate_produces_all_six_signals():
    buffer = IntegratorBuffer(EPOCH)
    traces = buffer.simulate(60_000)
    labels = [t.label for t in traces.all_traces()]
    assert labels == ["E", "IN", "L_a", "L_b", "I_L", "OUT"]


def test_simulated_output_peak_at_delayed_time():
    buffer = IntegratorBuffer(EPOCH)
    traces = buffer.simulate(60_000)
    peaks = traces.output_pulse.peak_times()
    assert len(peaks) == 1
    assert peaks[0] == pytest.approx(60_000 + EPOCH, abs=500)


def test_validation():
    with pytest.raises(ConfigurationError):
        IntegratorBuffer(0)
    with pytest.raises(ConfigurationError):
        IntegratorBuffer(EPOCH, critical_current_ua=1.0, baseline_ua=2.0)
    buffer = IntegratorBuffer(EPOCH)
    with pytest.raises(ConfigurationError):
        buffer.output_time(-1)
