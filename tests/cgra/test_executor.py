"""Epoch-accurate kernel execution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra import Fabric, Kernel, execute, map_kernel
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def _saxpy():
    k = Kernel("saxpy")
    k.input("x")
    k.input("y")
    k.const("a", 0.5)
    k.node("scaled", "mul", ["a", "x"])
    k.node("out", "add", ["scaled", "y"], output=True)
    return k


def _run(kernel, inputs, rows=2, cols=2, bits=10):
    fabric = Fabric(rows, cols, EpochSpec(bits=bits))
    mapping = map_kernel(kernel, fabric)
    return execute(kernel, fabric, mapping, inputs)


def test_saxpy_matches_reference():
    report = _run(_saxpy(), {"x": 0.5, "y": 0.25})
    assert report.outputs["out"] == pytest.approx(0.5, abs=0.01)
    assert report.max_abs_error < 0.01


@settings(deadline=None, max_examples=30)
@given(
    x=st.floats(min_value=0.0, max_value=1.0),
    y=st.floats(min_value=0.0, max_value=0.5),
)
def test_quantisation_error_bounded(x, y):
    report = _run(_saxpy(), {"x": x, "y": y}, bits=10)
    # Two PE stages, each quantising to 1/1024 with a halving/doubling:
    # error stays within a few grid steps.
    assert report.max_abs_error <= 8 / 1024


def test_latency_counts_pipeline_stages():
    report = _run(_saxpy(), {"x": 0.1, "y": 0.1})
    # 'scaled' fires at epoch 1, 'out' one stage later.
    assert report.node_ready_epoch["scaled"] == 1
    assert report.node_ready_epoch["out"] == 2
    assert report.latency_epochs == 2
    assert report.latency_fs == 2 * 1024 * 12_000


def test_distant_placement_adds_transit_epochs():
    k = Kernel("far")
    k.input("x")
    k.node("first", "mul", ["x", "x"])
    k.node("second", "mul", ["first", "x"], output=True)
    fabric = Fabric(1, 4, EpochSpec(bits=6))
    mapping = map_kernel(k, fabric)
    # Force the consumer to the far end of the row.
    from repro.cgra.fabric import Site

    mapping.placement["first"] = Site(0, 0)
    mapping.placement["second"] = Site(0, 3)
    report = execute(k, fabric, mapping, {"x": 0.5})
    # 1 (first) + 2 buffered hops + 1 (second) = 4 epochs.
    assert report.latency_epochs == 4
    assert report.interconnect_jj == 2 * 270


def test_mac_kernel():
    k = Kernel("mac")
    k.input("a")
    k.input("b")
    k.input("c")
    k.node("out", "mac", ["a", "b", "c"], output=True)
    report = _run(k, {"a": 0.5, "b": 0.5, "c": 0.25}, bits=10)
    assert report.outputs["out"] == pytest.approx(0.5, abs=0.01)


def test_area_accounting():
    report = _run(_saxpy(), {"x": 0.5, "y": 0.25})
    assert report.pes_used == 2
    assert report.pe_jj == 252
    assert report.total_jj == report.pe_jj + report.interconnect_jj


def test_input_validation():
    with pytest.raises(ConfigurationError, match="missing input"):
        _run(_saxpy(), {"x": 0.5})
    with pytest.raises(ConfigurationError, match="unipolar"):
        _run(_saxpy(), {"x": 1.5, "y": 0.0})


def test_render_mentions_costs():
    text = _run(_saxpy(), {"x": 0.5, "y": 0.25}).render()
    assert "saxpy" in text
    assert "latency" in text
    assert "PEs" in text
