"""Dataflow kernel construction and float reference."""

import pytest

from repro.cgra.kernel import Kernel
from repro.errors import ConfigurationError


def _saxpy():
    k = Kernel("saxpy")
    k.input("x")
    k.input("y")
    k.const("a", 0.5)
    k.node("scaled", "mul", ["a", "x"])
    k.node("out", "add", ["scaled", "y"], output=True)
    return k


def test_construction_and_queries():
    k = _saxpy()
    assert k.order == ["scaled", "out"]
    assert k.outputs == ["out"]
    assert k.is_declared("x") and k.is_declared("scaled")
    assert not k.is_declared("z")


def test_reference_evaluation():
    k = _saxpy()
    out = k.reference({"x": 0.5, "y": 0.25})
    assert out == {"out": 0.5 * 0.5 + 0.25}


def test_reference_saturates_at_one():
    k = Kernel("sat")
    k.input("x")
    k.node("sum", "add", ["x", "x"], output=True)
    assert k.reference({"x": 0.9}) == {"sum": 1.0}


def test_mac_op():
    k = Kernel("m")
    k.input("a")
    k.input("b")
    k.input("c")
    k.node("out", "mac", ["a", "b", "c"], output=True)
    assert k.reference({"a": 0.5, "b": 0.5, "c": 0.1}) == {"out": 0.35}


def test_duplicate_names_rejected():
    k = _saxpy()
    with pytest.raises(ConfigurationError, match="already declared"):
        k.input("x")
    with pytest.raises(ConfigurationError, match="already declared"):
        k.node("scaled", "mul", ["a", "x"])


def test_undeclared_sources_rejected():
    k = Kernel("bad")
    k.input("x")
    with pytest.raises(ConfigurationError, match="undeclared"):
        k.node("n", "mul", ["x", "missing"])


def test_operation_arity_enforced():
    k = Kernel("bad")
    k.input("x")
    with pytest.raises(ConfigurationError, match="takes 2 inputs"):
        k.node("n", "mul", ["x"])
    with pytest.raises(ConfigurationError, match="one of"):
        k.node("n", "div", ["x", "x"])


def test_constant_range_enforced():
    k = Kernel("bad")
    with pytest.raises(ConfigurationError, match="unipolar"):
        k.const("c", 1.5)


def test_validate_requirements():
    empty = Kernel("empty")
    with pytest.raises(ConfigurationError, match="no nodes"):
        empty.validate()
    k = Kernel("no_out")
    k.input("x")
    k.node("n", "mul", ["x", "x"])
    with pytest.raises(ConfigurationError, match="no outputs"):
        k.validate()


def test_reference_requires_all_inputs():
    k = _saxpy()
    with pytest.raises(ConfigurationError, match="missing input"):
        k.reference({"x": 0.5})
