"""Fabric geometry, interconnect costs, and greedy mapping."""

import pytest

from repro.cgra.fabric import (
    Fabric,
    Site,
    equivalent_binary_fabric_jj,
    fabric_throughput_gops,
)
from repro.cgra.kernel import Kernel
from repro.cgra.mapper import map_kernel
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def _fabric(rows=3, cols=3, bits=6):
    return Fabric(rows, cols, EpochSpec(bits=bits))


def _chain(n_nodes):
    """A linear dependency chain of n multiply nodes."""
    k = Kernel("chain")
    k.input("x")
    previous = "x"
    for i in range(n_nodes):
        previous = k.node(f"n{i}", "mul", [previous, "x"], output=(i == n_nodes - 1))
    return k


class TestFabric:
    def test_geometry(self):
        fabric = _fabric(2, 3)
        assert fabric.n_pes == 6
        assert len(fabric.sites) == 6
        assert fabric.pe_array_jj == 6 * 126

    def test_hop_epochs(self):
        fabric = _fabric()
        assert fabric.hop_epochs(Site(0, 0), Site(0, 1)) == 0  # adjacent: free
        assert fabric.hop_epochs(Site(0, 0), Site(2, 2)) == 3  # 4 hops - 1
        assert fabric.hop_epochs(Site(1, 1), Site(1, 1)) == 0

    def test_link_jj_per_buffered_hop(self):
        fabric = _fabric()
        assert fabric.link_jj(Site(0, 0), Site(0, 1)) == 0
        assert fabric.link_jj(Site(0, 0), Site(0, 2)) == 270

    def test_out_of_bounds_site(self):
        fabric = _fabric(2, 2)
        with pytest.raises(ConfigurationError):
            fabric.hop_epochs(Site(0, 0), Site(5, 0))

    def test_throughput(self):
        fabric = _fabric(2, 2, bits=6)
        full = fabric_throughput_gops(fabric, 4)
        assert full == pytest.approx(4 / (fabric.pe_epoch_fs() * 1e-15) / 1e9)
        assert fabric_throughput_gops(fabric, 0) == 0.0
        with pytest.raises(ConfigurationError):
            fabric_throughput_gops(fabric, 5)

    def test_binary_equivalent_dwarfs_unary(self):
        assert equivalent_binary_fabric_jj(9, 8) > 9 * 126 * 50

    def test_describe(self):
        assert "3x3" in _fabric().describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Fabric(0, 3, EpochSpec(bits=4))


class TestMapper:
    def test_all_nodes_placed_on_distinct_sites(self):
        kernel = _chain(6)
        mapping = map_kernel(kernel, _fabric())
        sites = list(mapping.placement.values())
        assert len(sites) == 6
        assert len(set(sites)) == 6

    def test_chain_placed_with_zero_buffered_hops(self):
        """Greedy nearest-producer placement keeps a chain adjacent."""
        kernel = _chain(6)
        fabric = _fabric()
        mapping = map_kernel(kernel, fabric)
        assert mapping.total_wire_hops(kernel, fabric) == 0
        assert mapping.interconnect_jj(kernel, fabric) == 0

    def test_kernel_larger_than_fabric_rejected(self):
        with pytest.raises(ConfigurationError, match="offers"):
            map_kernel(_chain(5), _fabric(2, 2))

    def test_unplaced_node_lookup_raises(self):
        mapping = map_kernel(_chain(2), _fabric())
        with pytest.raises(ConfigurationError, match="not placed"):
            mapping.site_of("ghost")

    def test_mapping_is_deterministic(self):
        kernel = _chain(4)
        a = map_kernel(kernel, _fabric()).placement
        b = map_kernel(kernel, _fabric()).placement
        assert a == b
