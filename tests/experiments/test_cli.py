"""The usfq-experiments CLI."""

from repro.experiments.cli import main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig18" in out
    assert "table3" in out


def test_run_single_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "done: 1 experiment(s)" in out


def test_run_reports_claim_summary(capsys):
    main(["fig12"])
    out = capsys.readouterr().out
    assert "claims" in out
    assert "all claims hold" in out


def test_output_directory_written(tmp_path, capsys):
    assert main(["table2", "fig12", "--output", str(tmp_path / "reports")]) == 0
    capsys.readouterr()
    table2 = (tmp_path / "reports" / "table2.txt").read_text()
    fig12 = (tmp_path / "reports" / "fig12.txt").read_text()
    assert "nagaoka2019" in table2
    assert "Shift-register" in fig12
