"""The usfq-experiments CLI: output, exit codes, runner flags."""

import json
import os

import pytest

from repro.experiments import registry
from repro.experiments.cli import main
from repro.experiments.report import ExperimentResult


@pytest.fixture(autouse=True)
def _sandbox_cache(tmp_path, monkeypatch):
    """Keep the default ``.usfq-cache`` out of the repo during tests."""
    monkeypatch.chdir(tmp_path)


@pytest.fixture(autouse=True)
def _isolate_kernel_env():
    """``--kernel`` exports REPRO_KERNEL; never leak it across tests."""
    saved = os.environ.pop("REPRO_KERNEL", None)
    yield
    if saved is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = saved


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig18" in out
    assert "table3" in out


def test_run_single_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out
    assert "done: 1 experiment(s)" in out


def test_run_reports_claim_summary(capsys):
    main(["fig12"])
    out = capsys.readouterr().out
    assert "claims" in out
    assert "all claims hold" in out


def test_output_directory_written(tmp_path, capsys):
    assert main(["table2", "fig12", "--output", str(tmp_path / "reports")]) == 0
    capsys.readouterr()
    table2 = (tmp_path / "reports" / "table2.txt").read_text()
    fig12 = (tmp_path / "reports" / "fig12.txt").read_text()
    assert "nagaoka2019" in table2
    assert "Shift-register" in fig12


def test_unknown_experiment_exits_2_with_stderr_message(capsys):
    assert main(["fig99"]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "unknown experiment 'fig99'" in captured.err
    assert "known:" in captured.err
    assert "fig18" in captured.err  # the message lists the valid ids


def _register_failing_experiment(monkeypatch):
    def failing():
        result = ExperimentResult("_fail", "forced failure", ["x"])
        result.add_row(1)
        result.add_claim("always differs", "1", "2", False)
        return result

    monkeypatch.setitem(registry.EXPERIMENTS, "_fail", failing)


def test_failing_claim_exits_nonzero(monkeypatch, capsys):
    """Regression: the CLI used to exit 0 even when claims differed."""
    _register_failing_experiment(monkeypatch)
    assert main(["_fail", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "1 claim(s) differ" in out


def test_fail_on_never_keeps_exit_zero(monkeypatch, capsys):
    _register_failing_experiment(monkeypatch)
    assert main(["_fail", "--no-cache", "--fail-on", "never"]) == 0
    assert "1 claim(s) differ" in capsys.readouterr().out


def test_parallel_stdout_matches_serial(capsys):
    ids = ["fig14", "fig16", "table2"]
    assert main([*ids, "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main([*ids, "--no-cache", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_kernel_choice_does_not_change_stdout(capsys):
    """Sealed vs reference kernel: byte-identical reports, any job count."""
    ids = ["fig14", "fig12"]
    outputs = []
    for flags in (["--kernel", "reference"],
                  ["--kernel", "sealed"],
                  ["--kernel", "sealed", "--jobs", "2"]):
        assert main([*ids, "--no-cache", *flags]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1] == outputs[2]


def test_kernel_flag_recorded_in_manifest(tmp_path, capsys):
    manifest = tmp_path / "m.json"
    args = ["table2", "--no-cache", "--manifest", str(manifest)]
    assert main([*args, "--kernel", "reference"]) == 0
    capsys.readouterr()
    assert json.loads(manifest.read_text())["kernel"] == "reference"
    assert main(args) == 0
    capsys.readouterr()
    assert json.loads(manifest.read_text())["kernel"] == "reference"  # env sticks
    del os.environ["REPRO_KERNEL"]
    assert main(args) == 0
    capsys.readouterr()
    assert json.loads(manifest.read_text())["kernel"] == "auto"


def test_cached_rerun_matches_and_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    manifest = tmp_path / "m.json"
    args = ["table2", "fig12", "--cache-dir", cache_dir,
            "--manifest", str(manifest)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert json.loads(manifest.read_text())["cache"]["misses"] == 2
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert json.loads(manifest.read_text())["cache"]["hits"] == 2


def test_manifest_written_alongside_output(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert main(["table2", "--output", str(out_dir)]) == 0
    capsys.readouterr()
    manifest = json.loads((out_dir / "manifest.json").read_text())
    assert manifest["totals"]["experiments"] == 1
    assert manifest["experiments"]["table2"]["claims_total"] > 0


def test_measured_activity_swaps_table3(tmp_path, capsys):
    manifest_path = tmp_path / "manifest.json"
    code = main([
        "table3", "--measured-activity", "--no-cache",
        "--manifest", str(manifest_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured switching activity" in out
    assert "assumed active (mW)" in out
    manifest = json.loads(manifest_path.read_text())
    entry = manifest["experiments"]["table3-measured"]
    assert entry["metrics"]["gauges"]["activity.multiplier.measured"] > 0
    assert entry["metrics"]["gauges"]["activity.balancer.measured"] > 0


def test_measured_activity_without_table3_changes_nothing(capsys):
    plain = main(["fig12", "--no-cache"])
    first = capsys.readouterr().out
    flagged = main(["fig12", "--no-cache", "--measured-activity"])
    second = capsys.readouterr().out
    assert plain == flagged == 0
    assert first == second
