"""Experiment harness: registry, reports, and end-to-end claim checks."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import Claim, ExperimentResult, format_result


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "table2", "table3", "fig02", "fig03", "fig04", "fig05", "fig07",
        "fig08", "fig09", "fig11", "fig12", "fig14", "fig16", "fig18",
        "fig19", "fig20", "fig21", "lint", "shard", "validation",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigurationError, match="unknown experiment"):
        run_experiment("fig99")


FAST_EXPERIMENTS = sorted(set(EXPERIMENTS) - {"fig19"})


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_every_fast_experiment_claims_hold(experiment_id):
    result = run_experiment(experiment_id)
    assert result.rows, f"{experiment_id} produced no rows"
    assert result.claims, f"{experiment_id} checked no claims"
    failed = [c.description for c in result.claims if not c.holds]
    assert not failed, f"{experiment_id} claims failed: {failed}"


def test_fig19_claims_hold():
    from repro.experiments import fig19_accuracy

    result = fig19_accuracy.run(trials=2)
    failed = [c.description for c in result.claims if not c.holds]
    assert not failed, f"fig19 claims failed: {failed}"


def test_format_result_renders_table_and_claims():
    result = ExperimentResult("t", "title", ["a", "b"])
    result.add_row(1, 2.5)
    result.add_claim("check", "1", "1", True)
    result.notes.append("a note")
    text = format_result(result)
    assert "== t: title ==" in text
    assert "2.5" in text
    assert "[OK ]" in text
    assert "note: a note" in text


def test_add_row_arity_checked():
    result = ExperimentResult("t", "title", ["a", "b"])
    with pytest.raises(ValueError):
        result.add_row(1)


def test_claim_render_marks_diffs():
    claim = Claim("d", "1", "2", False)
    assert "[DIFF]" in claim.render()
