"""Report rendering details."""

from repro.experiments.report import ExperimentResult, _cell, format_result


def test_cell_formats_floats_sensibly():
    assert _cell(0.0) == "0"
    assert _cell(1234.5) == "1,234.5"
    assert _cell(0.125) == "0.125"
    assert _cell(1.23e8) == "1.23e+08"
    assert _cell(4.2e-6) == "4.2e-06"
    assert _cell("text") == "text"
    assert _cell(42) == "42"


def test_format_without_rows_or_claims():
    result = ExperimentResult("x", "empty", ["a"])
    text = format_result(result)
    assert "== x: empty ==" in text
    assert "claims" not in text


def test_columns_align_to_widest_cell():
    result = ExperimentResult("x", "t", ["col", "very-long-column-name"])
    result.add_row("much-longer-cell-content", 1)
    lines = format_result(result).splitlines()
    header, separator, row = lines[1], lines[2], lines[3]
    assert len(separator) == len(header)
    assert row.startswith("much-longer-cell-content")


def test_claims_held_counter():
    result = ExperimentResult("x", "t", ["a"])
    result.add_claim("good", "1", "1", True)
    result.add_claim("bad", "1", "2", False)
    assert result.claims_held == 1
    text = format_result(result)
    assert "claims (1/2 hold)" in text
