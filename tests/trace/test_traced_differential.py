"""Tracing must not change results: traced vs untraced, both kernels.

Reuses the shared Hypothesis netlist strategy from :mod:`tests.strategies`:
random layered DAGs with heavy simultaneous stimulus.  A traced run (all
output ports tapped, scheduler health sampled per distinct timestamp)
must produce bit-identical probe recordings, stats, and cell state to an
untraced run of the same kernel — ``wall_s`` excepted, which is wall
clock and only checked for accumulation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pulsesim import Simulator
from repro.trace import TraceSession
from tests.strategies import netlists, run_case


@settings(max_examples=30, deadline=None)
@given(netlists(), st.sampled_from(["reference", "sealed"]))
def test_traced_run_is_bit_identical(case, kernel):
    build, stimulus = case
    untraced = run_case(build, stimulus, kernel)
    traced = run_case(build, stimulus, kernel, trace_factory=TraceSession)
    assert traced == untraced


@settings(max_examples=15, deadline=None)
@given(netlists(), st.integers(0, 30))
def test_traced_resume_matches_untraced(case, cut):
    """run(until=...) then run() under trace, against untraced, both kernels."""
    build, stimulus = case
    horizon = cut * 1_000

    def run_split(kernel, traced):
        circuit, entry, probes = build()
        session = TraceSession(circuit) if traced else None
        sim = Simulator(circuit, kernel=kernel, trace=session)
        sim.schedule_train(entry, "a", stimulus)
        sim.run(until=horizon)
        partial = [list(probe.times) for probe in probes]
        stats = sim.run()
        return (partial, [list(p.times) for p in probes],
                stats.events_processed, stats.pulses_emitted,
                stats.end_time, stats.max_queue_depth)

    for kernel in ("reference", "sealed"):
        assert run_split(kernel, True) == run_split(kernel, False)
