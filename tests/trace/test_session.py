"""TraceSession behaviour: taps, rings, scheduler health, detach."""

import pytest

from repro.cells.interconnect import Splitter
from repro.errors import SimulationError
from repro.pulsesim import Circuit, Simulator
from repro.trace import RingBuffer, TraceSession
from repro.trace.metrics import MetricsRegistry, capture_metrics


def _splitter_chain():
    """entry -> s1 -> (two probed legs), 1000 fs wire delays."""
    circuit = Circuit("chain")
    entry = circuit.add(Splitter("entry"))
    mid = circuit.add(Splitter("mid"))
    circuit.connect(entry, "q1", mid, "a", delay=1_000)
    return circuit, entry


def test_ring_buffer_bounds_and_drop_count():
    ring = RingBuffer(3)
    for value in range(5):
        ring.append(value)
    assert ring.items() == [2, 3, 4]
    assert ring.dropped == 2
    assert len(ring) == 3
    ring.clear()
    assert ring.items() == [] and ring.dropped == 0
    with pytest.raises(ValueError):
        RingBuffer(0)


def test_attach_taps_every_output_port():
    circuit, _entry = _splitter_chain()
    session = TraceSession(circuit)
    # entry.q1, entry.q2, mid.q1, mid.q2
    assert sorted(tap.name for tap in session.ports) == [
        "entry.q1", "entry.q2", "mid.q1", "mid.q2",
    ]
    assert session.port("mid.q1").total == 0
    with pytest.raises(KeyError):
        session.port("nope.q")


@pytest.mark.parametrize("kernel", ["reference", "sealed"])
def test_traced_run_collects_timelines_and_health(kernel):
    circuit, entry = _splitter_chain()
    session = TraceSession(circuit)
    sim = Simulator(circuit, kernel=kernel, trace=session)
    sim.schedule_train(entry, "a", [0, 5_000, 5_000, 9_000])
    stats = sim.run()

    from repro.models import technology as tech

    d = tech.T_SPLITTER_FS  # splitter internal delay
    assert session.port("entry.q1").times() == [d, 5_000 + d, 5_000 + d, 9_000 + d]
    assert session.port("mid.q2").times() == [
        t + 1_000 + d for t in session.port("entry.q1").times()
    ]
    # One health sample per distinct timestamp; cohorts total the events.
    samples = session.health.items()
    assert [s.time_fs for s in samples] == sorted({s.time_fs for s in samples})
    assert sum(s.cohort for s in samples) == stats.events_processed
    assert max(s.queue_depth for s in samples) <= stats.max_queue_depth
    assert session.metrics.counter("sim.events_processed").value == (
        stats.events_processed
    )
    assert session.metrics.gauge("sim.max_queue_depth").value >= 1


def test_port_totals_survive_reset_but_timelines_do_not():
    circuit, entry = _splitter_chain()
    session = TraceSession(circuit)
    sim = Simulator(circuit, kernel="reference", trace=session)
    sim.schedule_train(entry, "a", [0, 1_000])
    sim.run()
    assert session.port("entry.q1").total == 2
    sim.reset()  # circuit reset clears probe timelines
    assert session.port("entry.q1").times() == []
    assert session.port("entry.q1").total == 2  # cumulative across runs
    sim.schedule_input(entry, "a", 0)
    sim.run()
    assert session.port("entry.q1").total == 3


def test_detach_removes_taps_and_restores_untraced_behaviour():
    circuit, entry = _splitter_chain()
    session = TraceSession(circuit)
    assert len(circuit.probed_ports()) == 4
    session.detach()
    assert circuit.probed_ports() == []
    assert session.ports == []
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_input(entry, "a", 0)
    sim.run()  # no stale tap callbacks


def test_session_uses_ambient_registry_when_capturing():
    circuit, entry = _splitter_chain()
    with capture_metrics() as registry:
        session = TraceSession(circuit)
        assert session.metrics is registry
        sim = Simulator(circuit, kernel="reference", trace=session)
        sim.schedule_input(entry, "a", 0)
        sim.run()
    assert registry.counter("sim.events_processed").value > 0
    # An explicit registry still wins.
    private = MetricsRegistry()
    assert TraceSession(metrics=private).metrics is private


def test_max_events_budget_is_preserved_when_traced():
    circuit, entry = _splitter_chain()
    untraced_error = traced_error = None
    try:
        sim = Simulator(circuit, max_events=3, kernel="reference")
        sim.schedule_train(entry, "a", [0, 1_000, 2_000])
        sim.run()
    except SimulationError as error:
        untraced_error = str(error)
    circuit2, entry2 = _splitter_chain()
    try:
        session = TraceSession(circuit2)
        sim = Simulator(circuit2, max_events=3, kernel="reference", trace=session)
        sim.schedule_train(entry2, "a", [0, 1_000, 2_000])
        sim.run()
    except SimulationError as error:
        traced_error = str(error)
    assert untraced_error is not None
    assert traced_error == untraced_error
