"""Measured-activity extraction and its power-model plumbing."""

import pytest

from repro.models import power
from repro.trace import TraceSession, measure_dpu_activity
from repro.trace.activity import DEFAULT_SEED


def test_measure_dpu_activity_defaults():
    report = measure_dpu_activity()
    assert report.length == 8 and report.bits == 4 and report.epochs == 4
    assert 0.0 < report.multiplier_activity <= 1.0
    assert 0.0 < report.balancer_activity <= 1.0
    assert report.slots_per_port == report.epochs * (1 << report.bits)
    assert report.cell_group_pulses["multiplier"] > 0
    assert report.cell_group_pulses["balancer"] > 0


def test_measurement_is_deterministic_and_kernel_independent():
    first = measure_dpu_activity(kernel="reference")
    second = measure_dpu_activity(kernel="sealed")
    assert first.multiplier_activity == second.multiplier_activity
    assert first.balancer_activity == second.balancer_activity
    assert first.cell_group_pulses == second.cell_group_pulses
    # A different seed gives a different workload.
    other = measure_dpu_activity(seed=DEFAULT_SEED + 1)
    assert other.cell_group_pulses != first.cell_group_pulses


def test_session_keeps_raw_trace_when_passed_in():
    session = TraceSession(name="activity")
    report = measure_dpu_activity(epochs=2, session=session)
    assert len(session.ports) > 0
    assert sum(tap.total for tap in session.ports) == sum(
        report.cell_group_pulses.values()
    )
    assert len(session.health) > 0


def test_power_model_accepts_per_component_overrides():
    assumed = power.dpu_active_w(32)
    measured = power.dpu_active_w(
        32, multiplier_activity=0.25, balancer_activity=0.25
    )
    assert measured == pytest.approx(assumed / 2)
    rows = power.table3_rows(
        length=32, multiplier_activity=0.2, balancer_activity=0.4
    )
    assert rows[0].active_w == pytest.approx(power.multiplier_active_w(0.2))
    assert rows[1].active_w == pytest.approx(power.balancer_active_w(0.4))
    assert rows[2].active_w == pytest.approx(
        32 * power.multiplier_active_w(0.2) + 31 * power.balancer_active_w(0.4)
    )


def test_table3_measured_variant_runs_and_holds():
    from repro.experiments.registry import VARIANTS, resolve_experiment
    from repro.trace.metrics import capture_metrics

    assert resolve_experiment("table3-measured") is VARIANTS["table3-measured"]
    with capture_metrics() as registry:
        result = VARIANTS["table3-measured"]()
    assert result.claims_held == len(result.claims)
    assert registry.gauge("activity.multiplier.measured").value > 0
    assert registry.gauge("activity.balancer.measured").value > 0


def test_measured_variant_not_in_default_suite():
    from repro.experiments.registry import EXPERIMENTS

    assert "table3-measured" not in EXPERIMENTS
