"""usfq-trace CLI: artifact generation and validation."""

import json

import pytest

from repro.trace.cli import main, resolve_workload


def test_resolve_workload_aliases():
    assert resolve_workload("fig16") == "dpu"
    assert resolve_workload("fig14") == "dpu"
    assert resolve_workload("fig04") == "multiplier"
    assert resolve_workload("counting") == "counting"
    with pytest.raises(SystemExit, match="unknown workload"):
        resolve_workload("fig99")


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "dpu" in out and "fig16" in out


def test_no_workload_is_usage_error(capsys):
    assert main([]) == 2
    assert "workload" in capsys.readouterr().err


def test_fig16_emits_all_artifacts(tmp_path, capsys):
    vcd = tmp_path / "out.vcd"
    perfetto = tmp_path / "out.json"
    metrics = tmp_path / "out.metrics.json"
    code = main([
        "fig16",
        "--epochs", "2",
        "--vcd", str(vcd),
        "--perfetto", str(perfetto),
        "--metrics", str(metrics),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "measured multiplier activity" in out

    from repro.trace import parse_vcd, validate_trace

    vcd_info = parse_vcd(vcd.read_text())
    assert "queue_depth" in vcd_info["vars"].values()
    assert any(name.startswith("dpu.mul") for name in vcd_info["vars"].values())

    trace_info = validate_trace(json.loads(perfetto.read_text()))
    assert trace_info["counter_series"] == ["cohort", "queue_depth"]
    assert any(track.startswith("dpu.cn") for track in trace_info["tracks"])

    metrics_doc = json.loads(metrics.read_text())
    assert metrics_doc["counters"]["sim.events_processed"] > 0
    assert any(
        name.startswith("trace.pulses.dpu.mul")
        for name in metrics_doc["counters"]
    )
    assert metrics_doc["gauges"]["sim.max_queue_depth"] >= 1


def test_multiplier_and_counting_workloads(tmp_path):
    for name in ("multiplier", "counting"):
        vcd = tmp_path / f"{name}.vcd"
        assert main([name, "--vcd", str(vcd)]) == 0
        assert vcd.exists()


def test_validate_subcommand(tmp_path, capsys):
    vcd = tmp_path / "out.vcd"
    perfetto = tmp_path / "out.json"
    assert main(["fig16", "--epochs", "1", "--vcd", str(vcd),
                 "--perfetto", str(perfetto)]) == 0
    capsys.readouterr()
    assert main(["validate", "--vcd", str(vcd), "--perfetto", str(perfetto)]) == 0
    out = capsys.readouterr().out
    assert "vcd ok" in out and "perfetto ok" in out

    bad = tmp_path / "bad.vcd"
    bad.write_text("not a vcd\n")
    assert main(["validate", "--vcd", str(bad)]) == 1
    assert main(["validate"]) == 2


def test_vcd_artifact_is_deterministic(tmp_path):
    first = tmp_path / "a.vcd"
    second = tmp_path / "b.vcd"
    for path in (first, second):
        assert main(["fig16", "--epochs", "1", "--vcd", str(path)]) == 0
    assert first.read_text() == second.read_text()
