"""Ambient metrics must be task-local, not process-global.

``capture_metrics`` used to push onto a module-level list; two asyncio
tasks interleaving at await points would then record into *each other's*
registries.  The ContextVar migration gives every task its own stack —
these tests are the regression harness for that property (the serving
layer runs one capture block per in-flight request).
"""

import asyncio
import threading

from repro.trace import MetricsRegistry, capture_metrics, current_registry


def test_overlapping_asyncio_tasks_have_isolated_registries():
    async def worker(name, ticks, barrier):
        with capture_metrics() as registry:
            for _ in range(ticks):
                # Yield mid-block so the other task runs while this
                # capture is open — exactly the interleaving that
                # corrupted the old global stack.
                await barrier()
                current_registry().counter(name).inc()
            return registry.to_dict()["counters"]

    async def main():
        wake = asyncio.Event()

        async def barrier():
            wake.set()
            await asyncio.sleep(0)

        task_a = asyncio.ensure_future(worker("a", 3, barrier))
        task_b = asyncio.ensure_future(worker("b", 5, barrier))
        return await asyncio.gather(task_a, task_b)

    counters_a, counters_b = asyncio.run(main())
    assert counters_a == {"a": 3}
    assert counters_b == {"b": 5}


def test_nested_capture_still_behaves_like_a_stack():
    outer_registry = MetricsRegistry()
    with capture_metrics(outer_registry):
        assert current_registry() is outer_registry
        with capture_metrics() as inner:
            assert current_registry() is inner
            current_registry().counter("inner_hits").inc()
        assert current_registry() is outer_registry
        current_registry().counter("outer_hits").inc()
    assert current_registry() is None
    assert outer_registry.to_dict()["counters"] == {"outer_hits": 1}
    assert inner.to_dict()["counters"] == {"inner_hits": 1}


def test_threads_do_not_see_each_others_registry():
    seen = {}

    def probe(name):
        # A fresh thread starts from an empty context: no ambient registry.
        seen[name] = current_registry()

    with capture_metrics():
        thread = threading.Thread(target=probe, args=("worker",))
        thread.start()
        thread.join()
        assert current_registry() is not None
    assert seen["worker"] is None
