"""Golden-file tests for the VCD and Perfetto exporters."""

import io
import json

import pytest

from repro.cells.interconnect import Splitter
from repro.pulsesim import Circuit, Simulator
from repro.trace import (
    TraceSession,
    parse_vcd,
    trace_events,
    validate_trace,
    write_perfetto,
    write_vcd,
)
from repro.trace.perfetto import trace_document
from repro.trace.vcd import pulse_intervals, vcd_lines


def _traced_session():
    circuit = Circuit("exporter")
    entry = circuit.add(Splitter("entry"))
    mid = circuit.add(Splitter("mid"))
    circuit.connect(entry, "q1", mid, "a", delay=1_000)
    session = TraceSession(circuit)
    sim = Simulator(circuit, kernel="sealed", trace=session)
    sim.schedule_train(entry, "a", [0, 10_000, 10_000, 25_000])
    sim.run()
    return session


def test_pulse_intervals_merge_overlaps():
    assert pulse_intervals([0, 500, 5_000], 2_000) == [(0, 2_500), (5_000, 7_000)]
    assert pulse_intervals([], 2_000) == []
    assert pulse_intervals([3, 3], 10) == [(3, 13)]


def test_vcd_structure_parses():
    session = _traced_session()
    buffer = io.StringIO()
    write_vcd(session, buffer)
    info = parse_vcd(buffer.getvalue())
    assert info["timescale"] == "1 fs"
    # 4 port wires + the queue_depth integer.
    assert sorted(info["vars"].values()) == [
        "entry.q1", "entry.q2", "mid.q1", "mid.q2", "queue_depth",
    ]
    assert info["change_count"] > 0
    assert info["times"] == sorted(info["times"])


def test_vcd_is_deterministic():
    first, second = io.StringIO(), io.StringIO()
    write_vcd(_traced_session(), first)
    write_vcd(_traced_session(), second)
    assert first.getvalue() == second.getvalue()


def test_parse_vcd_rejects_malformed_documents():
    with pytest.raises(ValueError, match="timescale"):
        parse_vcd("$enddefinitions $end\n")
    good = io.StringIO()
    write_vcd(_traced_session(), good)
    with pytest.raises(ValueError, match="undeclared"):
        parse_vcd(good.getvalue() + "\n1ZZ\n")


def test_perfetto_round_trips_and_validates():
    session = _traced_session()
    buffer = io.StringIO()
    write_perfetto(session, buffer)
    document = json.loads(buffer.getvalue())  # must round-trip json
    info = validate_trace(document)
    assert info["tracks"] == ["entry.q1", "entry.q2", "mid.q1", "mid.q2"]
    assert info["counter_series"] == ["cohort", "queue_depth"]
    # 4 stimulus pulses through two splitters: 4 + 4 + 4 pulses... each
    # traced port records its own copies; just pin against the session.
    assert info["pulse_count"] == sum(tap.total for tap in session.ports)
    assert document["displayTimeUnit"] == "ns"


def test_perfetto_event_invariants():
    session = _traced_session()
    events = trace_events(session)
    pids = {event["pid"] for event in events}
    assert pids == {1}
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" and e["tid"] >= 1 for e in instants)
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in counters} == {"queue_depth", "cohort"}
    assert all(e["tid"] == 0 for e in counters)


def test_validate_trace_rejects_malformed():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_trace({"events": []})
    with pytest.raises(ValueError, match="ph"):
        validate_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ValueError, match="ts"):
        validate_trace({"traceEvents": [{"ph": "i"}]})


def test_file_destinations(tmp_path):
    session = _traced_session()
    vcd_path = tmp_path / "out.vcd"
    json_path = tmp_path / "out.json"
    write_vcd(session, str(vcd_path))
    write_perfetto(session, str(json_path))
    assert parse_vcd(vcd_path.read_text())["change_count"] > 0
    assert validate_trace(json.loads(json_path.read_text()))["event_count"] > 0
    # Deterministic documents: a second export is byte-identical.
    document = trace_document(session)
    assert json.loads(json_path.read_text()) == json.loads(
        json.dumps(document)
    )
