"""Unit tests for the metrics registry and snapshot merging."""

import pytest

from repro.trace.metrics import (
    MetricsRegistry,
    capture_metrics,
    current_registry,
    empty_metrics,
    merge_metric_dicts,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("pulses")
    counter.inc()
    counter.inc(4)
    assert registry.counter("pulses").value == 5  # same instrument by name
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_set_max():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(10)
    gauge.set_max(7)
    assert gauge.value == 10
    gauge.set_max(12)
    assert gauge.value == 12


def test_histogram_buckets_and_summary():
    hist = MetricsRegistry().histogram("cohort", bounds=(1, 4, 16))
    for value in (1, 2, 3, 20, 100):
        hist.observe(value)
    assert hist.count == 5
    assert hist.min == 1 and hist.max == 100
    assert hist.mean == pytest.approx(126 / 5)
    assert hist.bucket_counts == [1, 2, 0, 2]  # <=1, <=4, <=16, overflow


def test_to_dict_is_sorted_and_json_shaped():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(3.5)
    registry.histogram("h", bounds=(2,)).observe(1)
    doc = registry.to_dict()
    assert list(doc["counters"]) == ["a", "b"]
    assert doc["gauges"] == {"g": 3.5}
    assert doc["histograms"]["h"]["bucket_counts"] == [1, 0]
    assert empty_metrics() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_metric_dicts_semantics():
    left = MetricsRegistry()
    left.counter("events").inc(10)
    left.gauge("depth").set(5)
    left.histogram("h", bounds=(1, 2)).observe(1)
    right = MetricsRegistry()
    right.counter("events").inc(7)
    right.counter("only_right").inc(1)
    right.gauge("depth").set(3)
    right.histogram("h", bounds=(1, 2)).observe(2)

    merged = merge_metric_dicts(left.to_dict(), right.to_dict())
    assert merged["counters"] == {"events": 17, "only_right": 1}
    assert merged["gauges"] == {"depth": 5}  # gauges keep the max
    assert merged["histograms"]["h"]["count"] == 2
    assert merged["histograms"]["h"]["bucket_counts"] == [1, 1, 0]


def test_merge_into_empty_is_identity():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.histogram("h").observe(9)
    snapshot = registry.to_dict()
    assert merge_metric_dicts(empty_metrics(), snapshot) == snapshot


def test_capture_metrics_stack():
    assert current_registry() is None
    with capture_metrics() as outer:
        assert current_registry() is outer
        with capture_metrics() as inner:
            assert current_registry() is inner
            current_registry().counter("seen").inc()
        assert current_registry() is outer
        assert inner.counter("seen").value == 1
    assert current_registry() is None
