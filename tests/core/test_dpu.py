"""Dot-product unit: structural vs functional, batch API, accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dpu import DotProductUnit, DpuModel, dpu_compute_jj
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def test_jj_model():
    # L multipliers + (L - 1) balancers.
    assert dpu_compute_jj(4) == 4 * 16 + 3 * 56
    assert dpu_compute_jj(4, bipolar=True) == 4 * 46 + 3 * 56
    with pytest.raises(ConfigurationError):
        dpu_compute_jj(3)


@settings(deadline=None, max_examples=15)
@given(data=st.data())
def test_structural_matches_functional(data):
    epoch = EpochSpec(bits=4)
    dpu = DotProductUnit(epoch, 4)
    model = DpuModel(epoch, 4)
    slots = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
    counts = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
    assert dpu.run_counts(slots, counts) == model.output_count(slots, counts)


def test_dot_value_close_to_math(epoch6):
    model = DpuModel(epoch6, 4)
    a = [0.25, 0.5, 0.75, 1.0]
    b = [1.0, 0.5, 0.25, 0.125]
    want = sum(x * y for x, y in zip(a, b)) / 4
    assert model.dot(a, b) == pytest.approx(want, abs=3 / 64)


def test_bipolar_dot(epoch6):
    model = DpuModel(epoch6, 4, bipolar=True)
    a = [-0.5, 0.5, -1.0, 1.0]
    b = [0.5, 0.5, 1.0, 0.25]
    want = sum(x * y for x, y in zip(a, b)) / 4
    assert model.dot(a, b) == pytest.approx(want, abs=8 / 64)


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_batch_matches_scalar(data):
    epoch = EpochSpec(bits=5)
    for bipolar in (False, True):
        model = DpuModel(epoch, 4, bipolar=bipolar)
        slots = [data.draw(st.integers(min_value=0, max_value=32)) for _ in range(4)]
        counts = [data.draw(st.integers(min_value=0, max_value=32)) for _ in range(4)]
        batch = model.output_counts_batch(
            np.array([slots]), np.array([counts])
        )
        assert int(batch[0]) == model.output_count(slots, counts)


def test_operand_arity_enforced(epoch4):
    model = DpuModel(epoch4, 4)
    with pytest.raises(ConfigurationError):
        model.output_count([0, 1], [2, 3])
    dpu = DotProductUnit(epoch4, 4)
    with pytest.raises(ConfigurationError):
        dpu.run_counts([0] * 3, [0] * 4)


def test_batch_shape_validation(epoch4):
    model = DpuModel(epoch4, 4)
    with pytest.raises(ConfigurationError):
        model.output_counts_batch(np.zeros((2, 3)), np.zeros((2, 3)))


def test_length_must_be_power_of_two(epoch4):
    with pytest.raises(ConfigurationError):
        DpuModel(epoch4, 6)
    with pytest.raises(ConfigurationError):
        DotProductUnit(epoch4, 1)


def test_structural_jj_property(epoch4):
    dpu = DotProductUnit(epoch4, 4)
    assert dpu.jj_count == dpu_compute_jj(4)


class TestBipolarStructural:
    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_bipolar_dpu_matches_functional(self, data):
        # Wider slots keep the bipolar lanes' two pulse groups (direct and
        # complement paths) clear of the balancers' t_BFF hazard window.
        from repro.units import ps

        epoch = EpochSpec(bits=4, slot_fs=ps(30))
        dpu = DotProductUnit(epoch, 4, bipolar=True)
        model = DpuModel(epoch, 4, bipolar=True)
        slots = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
        counts = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
        assert dpu.run_counts(slots, counts) == model.output_count(slots, counts)

    def test_bipolar_dot_signs(self):
        from repro.units import ps

        epoch = EpochSpec(bits=5, slot_fs=ps(30))
        dpu = DotProductUnit(epoch, 4, bipolar=True)
        value = dpu.run_counts([0, 32, 0, 32], [0, 32, 0, 32])
        # (-1)(-1) + (1)(1) + (-1)(-1) + (1)(1) = 4 -> mean +1 -> all pulses.
        assert value == 32

    def test_bipolar_jj_budget(self):
        from repro.units import ps

        epoch = EpochSpec(bits=4, slot_fs=ps(30))
        dpu = DotProductUnit(epoch, 4, bipolar=True)
        assert dpu.jj_count == dpu_compute_jj(4, bipolar=True)


class TestMultiEpochStreaming:
    def test_back_to_back_epochs_with_state_carryover(self, epoch4):
        """Wave-pipelined frames match a stateful cascade reference."""
        dpu = DotProductUnit(epoch4, 4)
        frames_a = [[4, 8, 12, 16], [0, 16, 8, 4], [16, 16, 16, 16]]
        frames_b = [[16, 8, 4, 2], [7, 7, 7, 7], [16, 16, 16, 16]]
        got = dpu.run_epochs(frames_a, frames_b)

        # Reference: per-tap products + stateful pairwise cascade.
        from repro.core.multiplier import unipolar_product_count

        states = [[0, 0], [0]]
        expected = []
        for a_slots, b_counts in zip(frames_a, frames_b):
            counts = [
                unipolar_product_count(b_counts[i], a_slots[i], 16)
                for i in range(4)
            ]
            for level, level_states in enumerate(states):
                merged = []
                for node in range(len(counts) // 2):
                    total = counts[2 * node] + counts[2 * node + 1]
                    merged.append((total + (1 - level_states[node])) // 2)
                    level_states[node] ^= total & 1
                counts = merged
            expected.append(counts[0])
        assert got == expected

    def test_single_frame_matches_run_counts(self, epoch4):
        dpu = DotProductUnit(epoch4, 4)
        slots, counts = [3, 9, 14, 6], [5, 11, 2, 16]
        assert dpu.run_epochs([slots], [counts]) == [dpu.run_counts(slots, counts)]

    def test_frame_validation(self, epoch4):
        dpu = DotProductUnit(epoch4, 4)
        with pytest.raises(ConfigurationError):
            dpu.run_epochs([[0] * 4], [])
        with pytest.raises(ConfigurationError):
            dpu.run_epochs([[0] * 3], [[0] * 4])
