"""FIR accelerators: fidelity, error injection, validation."""

import numpy as np
import pytest

from repro.core.fir import BinaryFirFilter, UnaryFirFilter
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def _impulse(n=64):
    x = np.zeros(n)
    x[0] = 1.0
    return x


def _coeffs():
    return np.array([0.1, 0.3, 0.3, 0.1])


class TestUnaryFir:
    def test_impulse_response_recovers_coefficients(self):
        fir = UnaryFirFilter(EpochSpec(bits=12), _coeffs(), exact_counting=False)
        out = fir.process(_impulse())
        assert np.allclose(out[:4], _coeffs(), atol=0.01)
        assert np.allclose(out[6:], 0.0, atol=0.01)

    def test_sine_tracks_float_filter_at_high_bits(self):
        epoch = EpochSpec(bits=14)
        h = _coeffs()
        fir = UnaryFirFilter(epoch, h, exact_counting=False)
        x = np.sin(np.linspace(0, 8 * np.pi, 200)) * 0.8
        got = fir.process(x)
        want = np.convolve(x, h)[:200]
        assert np.max(np.abs(got - want)) < 0.02

    def test_exact_counting_resolution_is_coarser(self):
        """The physical cascade quantises to 2 * L / n_max steps."""
        epoch = EpochSpec(bits=6)
        h = _coeffs()
        x = np.sin(np.linspace(0, 8 * np.pi, 100)) * 0.8
        exact = UnaryFirFilter(epoch, h, exact_counting=True).process(x)
        paper = UnaryFirFilter(epoch, h, exact_counting=False).process(x)
        want = np.convolve(x, h)[:100]
        assert np.mean((exact - want) ** 2) >= np.mean((paper - want) ** 2)

    def test_pulse_loss_is_zero_mean_noise(self):
        epoch = EpochSpec(bits=12)
        h = _coeffs()
        x = np.sin(np.linspace(0, 8 * np.pi, 400)) * 0.8
        clean = UnaryFirFilter(epoch, h, exact_counting=False).process(x)
        noisy = UnaryFirFilter(
            epoch, h, pulse_loss_rate=0.3, exact_counting=False, seed=1
        ).process(x)
        error = noisy - clean
        assert np.abs(np.mean(error)) < 0.01  # no DC shift
        assert np.std(error) > 0.0

    def test_rl_loss_reads_full_scale(self):
        epoch = EpochSpec(bits=8)
        fir = UnaryFirFilter(
            epoch, _coeffs(), rl_loss_rate=1.0, exact_counting=False, seed=2
        )
        out = fir.process(np.zeros(16))
        # Every tap sees x = +1: output ~ sum(h).
        assert np.allclose(out, np.sum(_coeffs()), atol=0.05)

    def test_rl_delay_shifts_by_single_slots(self):
        epoch = EpochSpec(bits=8)
        x = np.sin(np.linspace(0, 4 * np.pi, 100)) * 0.5
        clean = UnaryFirFilter(epoch, _coeffs(), exact_counting=False).process(x)
        jittery = UnaryFirFilter(
            epoch, _coeffs(), rl_delay_rate=1.0, exact_counting=False, seed=3
        ).process(x)
        # Worst case: every tap off by one slot -> error <= sum|h| * 2/256,
        # plus one pulse-count rounding step (2/256) on the summed output.
        bound = np.sum(np.abs(_coeffs())) * 2 / 256 + 2 / 256
        assert np.max(np.abs(jittery - clean)) <= bound + 1e-9

    def test_seeded_error_injection_is_reproducible(self):
        epoch = EpochSpec(bits=8)
        x = np.sin(np.linspace(0, 4 * np.pi, 50)) * 0.5
        a = UnaryFirFilter(epoch, _coeffs(), pulse_loss_rate=0.2, seed=11).process(x)
        b = UnaryFirFilter(epoch, _coeffs(), pulse_loss_rate=0.2, seed=11).process(x)
        assert np.array_equal(a, b)

    def test_empty_input(self):
        fir = UnaryFirFilter(EpochSpec(bits=6), _coeffs())
        assert fir.process([]).size == 0

    def test_validation(self):
        epoch = EpochSpec(bits=6)
        with pytest.raises(ConfigurationError):
            UnaryFirFilter(epoch, [])
        with pytest.raises(ConfigurationError):
            UnaryFirFilter(epoch, [1.5])
        with pytest.raises(ConfigurationError):
            UnaryFirFilter(epoch, _coeffs(), pulse_loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            UnaryFirFilter(epoch, _coeffs(), rl_delay_slots=0)
        fir = UnaryFirFilter(epoch, _coeffs())
        with pytest.raises(ConfigurationError):
            fir.process([2.0])
        with pytest.raises(ConfigurationError):
            fir.process(np.zeros((2, 2)))

    def test_tap_padding_to_power_of_two(self):
        fir = UnaryFirFilter(EpochSpec(bits=6), np.full(5, 0.1))
        assert fir.taps == 5
        assert fir.length == 8

    def test_jj_count_uses_area_model(self):
        fir = UnaryFirFilter(EpochSpec(bits=8), np.full(32, 0.01))
        from repro.models import area

        assert fir.jj_count == area.fir_unary_jj(32, 8)

    def test_ideal_response_is_plain_convolution(self):
        fir = UnaryFirFilter(EpochSpec(bits=6), _coeffs())
        x = np.sin(np.linspace(0, 2 * np.pi, 20))
        assert np.allclose(fir.ideal_response(x), np.convolve(x, _coeffs())[:20])


class TestBinaryFir:
    def test_high_resolution_matches_float(self):
        fir = BinaryFirFilter(16, _coeffs())
        x = np.sin(np.linspace(0, 8 * np.pi, 100)) * 0.8
        want = np.convolve(x, _coeffs())[:100]
        assert np.max(np.abs(fir.process(x) - want)) < 0.005

    def test_quantisation_noise_grows_at_low_bits(self):
        x = np.sin(np.linspace(0, 8 * np.pi, 200)) * 0.8
        want = np.convolve(x, _coeffs())[:200]
        err4 = np.mean((BinaryFirFilter(4, _coeffs()).process(x) - want) ** 2)
        err12 = np.mean((BinaryFirFilter(12, _coeffs()).process(x) - want) ** 2)
        assert err4 > err12

    def test_bit_flips_change_output(self):
        x = np.sin(np.linspace(0, 8 * np.pi, 200)) * 0.8
        clean = BinaryFirFilter(12, _coeffs()).process(x)
        flipped = BinaryFirFilter(12, _coeffs(), bit_flip_rate=0.5, seed=4).process(x)
        assert not np.array_equal(clean, flipped)

    def test_seeded_flips_reproducible(self):
        x = np.ones(50) * 0.5
        a = BinaryFirFilter(10, _coeffs(), bit_flip_rate=0.3, seed=5).process(x)
        b = BinaryFirFilter(10, _coeffs(), bit_flip_rate=0.3, seed=5).process(x)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BinaryFirFilter(1, _coeffs())
        with pytest.raises(ConfigurationError):
            BinaryFirFilter(8, [])
        with pytest.raises(ConfigurationError):
            BinaryFirFilter(8, _coeffs(), bit_flip_rate=2.0)

    def test_empty_input(self):
        assert BinaryFirFilter(8, _coeffs()).process([]).size == 0
