"""End-to-end structural FIR: every substrate at pulse level."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fir_structural import StructuralUnaryFir
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def test_pulse_exact_agreement_small_config():
    fir = StructuralUnaryFir(EpochSpec(bits=4), [3, 7, 7, 3])
    slots = [4, 2, 8, 3, 15, 14, 15, 12]
    assert fir.process_slots(slots) == fir.reference_counts(slots)


@settings(deadline=None, max_examples=10)
@given(data=st.data())
def test_pulse_exact_agreement_random(data):
    bits = data.draw(st.sampled_from([3, 4]))
    taps = data.draw(st.sampled_from([2, 4]))
    n_max = 1 << bits
    words = [data.draw(st.integers(min_value=0, max_value=n_max - 1)) for _ in range(taps)]
    fir = StructuralUnaryFir(EpochSpec(bits=bits), words)
    slots = [data.draw(st.integers(min_value=0, max_value=n_max)) for _ in range(6)]
    assert fir.process_slots(slots) == fir.reference_counts(slots)


def test_eight_taps_five_bits():
    fir = StructuralUnaryFir(EpochSpec(bits=5), [9, 3, 14, 1, 7, 7, 2, 0])
    random.seed(3)
    slots = [random.randint(0, 32) for _ in range(8)]
    assert fir.process_slots(slots) == fir.reference_counts(slots)


def test_impulse_walks_down_the_delay_line():
    """An early impulse after a run of zeros exposes each tap in turn."""
    bits = 4
    fir = StructuralUnaryFir(EpochSpec(bits=bits), [15, 8, 4, 2])
    # Slot 0 = value 0 (reset immediately); slot 16 = value 1 (never reset).
    slots = [0, 16, 0, 0, 0, 0]
    got = fir.process_slots(slots)
    assert got == fir.reference_counts(slots)
    # The full-scale sample at epoch 1 reaches tap k at epoch 1 + k, so the
    # output stays above the all-zero floor for four consecutive epochs.
    floor = fir.process_slots([0] * 6)
    assert all(g >= f for g, f in zip(got[1:5], floor[1:5]))


def test_steady_state_full_scale_passes_mean_coefficient():
    fir = StructuralUnaryFir(EpochSpec(bits=4), [8, 8, 8, 8])
    out = fir.process_slots([16] * 6)
    # Every tap passes its whole 8-pulse stream; (8*4)/4 = 8 per epoch.
    assert out[-1] == 8


def test_configuration_limits():
    epoch = EpochSpec(bits=4)
    with pytest.raises(ConfigurationError):
        StructuralUnaryFir(epoch, [1, 2, 3])  # not a power of two
    with pytest.raises(ConfigurationError):
        StructuralUnaryFir(epoch, [1] * 16)  # too many taps
    with pytest.raises(ConfigurationError):
        StructuralUnaryFir(EpochSpec(bits=8), [1, 2])  # too many bits
    fir = StructuralUnaryFir(epoch, [1, 2])
    with pytest.raises(ConfigurationError):
        fir.process_slots([17])


def test_jj_count_positive_and_complete():
    fir = StructuralUnaryFir(EpochSpec(bits=4), [3, 7, 7, 3])
    # multipliers + counting network + delay line + head splitter + bank.
    assert fir.jj_count > 4 * 16 + 3 * 56 + 3 * 270
