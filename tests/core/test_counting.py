"""Counting networks: ceil cascade, structural equivalence, budgets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counting import (
    CountingNetwork,
    build_counting_network,
    counting_network_depth,
    counting_network_jj,
    counting_network_output_count,
)
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim import Circuit
from repro.pulsesim.schedule import uniform_stream_times

SLOT = tech.T_BFF_FS


# -- functional model ---------------------------------------------------------
@given(
    depth=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_output_is_ceil_cascade_of_sum(depth, data):
    m = 1 << depth
    counts = data.draw(
        st.lists(st.integers(min_value=0, max_value=32), min_size=m, max_size=m)
    )
    out = counting_network_output_count(counts)
    total = sum(counts)
    # The cascade never undercounts ceil(total / m) and over-counts by at
    # most half a pulse per level.
    assert -(-total // m) <= out <= -(-total // m) + depth


@given(data=st.data())
def test_equal_inputs_divide_exactly(data):
    m = data.draw(st.sampled_from([2, 4, 8, 16]))
    n = data.draw(st.integers(min_value=0, max_value=64))
    assert counting_network_output_count([n] * m) == n


def test_fig6d_example_three_balancers():
    assert counting_network_jj(4) == 3 * 56
    assert counting_network_depth(4) == 2


def test_validation():
    for bad in (0, 1, 3, 6):
        with pytest.raises(ConfigurationError):
            counting_network_output_count([1] * bad if bad else [])
    with pytest.raises(ConfigurationError):
        counting_network_output_count([1, -1])
    with pytest.raises(ConfigurationError):
        counting_network_jj(5)


# -- structural ----------------------------------------------------------------
@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_structural_matches_functional_aligned_streams(data):
    network = CountingNetwork(4)
    counts = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
    times = [uniform_stream_times(n, 16, SLOT) for n in counts]
    assert network.run(times) == counting_network_output_count(counts)


def test_structural_8to1():
    network = CountingNetwork(8)
    counts = [8, 4, 2, 1, 0, 16, 5, 12]
    times = [uniform_stream_times(n, 16, SLOT) for n in counts]
    out = network.run(times)
    assert out == counting_network_output_count(counts)


def test_structural_survives_simultaneous_inputs():
    """All inputs pulsing in the same slot must not lose pulses (the
    balancer's advantage over the merger)."""
    network = CountingNetwork(4)
    out = network.run([[0]] * 4)
    assert out == 1  # 4 pulses / 4 inputs


def test_run_validates_arity():
    network = CountingNetwork(4)
    with pytest.raises(ConfigurationError):
        network.run([[0]] * 3)


def test_jj_count_property():
    network = CountingNetwork(8)
    assert network.jj_count == counting_network_jj(8) == 7 * 56


def test_y_alt_output_also_carries_the_sum():
    circuit = Circuit()
    block = build_counting_network(circuit, "cn", 4)
    p_alt = block.probe_output("y_alt")
    p_main = block.probe_output("y")
    from repro.pulsesim import Simulator

    sim = Simulator(circuit)
    counts = [4, 4, 4, 4]
    for i, n in enumerate(counts):
        block.drive(sim, f"a{i}", uniform_stream_times(n, 16, SLOT))
    sim.run()
    assert p_main.count() == 4
    assert p_alt.count() == 4
