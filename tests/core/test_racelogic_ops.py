"""Race-Logic temporal operators: min, max, add-constant, inhibit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.racelogic_ops import (
    RaceLogicAlu,
    add_constant,
    build_delay_chain,
    inhibit_slots,
    max_slots,
    min_slots,
)
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.pulsesim import Circuit, Simulator


# -- functional algebra ----------------------------------------------------------
@given(a=st.integers(0, 64), b=st.integers(0, 64), c=st.integers(0, 64))
def test_min_max_lattice_properties(a, b, c):
    assert min_slots(a, b) == min_slots(b, a)
    assert max_slots(a, b) == max_slots(b, a)
    assert min_slots(a, max_slots(a, b)) == a  # absorption
    assert max_slots(a, min_slots(a, b)) == a
    assert min_slots(min_slots(a, b), c) == min_slots(a, min_slots(b, c))


@given(a=st.integers(0, 64), c=st.integers(0, 32))
def test_add_constant_saturates(a, c):
    out = add_constant(a, c, 64)
    assert out == min(a + c, 64)


def test_inhibit_semantics():
    assert inhibit_slots(3, 7) == 3
    assert inhibit_slots(7, 3) is None
    assert inhibit_slots(5, 5) is None  # strict precedence


def test_functional_validation():
    with pytest.raises(ConfigurationError):
        min_slots(-1, 0)
    with pytest.raises(ConfigurationError):
        add_constant(1, -1, 16)


# -- structural ALU ---------------------------------------------------------------
@settings(deadline=None, max_examples=30)
@given(a=st.integers(0, 15), b=st.integers(0, 15))
def test_alu_min_matches_functional(a, b):
    alu = RaceLogicAlu(EpochSpec(bits=4), "min")
    assert alu.run_slots(a, b) == min_slots(a, b)


@settings(deadline=None, max_examples=30)
@given(a=st.integers(0, 15), b=st.integers(0, 15))
def test_alu_max_matches_functional(a, b):
    alu = RaceLogicAlu(EpochSpec(bits=4), "max")
    assert alu.run_slots(a, b) == max_slots(a, b)


@settings(deadline=None, max_examples=30)
@given(a=st.integers(0, 15), b=st.integers(0, 15))
def test_alu_inhibit_matches_functional(a, b):
    alu = RaceLogicAlu(EpochSpec(bits=4), "inhibit")
    assert alu.run_slots(a, b) == inhibit_slots(a, b)


def test_alu_missing_pulse_conventions():
    epoch = EpochSpec(bits=4)
    # n_max encodes "no pulse this epoch" (the value 1.0).
    assert RaceLogicAlu(epoch, "min").run_slots(16, 5) == 5
    assert RaceLogicAlu(epoch, "max").run_slots(16, 5) is None  # waits forever
    assert RaceLogicAlu(epoch, "inhibit").run_slots(5, 16) == 5


def test_alu_operation_validation():
    with pytest.raises(ConfigurationError):
        RaceLogicAlu(EpochSpec(bits=4), "xor")
    alu = RaceLogicAlu(EpochSpec(bits=4), "min")
    with pytest.raises(ConfigurationError):
        alu.run_slots(17, 0)


def test_alu_area_is_one_gate():
    assert RaceLogicAlu(EpochSpec(bits=4), "min").jj_count == 8


# -- Race-Logic max pooling -----------------------------------------------------------
class TestMaxPooling:
    def test_pools_windows(self):
        from repro.core.racelogic_ops import max_pool2d_slots, max_pool_jj

        grid = [
            [1, 5, 2, 2],
            [3, 4, 9, 0],
            [7, 7, 1, 1],
            [0, 8, 3, 6],
        ]
        assert max_pool2d_slots(grid, window=2) == [[5, 9], [8, 6]]
        assert max_pool_jj(2) == 3 * 8  # three LA gates per 2x2 window

    def test_truncates_ragged_edges(self):
        from repro.core.racelogic_ops import max_pool2d_slots

        grid = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert max_pool2d_slots(grid, window=2) == [[5]]

    @given(data=st.data())
    def test_matches_numpy_reduction(self, data):
        import numpy as np

        from repro.core.racelogic_ops import max_pool2d_slots

        rows = data.draw(st.integers(min_value=2, max_value=6)) * 2
        cols = data.draw(st.integers(min_value=2, max_value=6)) * 2
        grid = data.draw(
            st.lists(
                st.lists(st.integers(0, 63), min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
        pooled = np.asarray(max_pool2d_slots(grid, window=2))
        arr = np.asarray(grid)
        want = arr.reshape(rows // 2, 2, cols // 2, 2).max(axis=(1, 3))
        assert np.array_equal(pooled, want)

    def test_validation(self):
        from repro.core.racelogic_ops import max_pool2d_slots, max_pool_jj

        with pytest.raises(ConfigurationError):
            max_pool2d_slots([[1]], window=2)
        with pytest.raises(ConfigurationError):
            max_pool2d_slots([1, 2, 3])
        with pytest.raises(ConfigurationError):
            max_pool2d_slots([[-1, 1], [1, 1]])
        with pytest.raises(ConfigurationError):
            max_pool_jj(0)


# -- delay chain (add-constant) ------------------------------------------------------
def test_delay_chain_adds_slots():
    epoch = EpochSpec(bits=4)
    circuit = Circuit()
    chain = build_delay_chain(circuit, "d", n_slots=5, slot_fs=epoch.slot_fs)
    probe = chain.probe_output("q")
    sim = Simulator(circuit)
    chain.drive(sim, "a", epoch.slot_time(3))
    sim.run()
    assert probe.times[0] // epoch.slot_fs == 8  # 3 + 5


def test_delay_chain_area_scales_linearly():
    circuit = Circuit()
    chain = build_delay_chain(circuit, "d", n_slots=7, slot_fs=12_000)
    assert chain.jj_count == 7 * 2  # one JTL per slot
    with pytest.raises(ConfigurationError):
        build_delay_chain(circuit, "d2", n_slots=0, slot_fs=12_000)
