"""Gate-level binary shift-and-add multiplier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.binary_multiplier import ShiftAddMultiplier
from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ
from repro.errors import ConfigurationError


@settings(deadline=None, max_examples=20)
@given(
    x=st.integers(min_value=0, max_value=63),
    y=st.integers(min_value=0, max_value=63),
)
def test_multiplies_correctly(x, y):
    mult = ShiftAddMultiplier(6)
    assert mult.multiply(x, y) == x * y


def test_exhaustive_small_width():
    mult = ShiftAddMultiplier(3)
    for x in range(8):
        for y in range(8):
            assert mult.multiply(x, y) == x * y


def test_edge_operands():
    mult = ShiftAddMultiplier(8)
    assert mult.multiply(0, 255) == 0
    assert mult.multiply(255, 255) == 255 * 255
    assert mult.multiply(1, 1) == 1


def test_jj_count_lands_in_table2_range():
    """Our 8-bit gate-level datapath should sit in the published
    binary-multiplier range (2.3k-17k JJs), far above 46 JJs unary."""
    mult = ShiftAddMultiplier(8)
    assert 1_500 <= mult.jj_count <= 17_000
    assert mult.jj_count > 30 * MULTIPLIER_BIPOLAR_JJ


def test_latency_scales_with_width():
    assert ShiftAddMultiplier(8).latency_fs() > ShiftAddMultiplier(4).latency_fs() * 3


def test_step_counter_tracks_set_bits():
    mult = ShiftAddMultiplier(4)
    mult.multiply(0b1010, 3)
    assert mult.partial_product_steps == 2


def test_validation():
    with pytest.raises(ConfigurationError):
        ShiftAddMultiplier(0)
    with pytest.raises(ConfigurationError):
        ShiftAddMultiplier(9)
    mult = ShiftAddMultiplier(4)
    with pytest.raises(ConfigurationError):
        mult.multiply(16, 1)
