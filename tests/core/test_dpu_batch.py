"""run_counts_batch: coalesced lanes are bit-identical to scalar runs.

This is the execution primitive the serving layer's micro-batcher relies
on: N concurrent dot-product requests become N lanes of one batch-kernel
dispatch, and each lane must reproduce exactly what a dedicated
``run_counts`` call would have produced (including the counting network's
balancer hazards, which the batch kernel vectorises).
"""

import random

import numpy as np
import pytest

from repro.core.dpu import DotProductUnit
from repro.encoding.epoch import EpochSpec


@pytest.mark.parametrize("bipolar", [False, True])
def test_batch_lanes_match_scalar_run_counts(bipolar):
    epoch = EpochSpec(bits=3, slot_fs=40_000)
    dpu = DotProductUnit(epoch, length=2, bipolar=bipolar)
    rng = random.Random(20220919 + bipolar)
    a_rows = [
        [rng.randrange(epoch.n_max + 1) for _ in range(dpu.length)]
        for _ in range(9)
    ]
    b_rows = [
        [rng.randrange(epoch.n_max + 1) for _ in range(dpu.length)]
        for _ in range(9)
    ]
    batched = dpu.run_counts_batch(a_rows, b_rows)
    scalar = [dpu.run_counts(a, b) for a, b in zip(a_rows, b_rows)]
    assert batched.tolist() == scalar


def test_batch_includes_saturating_and_zero_operands():
    epoch = EpochSpec(bits=3, slot_fs=40_000)
    dpu = DotProductUnit(epoch, length=2)
    n = epoch.n_max
    a_rows = [[0, 0], [n, n], [0, n], [n, 0], [3, 5]]
    b_rows = [[n, n], [n, n], [n, 0], [0, n], [2, 7]]
    batched = dpu.run_counts_batch(a_rows, b_rows)
    scalar = [dpu.run_counts(a, b) for a, b in zip(a_rows, b_rows)]
    assert batched.tolist() == scalar


def test_batch_validates_shapes():
    epoch = EpochSpec(bits=3, slot_fs=40_000)
    dpu = DotProductUnit(epoch, length=2)
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        dpu.run_counts_batch([[1, 2]], [[1, 2], [3, 4]])
    with pytest.raises(ConfigurationError):
        dpu.run_counts_batch([[1, 2, 3]], [[1, 2, 3]])
    empty = dpu.run_counts_batch([], [])
    assert isinstance(empty, np.ndarray)
    assert empty.shape == (0,)
