"""Gate-level binary ripple-carry adder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.binary_adder import RippleCarryAdder
from repro.errors import ConfigurationError


@settings(deadline=None, max_examples=30)
@given(
    x=st.integers(min_value=0, max_value=255),
    y=st.integers(min_value=0, max_value=255),
    carry=st.integers(min_value=0, max_value=1),
)
def test_adds_correctly(x, y, carry):
    adder = RippleCarryAdder(8)
    assert adder.add(x, y, carry) == x + y + carry


def test_small_widths():
    for bits in (1, 2, 4):
        adder = RippleCarryAdder(bits)
        limit = 1 << bits
        for x in range(limit):
            for y in range(limit):
                assert adder.add(x, y) == x + y


def test_carry_out_reachable():
    adder = RippleCarryAdder(4)
    assert adder.add(15, 15, 1) == 31


def test_reusable_across_calls():
    adder = RippleCarryAdder(6)
    assert adder.add(10, 20) == 30
    assert adder.add(63, 63) == 126
    assert adder.add(0, 0) == 0


def test_area_grows_linearly_with_bits():
    a4, a8 = RippleCarryAdder(4), RippleCarryAdder(8)
    per_bit4 = a4.jj_count / 4
    per_bit8 = a8.jj_count / 8
    assert per_bit4 == pytest.approx(per_bit8, rel=0.1)


def test_clocking_burden():
    """The paper's motivation: every binary logic cell is clocked."""
    adder = RippleCarryAdder(8)
    assert adder.clocked_cell_count == 40
    assert adder.clock_tree_jj > 100  # splitter tree just to ship the clock
    # The U-SFQ balancer adder needs no clock at all (wave-pipelined).


def test_latency_scales_linearly():
    assert RippleCarryAdder(16).latency_fs() > RippleCarryAdder(4).latency_fs() * 2


def test_validation():
    with pytest.raises(ConfigurationError):
        RippleCarryAdder(0)
    with pytest.raises(ConfigurationError):
        RippleCarryAdder(17)
    adder = RippleCarryAdder(4)
    with pytest.raises(ConfigurationError):
        adder.add(16, 0)
    with pytest.raises(ConfigurationError):
        adder.add(0, 0, carry_in=2)
