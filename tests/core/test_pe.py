"""Processing element: structural vs functional MAC, arrays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pe import PE_JJ, PEArray, PEModel, ProcessingElement
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def test_pe_area_anchor():
    assert PE_JJ == 126  # the paper's stated PE budget


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_structural_matches_functional(data):
    epoch = EpochSpec(bits=4)
    pe = ProcessingElement(epoch)
    model = PEModel(epoch)
    in1 = data.draw(st.integers(min_value=0, max_value=16))
    in2 = data.draw(st.integers(min_value=0, max_value=16))
    in3 = data.draw(st.integers(min_value=0, max_value=16))
    assert pe.run_mac(in1, in2, in3) == model.mac_counts(in1, in2, in3)


def test_mac_value_semantics(epoch6):
    model = PEModel(epoch6)
    # (0.5 * 0.5 + 0.25) / 2 = 0.25
    assert model.mac(0.5, 0.5, 0.25) == pytest.approx(0.25, abs=2 / 64)


def test_mac_saturates(epoch4):
    model = PEModel(epoch4)
    assert model.mac_counts(16, 16, 16) == 16


def test_structural_value_interface(epoch4):
    pe = ProcessingElement(epoch4)
    assert pe.mac(1.0, 1.0, 1.0) == pytest.approx(1.0)
    assert pe.mac(0.0, 0.0, 0.0) == 0.0


def test_accumulate_over_epochs(epoch6):
    model = PEModel(epoch6)
    pairs = [(0.5, 0.5)] * 4  # 4 x 0.25, halved each epoch -> 0.5
    assert model.accumulate(pairs) == pytest.approx(0.5, abs=4 / 64)


def test_accumulate_saturates(epoch4):
    model = PEModel(epoch4)
    assert model.accumulate([(1.0, 1.0)] * 10) == 1.0


class TestPEArray:
    def test_geometry_and_area(self):
        array = PEArray(EpochSpec(bits=6), rows=3, cols=4)
        assert array.n_pes == 12
        assert array.jj_count == 12 * 126

    def test_matmul_close_to_float(self):
        rng = np.random.default_rng(42)
        array = PEArray(EpochSpec(bits=8), rows=2, cols=2)
        a = rng.uniform(0, 0.5, (2, 3))
        b = rng.uniform(0, 0.5, (3, 2))
        got = array.matmul(a, b)
        want = a @ b
        assert np.allclose(got, want, atol=0.05)

    def test_matmul_shape_validation(self):
        array = PEArray(EpochSpec(bits=4), 1, 1)
        with pytest.raises(ConfigurationError):
            array.matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_conv2d_close_to_float(self):
        rng = np.random.default_rng(7)
        array = PEArray(EpochSpec(bits=8), 2, 2)
        image = rng.uniform(0, 0.5, (4, 4))
        kernel = rng.uniform(0, 0.3, (3, 3))
        got = array.conv2d(image, kernel)
        want = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                want[i, j] = np.sum(image[i : i + 3, j : j + 3] * kernel)
        assert got.shape == (2, 2)
        assert np.allclose(got, np.minimum(want, 1.0), atol=0.08)

    def test_conv2d_validation(self):
        array = PEArray(EpochSpec(bits=4), 1, 1)
        with pytest.raises(ConfigurationError):
            array.conv2d(np.ones((2, 2)), np.ones((3, 3)))

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            PEArray(EpochSpec(bits=4), 0, 3)
