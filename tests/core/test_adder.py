"""Merger-tree addition: collisions, stagger, latency constraints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adder import (
    MergerAdder,
    merger_tree_jj,
    merger_tree_output_count,
    min_slot_fs,
    staggered_offsets,
)
from repro.errors import ConfigurationError
from repro.pulsesim.schedule import uniform_stream_times


def test_functional_sum():
    assert merger_tree_output_count([3, 5, 0, 2]) == 10
    with pytest.raises(ConfigurationError):
        merger_tree_output_count([1, -2])


def test_jj_budget():
    assert merger_tree_jj(2) == 5
    assert merger_tree_jj(4) == 15
    assert merger_tree_jj(8) == 35
    with pytest.raises(ConfigurationError):
        merger_tree_jj(3)


def test_staggered_offsets_spacing():
    offsets = staggered_offsets(4, spacing_fs=5_000)
    assert offsets == [0, 5_000, 10_000, 15_000]
    assert min_slot_fs(4, 5_000) == 20_000


def test_simultaneous_pulses_lose_to_collisions():
    adder = MergerAdder(4)
    out = adder.run([[0], [0], [0], [0]])
    assert out < 4
    assert adder.collisions == 4 - out


def test_stagger_restores_simultaneous_pulses():
    adder = MergerAdder(4)
    assert adder.run([[0], [0], [0], [0]], stagger=True) == 4
    assert adder.collisions == 0


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_streams_add_exactly_in_min_slot(data):
    adder = MergerAdder(4)
    slot = min_slot_fs(4)
    counts = [data.draw(st.integers(min_value=0, max_value=16)) for _ in range(4)]
    times = [uniform_stream_times(n, 16, slot) for n in counts]
    assert adder.run(times, stagger=True) == sum(counts)
    assert adder.collisions == 0


def test_narrow_slot_loses_pulses():
    """Slots below M * t_merger are lossy — the Fig 5 latency trade-off."""
    adder = MergerAdder(4)
    slot = min_slot_fs(4) // 2
    counts = [16, 16, 16, 16]
    times = [uniform_stream_times(n, 16, slot) for n in counts]
    out = adder.run(times, stagger=True)
    assert out < sum(counts)
    assert adder.collisions == sum(counts) - out


def test_run_validates_arity():
    adder = MergerAdder(4)
    with pytest.raises(ConfigurationError):
        adder.run([[0], [0]])


def test_rerun_resets_collision_counter():
    adder = MergerAdder(2)
    adder.run([[0], [0]])
    assert adder.collisions == 1
    adder.run([[0], [50_000]])
    assert adder.collisions == 0
