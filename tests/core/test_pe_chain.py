"""Structural PE-to-PE chaining: the Race-Logic inter-PE interface.

Section 5.2: the integrator "returns the accumulated result in a RL
format facilitating the interface among PEs".  This integration test
wires one PE's RL output straight into a second PE's RL input and checks
the two-stage computation against the functional composition, across the
epoch boundary the integrator introduces.
"""

from hypothesis import given, settings, strategies as st

from repro.core.multiplier import SETUP_FS
from repro.core.pe import PEModel, build_processing_element
from repro.encoding.epoch import EpochSpec
from repro.models import technology as tech
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import uniform_stream_times


def _run_chain(epoch, in1, in2a, in3a, in2b, in3b):
    """PE A computes in epoch 0; its RL output drives PE B in epoch 1."""
    circuit = Circuit("pe_chain")
    pe_a = build_processing_element(circuit, "peA", epoch)
    pe_b = build_processing_element(circuit, "peB", epoch)
    out_element, out_port = pe_a.output("out")
    in_element, in_port = pe_b.input("in1")
    # The inter-PE link carries one setup offset of JTL delay so that PE
    # A's slot-k pulse lands exactly on PE B's slot-k grid (and a slot-0
    # pulse cannot beat PE B's epoch marker).
    circuit.connect(out_element, out_port, in_element, in_port, delay=SETUP_FS)
    probe = pe_b.probe_output("out")

    sim = Simulator(circuit)
    duration = epoch.duration_fs
    slot = epoch.slot_fs

    def drive_stream(block, alias, count, base, offset):
        block.drive(
            sim,
            alias,
            [base + SETUP_FS + offset + t for t in uniform_stream_times(count, epoch.n_max, slot)],
        )

    # Epoch 0: PE A computes (in1 x in2a + in3a) / 2.
    pe_a.drive(sim, "epoch_start", 0)
    if in1 < epoch.n_max:
        pe_a.drive(sim, "in1", SETUP_FS + epoch.slot_time(in1))
    drive_stream(pe_a, "in2", in2a, 0, 0)
    drive_stream(pe_a, "in3", in3a, 0, tech.T_NDRO_FS)
    pe_a.drive(sim, "epoch_end", SETUP_FS + duration)
    # Epoch 1: PE B consumes A's RL output with fresh stream operands.
    base_b = SETUP_FS + duration
    pe_b.drive(sim, "epoch_start", base_b)
    drive_stream(pe_b, "in2", in2b, base_b, 0)
    drive_stream(pe_b, "in3", in3b, base_b, tech.T_NDRO_FS)
    pe_b.drive(sim, "epoch_end", base_b + SETUP_FS + duration)
    sim.run()

    read_time = base_b + SETUP_FS + duration
    assert probe.times, "PE B produced no output"
    return (probe.times[-1] - read_time) // slot


@settings(deadline=None, max_examples=12)
@given(data=st.data())
def test_chain_matches_functional_composition(data):
    epoch = EpochSpec(bits=4)
    model = PEModel(epoch)
    in1 = data.draw(st.integers(min_value=0, max_value=16))
    in2a = data.draw(st.integers(min_value=0, max_value=16))
    in3a = data.draw(st.integers(min_value=0, max_value=16))
    in2b = data.draw(st.integers(min_value=0, max_value=16))
    in3b = data.draw(st.integers(min_value=0, max_value=16))

    intermediate = model.mac_counts(in1, in2a, in3a)
    expected = model.mac_counts(intermediate, in2b, in3b)
    got = _run_chain(epoch, in1, in2a, in3a, in2b, in3b)
    assert got == expected


def test_chain_full_scale():
    epoch = EpochSpec(bits=4)
    # A: (1 x 1 + 1)/2 = 1 -> B: (1 x 1 + 1)/2 = 1 (saturated all the way).
    assert _run_chain(epoch, 16, 16, 16, 16, 16) == 16


def test_chain_zero_propagates():
    epoch = EpochSpec(bits=4)
    # A outputs (0 + 0)/2 = 0 -> no RL pulse -> B sees in1 = 0 and only in3.
    model = PEModel(epoch)
    expected = model.mac_counts(0, 10, 6)
    assert _run_chain(epoch, 0, 0, 0, 10, 6) == expected
