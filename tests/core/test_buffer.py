"""RL buffering: integrator, buffer occupancy, memory cell, shift register."""

import pytest

from repro.core.buffer import (
    INTEGRATOR_STAGE_JJ,
    MEMORY_CELL_JJ,
    RL_BUFFER_JJ,
    PulseIntegrator,
    RlBuffer,
    RlMemoryCell,
    RlShiftRegister,
)
from repro.errors import ConfigurationError, SimulationError
from repro.pulsesim import Circuit, Simulator

EPOCH = 192_000  # 16 slots x 12 ps
SLOT = 12_000


def _wire(cell):
    circuit = Circuit()
    circuit.add(cell)
    return circuit, Simulator(circuit)


class TestPulseIntegrator:
    def test_reads_out_count_as_rl(self):
        cell = PulseIntegrator("acc", SLOT, 16)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_train(cell, "a", [0, SLOT, 2 * SLOT])
        sim.schedule_input(cell, "epoch", EPOCH)
        sim.run()
        assert probe.times == [EPOCH + 3 * SLOT]

    def test_accumulates_across_epochs_until_read(self):
        cell = PulseIntegrator("acc", SLOT, 16)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_train(cell, "a", [0, EPOCH + SLOT])  # two epochs of input
        sim.schedule_input(cell, "epoch", 2 * EPOCH)
        sim.run()
        assert probe.times == [2 * EPOCH + 2 * SLOT]

    def test_readout_restarts_accumulation(self):
        cell = PulseIntegrator("acc", SLOT, 16)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_input(cell, "a", 0)
        sim.schedule_input(cell, "epoch", EPOCH)
        sim.schedule_input(cell, "a", EPOCH + SLOT)
        sim.schedule_input(cell, "epoch", 2 * EPOCH)
        sim.run()
        assert probe.times == [EPOCH + SLOT, 2 * EPOCH + SLOT]

    def test_saturates_at_n_max(self):
        cell = PulseIntegrator("acc", SLOT, 4)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_train(cell, "a", [k * 100 for k in range(10)])
        sim.schedule_input(cell, "epoch", EPOCH)
        sim.run()
        assert probe.times == [EPOCH + 4 * SLOT]
        assert cell.saturations == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PulseIntegrator("x", 0, 16)
        with pytest.raises(ConfigurationError):
            PulseIntegrator("x", SLOT, 0)


class TestRlBuffer:
    def test_delays_by_one_epoch(self):
        cell = RlBuffer("buf", EPOCH)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_input(cell, "in", 5 * SLOT)
        sim.run()
        assert probe.times == [5 * SLOT + EPOCH]

    def test_busy_buffer_rejects_second_pulse(self):
        cell = RlBuffer("buf", EPOCH)
        circuit, sim = _wire(cell)
        sim.schedule_input(cell, "in", 0)
        sim.schedule_input(cell, "in", EPOCH // 2)
        with pytest.raises(SimulationError, match="occupied"):
            sim.run()

    def test_free_again_after_one_epoch(self):
        cell = RlBuffer("buf", EPOCH)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_input(cell, "in", 0)
        sim.schedule_input(cell, "in", EPOCH)
        sim.run()
        assert probe.count() == 2


class TestRlMemoryCell:
    def test_sustains_one_pulse_per_epoch(self):
        cell = RlMemoryCell("mem", EPOCH)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        # One pulse per epoch at varying slots — a single buffer would trip.
        inputs = [k * EPOCH + (k % 5) * SLOT for k in range(6)]
        sim.schedule_train(cell, "in", inputs)
        sim.run()
        assert probe.times == [t + EPOCH for t in inputs]

    def test_two_pulses_within_an_epoch_rejected(self):
        cell = RlMemoryCell("mem", EPOCH)
        circuit, sim = _wire(cell)
        sim.schedule_train(cell, "in", [0, SLOT, 2 * SLOT])
        with pytest.raises(SimulationError, match="both buffers"):
            sim.run()

    def test_jj_budget_composition(self):
        assert MEMORY_CELL_JJ == 2 * RL_BUFFER_JJ + 14 + 12


class TestRlShiftRegister:
    def test_delays_by_depth_epochs(self):
        cell = RlShiftRegister("sr", EPOCH, depth=3)
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "out")
        sim.schedule_input(cell, "in", 7 * SLOT)
        sim.run()
        assert probe.times == [7 * SLOT + 3 * EPOCH]

    def test_rate_protocol_enforced(self):
        cell = RlShiftRegister("sr", EPOCH, depth=2)
        circuit, sim = _wire(cell)
        sim.schedule_train(cell, "in", [0, EPOCH - 1])
        with pytest.raises(SimulationError, match="closer than one epoch"):
            sim.run()

    def test_jj_budget_scales_with_depth(self):
        assert RlShiftRegister("sr", EPOCH, depth=5).jj_count == 5 * MEMORY_CELL_JJ

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RlShiftRegister("sr", EPOCH, depth=0)
        with pytest.raises(ConfigurationError):
            RlBuffer("b", 0)
        with pytest.raises(ConfigurationError):
            RlMemoryCell("m", -5)


def test_calibration_anchors():
    # DESIGN.md section 5: PE integrator stage 24 JJs; buffer 122 JJs
    # (2.5x / 1.3x of an 8/16-bit binary shift-register word).
    assert INTEGRATOR_STAGE_JJ == 24
    assert RL_BUFFER_JJ == 122
