"""Coefficient memory bank."""

import pytest

from repro.core.membank import CoefficientBank, membank_jj
from repro.core.pnm import pnm_tick_pattern
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.models import technology as tech


def bank(bits=4, n_words=4):
    return CoefficientBank(EpochSpec(bits=bits), n_words)


def test_write_read_roundtrip():
    b = bank()
    b.write(0, 13)
    b.write(3, 0)
    assert b.read(0) == 13
    assert b.read(3) == 0


def test_write_all():
    b = bank()
    b.write_all([1, 2, 3, 4])
    assert [b.read(i) for i in range(4)] == [1, 2, 3, 4]
    with pytest.raises(ConfigurationError):
        b.write_all([1, 2])


def test_word_width_enforced():
    b = bank(bits=4)
    with pytest.raises(ConfigurationError):
        b.write(0, 16)
    with pytest.raises(ConfigurationError):
        b.write(0, -1)


def test_index_bounds():
    b = bank()
    with pytest.raises(ConfigurationError):
        b.read(4)
    with pytest.raises(ConfigurationError):
        b.write(-1, 0)


def test_stream_count_equals_word():
    b = bank()
    b.write(1, 11)
    assert b.stream_count(1) == 11
    assert len(b.stream_times(1)) == 11


def test_tick_pattern_matches_pnm():
    b = bank()
    b.write(2, 0b0100)
    assert b.tick_pattern(2) == pnm_tick_pattern(0b0100, 4)


def test_stream_times_respect_epoch_offset():
    b = bank()
    b.write(0, 4)
    epoch0 = b.stream_times(0, epoch_index=0)
    epoch2 = b.stream_times(0, epoch_index=2)
    offset = 2 * b.epoch.duration_fs
    assert [t + offset for t in epoch0] == epoch2


def test_area_includes_ten_percent_readout_overhead():
    binary_bank = 32 * 8 * tech.JJ_NDRO
    assert membank_jj(32, 8) == round(binary_bank * 1.1)
    with pytest.raises(ConfigurationError):
        membank_jj(0, 8)


def test_jj_property():
    b = bank(bits=8, n_words=16)
    assert b.jj_count == membank_jj(16, 8)
