"""Stateful property test: the balancer against an independent Mealy model.

Hypothesis drives random pulse sequences (spaced, hazard-zone, and
coincident arrivals) into the behavioural balancer and checks every
output event against a separately-written reference of the Fig 6c state
machine, including the case (ii) coincidence and case (iii) hazard rules.
"""

from hypothesis import given, settings, strategies as st

from repro.core.balancer import Balancer
from repro.pulsesim import Circuit, Simulator

T_BFF = 12_000
COINCIDENCE = 2_000


class _ReferenceMealy:
    """Independent re-implementation of the routing rules for checking."""

    def __init__(self):
        self.state = 0
        self.last_time = None
        self.last_port = None
        self.last_index = None
        self.pair_open = False

    def route(self, port, time):
        if self.last_time is not None:
            gap = time - self.last_time
            if gap <= COINCIDENCE and port != self.last_port and self.pair_open:
                index = self.state
                self.state ^= 1
                self.pair_open = False
            elif gap < T_BFF:
                index = self.last_index
                self.pair_open = False
            else:
                index = self.state
                self.state ^= 1
                self.pair_open = True
        else:
            index = self.state
            self.state ^= 1
            self.pair_open = True
        self.last_time = time
        self.last_port = port
        self.last_index = index
        return index


def _event_sequences():
    """Random (port, gap-class) sequences covering all three timing cases."""
    gap_classes = st.sampled_from(["spaced", "hazard", "coincident"])
    return st.lists(
        st.tuples(st.sampled_from(["a", "b"]), gap_classes), min_size=1, max_size=30
    )


@settings(deadline=None, max_examples=200)
@given(sequence=_event_sequences())
def test_balancer_matches_reference_mealy(sequence):
    # Build concrete times from the gap classes.
    times = []
    now = 0
    for index, (port, gap_class) in enumerate(sequence):
        if index == 0:
            now = 10_000
        elif gap_class == "spaced":
            now += T_BFF + 3_000
        elif gap_class == "hazard":
            now += 6_000
        else:  # coincident
            now += 0
        times.append((port, now))

    circuit = Circuit()
    balancer = circuit.add(Balancer("bal"))
    p1 = circuit.probe(balancer, "y1")
    p2 = circuit.probe(balancer, "y2")
    sim = Simulator(circuit)
    for port, time in times:
        sim.schedule_input(balancer, port, time)
    sim.run()

    reference = _ReferenceMealy()
    expected = [reference.route(port, time) for port, time in times]
    assert p1.count() == expected.count(0)
    assert p2.count() == expected.count(1)
    # No pulses lost, ever — the balancer's defining property.
    assert p1.count() + p2.count() == len(times)


@settings(deadline=None, max_examples=100)
@given(sequence=_event_sequences())
def test_balancer_split_is_bounded(sequence):
    """Even with hazards, the two outputs differ by at most the hazard
    count plus one (the bias the paper warns about is gradual)."""
    times = []
    now = 10_000
    for port, gap_class in sequence:
        step = {"spaced": T_BFF + 3_000, "hazard": 6_000, "coincident": 0}[gap_class]
        now += step
        times.append((port, now))

    circuit = Circuit()
    balancer = circuit.add(Balancer("bal"))
    p1 = circuit.probe(balancer, "y1")
    p2 = circuit.probe(balancer, "y2")
    sim = Simulator(circuit)
    for port, time in times:
        sim.schedule_input(balancer, port, time)
    sim.run()
    imbalance = abs(p1.count() - p2.count())
    assert imbalance <= balancer.hazard_events + 1
