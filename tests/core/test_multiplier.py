"""U-SFQ multipliers: functional properties + structural cross-validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multiplier import (
    BipolarMultiplier,
    MULTIPLIER_BIPOLAR_JJ,
    UnipolarMultiplier,
    bipolar_product_count,
    unipolar_product_count,
)
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


# -- functional model properties -------------------------------------------------
@given(
    bits=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_unipolar_count_is_quantised_product(bits, data):
    n_max = 1 << bits
    n_a = data.draw(st.integers(min_value=0, max_value=n_max))
    slot_b = data.draw(st.integers(min_value=0, max_value=n_max))
    count = unipolar_product_count(n_a, slot_b, n_max)
    exact = n_a * slot_b / n_max
    assert 0 <= count <= n_max
    assert abs(count - exact) < 1.0  # within one pulse of the true product


@given(
    bits=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_unipolar_count_monotone_in_both_operands(bits, data):
    n_max = 1 << bits
    n_a = data.draw(st.integers(min_value=0, max_value=n_max - 1))
    slot_b = data.draw(st.integers(min_value=0, max_value=n_max - 1))
    base = unipolar_product_count(n_a, slot_b, n_max)
    assert unipolar_product_count(n_a + 1, slot_b, n_max) >= base
    assert unipolar_product_count(n_a, slot_b + 1, n_max) >= base


def test_unipolar_identity_rows():
    assert unipolar_product_count(16, 16, 16) == 16  # 1 x 1 = 1
    assert unipolar_product_count(0, 9, 16) == 0
    assert unipolar_product_count(9, 0, 16) == 0
    assert unipolar_product_count(16, 5, 16) == 5    # 1 x b = b


@given(
    bits=st.integers(min_value=2, max_value=10),
    data=st.data(),
)
def test_bipolar_count_decodes_to_product(bits, data):
    n_max = 1 << bits
    n_a = data.draw(st.integers(min_value=0, max_value=n_max))
    slot_b = data.draw(st.integers(min_value=0, max_value=n_max))
    count = bipolar_product_count(n_a, slot_b, n_max)
    a_b = 2 * n_a / n_max - 1
    b_b = 2 * slot_b / n_max - 1
    decoded = 2 * count / n_max - 1
    # The pass count ceils, which doubles through the complement branch:
    # worst-case decoded error is 4 / n_max (two pulses).
    assert -1e-12 <= decoded - a_b * b_b <= 4.0 / n_max + 1e-12


def test_bipolar_sign_table():
    n = 16
    # (+1) x (+1) = +1 ; (-1) x (+1) = -1 ; (-1) x (-1) = +1 ; (+1) x (-1) = -1
    assert bipolar_product_count(16, 16, n) == 16
    assert bipolar_product_count(0, 16, n) == 0
    assert bipolar_product_count(0, 0, n) == 16
    assert bipolar_product_count(16, 0, n) == 0
    # 0 x anything ~= 0 (count n/2, +1 from the ceil when n*s/n_max is
    # fractional: 8*13/16 = 6.5 -> pass 7 -> count 9 instead of 8).
    assert bipolar_product_count(8, 13, n) == 9
    assert bipolar_product_count(8, 12, n) == 8  # exact when divisible


def test_count_validation():
    with pytest.raises(ConfigurationError):
        unipolar_product_count(17, 3, 16)
    with pytest.raises(ConfigurationError):
        unipolar_product_count(3, 17, 16)
    with pytest.raises(ConfigurationError):
        unipolar_product_count(1, 1, 0)


def test_explicit_tick_pattern_filtering():
    # Ticks {0, 4, 8, 12}; RL slot 5 passes {0, 4}.
    assert unipolar_product_count(4, 5, 16, ticks=[0, 4, 8, 12]) == 2
    assert bipolar_product_count(4, 5, 16, ticks=[0, 4, 8, 12]) == 2 + (16 - 5) - 2


# -- structural vs functional ------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_structural_unipolar_matches_functional(data):
    epoch = EpochSpec(bits=4)
    mult = UnipolarMultiplier(epoch)
    n_a = data.draw(st.integers(min_value=0, max_value=16))
    slot_b = data.draw(st.integers(min_value=0, max_value=16))
    assert mult.run_counts(n_a, slot_b) == unipolar_product_count(n_a, slot_b, 16)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_structural_bipolar_matches_functional(data):
    epoch = EpochSpec(bits=4)
    mult = BipolarMultiplier(epoch)
    n_a = data.draw(st.integers(min_value=0, max_value=16))
    slot_b = data.draw(st.integers(min_value=0, max_value=16))
    assert mult.run_counts(n_a, slot_b) == bipolar_product_count(n_a, slot_b, 16)


def test_multiply_value_interface(epoch6):
    mult = UnipolarMultiplier(epoch6)
    assert mult.multiply(0.5, 0.75) == pytest.approx(0.375, abs=1 / 64)
    bip = BipolarMultiplier(epoch6)
    assert bip.multiply(-0.5, 0.5) == pytest.approx(-0.25, abs=2 / 64)
    assert bip.multiply(-1.0, -1.0) == pytest.approx(1.0, abs=2 / 64)


def test_paper_area_anchor():
    assert MULTIPLIER_BIPOLAR_JJ == 46  # 370x under the 17 kJJ BP multiplier


def test_rerun_is_deterministic(epoch4):
    mult = UnipolarMultiplier(epoch4)
    first = mult.run_counts(7, 9)
    second = mult.run_counts(7, 9)
    assert first == second


def test_rl_zero_blocks_the_whole_stream(epoch4):
    """Slot 0 means value 0: the reset lands before any stream pulse, so
    nothing passes — the SETUP-offset convention this depends on."""
    mult = UnipolarMultiplier(epoch4)
    assert mult.run_counts(16, 0) == 0
    bip = BipolarMultiplier(epoch4)
    # Bipolar: b = -1 -> out = -a; for a = +1 the output is all-complement.
    assert bip.run_counts(16, 0) == 0
    assert bip.run_counts(0, 0) == 16


def test_missing_rl_pulse_means_full_scale(epoch4):
    """Slot n_max (no pulse this epoch) encodes 1.0: everything passes."""
    mult = UnipolarMultiplier(epoch4)
    assert mult.run_counts(11, 16) == 11


def test_single_pulse_boundaries(epoch4):
    mult = UnipolarMultiplier(epoch4)
    # One stream pulse at slot 0 passes iff the RL operand is >= 1.
    assert mult.run_counts(1, 0) == 0
    assert mult.run_counts(1, 1) == 1
