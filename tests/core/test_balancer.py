"""Balancer: Mealy machine, coincidence, hazard bias, structural netlist."""

from hypothesis import given, settings, strategies as st

from repro.core.balancer import (
    BALANCER_JJ,
    Balancer,
    build_structural_balancer,
)
from repro.models import technology as tech
from repro.pulsesim import Circuit, Simulator


def _run_behavioural(a_times, b_times, **kwargs):
    circuit = Circuit()
    cell = circuit.add(Balancer("bal", **kwargs))
    p1 = circuit.probe(cell, "y1")
    p2 = circuit.probe(cell, "y2")
    sim = Simulator(circuit)
    sim.schedule_train(cell, "a", a_times)
    sim.schedule_train(cell, "b", b_times)
    sim.run()
    return cell, p1, p2


def _run_structural(a_times, b_times):
    circuit = Circuit()
    block = build_structural_balancer(circuit, "bal")
    p1 = block.probe_output("y1")
    p2 = block.probe_output("y2")
    sim = Simulator(circuit)
    block.drive(sim, "a", a_times)
    block.drive(sim, "b", b_times)
    sim.run()
    return block, p1, p2


SLOT = tech.T_BFF_FS  # pulses spaced at exactly t_BFF never hazard


class TestBehavioural:
    def test_alternates_outputs(self):
        times = [k * SLOT for k in range(6)]
        _, p1, p2 = _run_behavioural(times, [])
        assert p1.count() == 3
        assert p2.count() == 3
        assert min(p1.times) < min(p2.times)  # first pulse -> Y1

    def test_odd_count_gives_ceiling_to_y1(self):
        times = [k * SLOT for k in range(5)]
        _, p1, p2 = _run_behavioural(times, [])
        assert p1.count() == 3
        assert p2.count() == 2

    def test_simultaneous_pair_one_pulse_each(self):
        _, p1, p2 = _run_behavioural([10 * SLOT], [10 * SLOT])
        assert p1.count() == 1
        assert p2.count() == 1

    def test_simultaneous_pair_preserves_state(self):
        # pair then one more pulse: the single should route to Y1 again.
        cell, p1, p2 = _run_behavioural([0, 5 * SLOT], [0])
        assert p1.count() == 2
        assert p2.count() == 1

    def test_hazard_routes_to_same_output_without_toggle(self):
        # Second pulse 6 ps after the first (inside t_BFF = 12 ps, outside
        # the 2 ps coincidence window): both exit Y1, state unchanged.
        cell, p1, p2 = _run_behavioural([0], [6_000])
        assert cell.hazard_events == 1
        assert p1.count() == 2
        assert p2.count() == 0

    def test_hazard_conserves_pulses(self):
        cell, p1, p2 = _run_behavioural([0, 6_000, 30_000], [])
        assert p1.count() + p2.count() == 3

    @settings(deadline=None, max_examples=40)
    @given(
        n_a=st.integers(min_value=0, max_value=16),
        n_b=st.integers(min_value=0, max_value=16),
    )
    def test_balances_interleaved_streams(self, n_a, n_b):
        """With collision-free interleaving, each output gets half."""
        a_times = [k * 2 * SLOT for k in range(n_a)]
        b_times = [(2 * k + 1) * SLOT for k in range(n_b)]
        _, p1, p2 = _run_behavioural(a_times, b_times)
        total = n_a + n_b
        assert p1.count() == (total + 1) // 2
        assert p2.count() == total // 2

    @settings(deadline=None, max_examples=40)
    @given(
        n_pairs=st.integers(min_value=0, max_value=16),
    )
    def test_coincident_streams_split_exactly(self, n_pairs):
        times = [k * SLOT for k in range(n_pairs)]
        _, p1, p2 = _run_behavioural(times, times)
        assert p1.count() == n_pairs
        assert p2.count() == n_pairs

    def test_jj_budget(self):
        assert Balancer("b").jj_count == BALANCER_JJ == 56


class TestStructural:
    def test_alternates_outputs(self):
        times = [k * 4 * SLOT for k in range(4)]
        _, p1, p2 = _run_structural(times, [])
        assert p1.count() == 2
        assert p2.count() == 2

    def test_simultaneous_pair_one_pulse_each(self):
        _, p1, p2 = _run_structural([5 * SLOT], [5 * SLOT])
        assert p1.count() == 1
        assert p2.count() == 1

    def test_mixed_input_alternation_matches_behavioural(self):
        a_times = [0, 8 * SLOT]
        b_times = [4 * SLOT, 12 * SLOT]
        _, s1, s2 = _run_structural(a_times, b_times)
        _, b1, b2 = _run_behavioural(a_times, b_times)
        assert s1.count() == b1.count()
        assert s2.count() == b2.count()

    def test_block_jj_budget_close_to_model(self):
        circuit = Circuit()
        block = build_structural_balancer(circuit, "bal")
        # Structural includes explicit I/O splitters; the model constant
        # assumes a merged layout (DESIGN.md calibration note).
        assert BALANCER_JJ <= block.jj_count <= BALANCER_JJ + 12
