"""Integration: TFF2-chain PNM feeding the multiplier, at pulse level.

The FIR's coefficient path is PNM -> multiplier; this test wires the two
structural blocks together (the PNM's output stream reads the
multiplier's NDRO) and checks the filtered pulse count against
``pnm_pass_counts`` — the closed form the vectorised FIR relies on.
Also covers multi-epoch (wave-pipelined) multiplier operation.
"""

from hypothesis import given, settings, strategies as st

from repro.core.multiplier import (
    SETUP_FS,
    build_unipolar_multiplier,
    unipolar_product_count,
)
from repro.core.pnm import build_tff2_pnm, pnm_pass_counts
from repro.encoding.epoch import EpochSpec
from repro.models import technology as tech
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import clock_times, uniform_stream_times

BITS = 4


def _run_pnm_multiplier(word: int, slot_b: int) -> int:
    """PNM programmed with ``word`` streams into the multiplier gated at
    ``slot_b``; returns the output pulse count."""
    epoch = EpochSpec(bits=BITS, slot_fs=tech.T_TFF2_FS)
    circuit = Circuit("pnm_mult")
    pnm = build_tff2_pnm(circuit, "pnm", BITS)
    mult = build_unipolar_multiplier(circuit, "mult")
    src, src_port = pnm.output("out")
    dst, dst_port = mult.input("a")
    circuit.connect(src, src_port, dst, dst_port)
    probe = mult.probe_output("out")

    sim = Simulator(circuit)
    for bit in range(BITS):
        port = f"set{bit}" if (word >> bit) & 1 else f"reset{bit}"
        pnm.drive(sim, port, 0)
    mult.drive(sim, "epoch", 0)
    # PNM clock tick k corresponds to epoch slot k; the chain + gate delay
    # must stay under one slot so the slot alignment survives, which holds
    # for 4 stages at the 20 ps TFF2 slot.
    sim_offset = SETUP_FS
    pnm.drive(
        sim, "clk",
        [sim_offset + t for t in clock_times(epoch.slot_fs, epoch.n_max)],
    )
    if slot_b < epoch.n_max:
        # Tick k of chain stage s arrives at k*20ps + (20..35)ps (stage
        # depth + gate + merger tree).  Gating cleanly between slot b-1's
        # latest tick (b*20+15) and slot b's earliest (b*20+20) puts the
        # RL reset 18 ps past the slot boundary.
        chain_delay = 18_000
        mult.drive(
            sim, "b", sim_offset + epoch.slot_time(slot_b) + chain_delay
        )
    sim.run()
    return probe.count()


@settings(deadline=None, max_examples=20)
@given(
    word=st.integers(min_value=0, max_value=15),
    slot_b=st.integers(min_value=0, max_value=16),
)
def test_pnm_fed_multiplier_matches_pass_counts(word, slot_b):
    assert _run_pnm_multiplier(word, slot_b) == int(
        pnm_pass_counts(word, slot_b, BITS)
    )


def test_full_word_full_gate_passes_everything():
    assert _run_pnm_multiplier(0b1111, 16) == 15


def test_multi_epoch_multiplier_wave_pipelining():
    """One multiplier netlist, three back-to-back epochs, fresh operands."""
    epoch = EpochSpec(bits=4)
    circuit = Circuit("wave")
    mult = build_unipolar_multiplier(circuit, "mult")
    probe = mult.probe_output("out")
    sim = Simulator(circuit)

    frames = [(9, 5), (16, 16), (4, 12)]
    duration = epoch.duration_fs
    for index, (n_a, slot_b) in enumerate(frames):
        base = index * duration
        mult.drive(sim, "epoch", base)
        mult.drive(
            sim, "a",
            [base + SETUP_FS + t for t in uniform_stream_times(n_a, 16, epoch.slot_fs)],
        )
        if slot_b < 16:
            mult.drive(sim, "b", base + SETUP_FS + epoch.slot_time(slot_b))
    sim.run()

    offset = SETUP_FS + tech.T_NDRO_FS
    got = [
        probe.count(i * duration + offset - 1, (i + 1) * duration + offset - 1)
        for i in range(len(frames))
    ]
    want = [unipolar_product_count(n_a, slot_b, 16) for n_a, slot_b in frames]
    assert got == want
