"""Pulse-number multipliers: tick patterns, structural chain, bursts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pnm import (
    BurstPnm,
    build_tff2_pnm,
    pnm_jj,
    pnm_pass_counts,
    pnm_tick_pattern,
)
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import clock_times


# -- tick pattern properties -----------------------------------------------------
@given(bits=st.integers(min_value=1, max_value=10), data=st.data())
def test_pattern_length_equals_word(bits, data):
    word = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    assert len(pnm_tick_pattern(word, bits)) == word


@given(bits=st.integers(min_value=1, max_value=10), data=st.data())
def test_pattern_sorted_unique_in_range(bits, data):
    word = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    ticks = pnm_tick_pattern(word, bits)
    assert ticks == sorted(set(ticks))
    assert all(0 <= t < (1 << bits) - 1 for t in ticks)


@given(bits=st.integers(min_value=2, max_value=8))
def test_bit_patterns_are_disjoint(bits):
    """Each power-of-two word owns its own tick set; they never overlap."""
    seen = set()
    for bit in range(bits):
        ticks = set(pnm_tick_pattern(1 << bit, bits))
        assert not (ticks & seen)
        seen |= ticks


def test_paper_examples():
    assert len(pnm_tick_pattern(0b1111, 4)) == 15  # "1111" -> 15 pulses
    assert pnm_tick_pattern(0b0100, 4) == [1, 5, 9, 13]  # "0100" -> 4 pulses


def test_msb_owns_every_other_tick():
    assert pnm_tick_pattern(0b1000, 4) == [0, 2, 4, 6, 8, 10, 12, 14]


@given(bits=st.integers(min_value=1, max_value=10), data=st.data())
def test_pass_counts_match_pattern(bits, data):
    n_max = 1 << bits
    word = data.draw(st.integers(min_value=0, max_value=n_max - 1))
    slot = data.draw(st.integers(min_value=0, max_value=n_max))
    want = sum(1 for t in pnm_tick_pattern(word, bits) if t < slot)
    assert int(pnm_pass_counts(word, slot, bits)) == want


def test_pass_counts_broadcasts():
    import numpy as np

    words = np.array([[3, 7], [1, 15]])
    slots = np.array([[8, 8], [16, 16]])
    out = pnm_pass_counts(words, slots, 4)
    assert out.shape == (2, 2)
    assert int(out[1, 1]) == 15


def test_pattern_validation():
    with pytest.raises(ConfigurationError):
        pnm_tick_pattern(16, 4)
    with pytest.raises(ConfigurationError):
        pnm_tick_pattern(-1, 4)
    with pytest.raises(ConfigurationError):
        pnm_pass_counts(1, 17, 4)


# -- structural TFF2 chain ---------------------------------------------------------
def _run_chain(word, bits=4):
    circuit = Circuit()
    pnm = build_tff2_pnm(circuit, "pnm", bits)
    probe = pnm.probe_output("out")
    sim = Simulator(circuit)
    for bit in range(bits):
        port = f"set{bit}" if (word >> bit) & 1 else f"reset{bit}"
        pnm.drive(sim, port, 0)
    pnm.drive(
        sim, "clk", clock_times(tech.T_TFF2_FS, 1 << bits, start=tech.T_TFF2_FS)
    )
    sim.run()
    return sorted(probe.times)


@settings(deadline=None, max_examples=16)
@given(word=st.integers(min_value=0, max_value=15))
def test_structural_chain_emits_word_pulses(word):
    assert len(_run_chain(word)) == word


def test_structural_ticks_match_pattern():
    times = _run_chain(0b0100)
    # Recover tick indices from arrival times (subtract chain delays).
    base = times[0]
    gaps = [(t - base) for t in times]
    period = 4 * tech.T_TFF2_FS  # ticks 1, 5, 9, 13 are 4 clock ticks apart
    assert gaps == [0, period, 2 * period, 3 * period]


def test_jj_model():
    assert pnm_jj(4) == 4 * tech.JJ_TFF2 + 4 * tech.JJ_NDRO + 3 * tech.JJ_MERGER
    with pytest.raises(ConfigurationError):
        pnm_jj(0)


# -- burst PNM ----------------------------------------------------------------------
def test_burst_pnm_emits_programmed_count():
    circuit = Circuit()
    burst = circuit.add(BurstPnm("b", count=5, bits=4))
    probe = circuit.probe(burst, "out")
    sim = Simulator(circuit)
    sim.schedule_input(burst, "trigger", 0)
    sim.run()
    assert probe.count() == 5
    assert probe.inter_pulse_intervals() == [tech.T_TFF2_FS] * 4  # bursty


def test_burst_pnm_reprogram():
    burst = BurstPnm("b", count=5, bits=4)
    burst.program(9)
    assert burst.count == 9
    with pytest.raises(ConfigurationError):
        burst.program(16)
