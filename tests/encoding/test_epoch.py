"""Epoch geometry."""

import pytest

from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.models import technology as tech


def test_defaults():
    epoch = EpochSpec(bits=4)
    assert epoch.n_max == 16
    assert epoch.slot_fs == tech.T_BFF_FS
    assert epoch.duration_fs == 16 * tech.T_BFF_FS


def test_slot_time_and_epoch_start():
    epoch = EpochSpec(bits=3, slot_fs=10_000)
    assert epoch.slot_time(0) == 0
    assert epoch.slot_time(5) == 50_000
    assert epoch.slot_time(2, epoch_index=3) == 3 * 80_000 + 20_000
    assert epoch.epoch_start(2) == 160_000


def test_epoch_window():
    epoch = EpochSpec(bits=2, slot_fs=1_000)
    assert epoch.epoch_window(0) == (0, 4_000)
    assert epoch.epoch_window(5) == (20_000, 24_000)


def test_slot_bounds():
    epoch = EpochSpec(bits=2)
    epoch.slot_time(4)  # n_max itself is allowed (epoch boundary)
    with pytest.raises(ConfigurationError):
        epoch.slot_time(5)
    with pytest.raises(ConfigurationError):
        epoch.slot_time(-1)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        EpochSpec(bits=0)
    with pytest.raises(ConfigurationError):
        EpochSpec(bits=25)
    with pytest.raises(ConfigurationError):
        EpochSpec(bits=4, slot_fs=0)


def test_with_slot_creates_modified_copy():
    epoch = EpochSpec(bits=4)
    wider = epoch.with_slot(20_000)
    assert wider.bits == 4
    assert wider.slot_fs == 20_000
    assert epoch.slot_fs == tech.T_BFF_FS  # original unchanged


def test_frozen():
    epoch = EpochSpec(bits=4)
    with pytest.raises(AttributeError):
        epoch.bits = 8


def test_str_mentions_geometry():
    text = str(EpochSpec(bits=4))
    assert "n_max=16" in text
