"""Property: codec encode -> JTL-pipeline simulation -> decode is lossless.

The shared :func:`tests.strategies.codec_cases` strategy draws
``(EpochSpec, value, epoch_index)`` on the representable grid, the value
is encoded to pulse times, transported through a probed JTL pipeline, and
decoded from the observed arrival times minus the pipeline latency.  The
batch-kernel suite (``tests/pulsesim/test_batch.py``) reuses the same
strategy to lock the vectorized transport to this scalar behaviour.
"""

from hypothesis import given, settings

from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.pulsesim import Simulator
from tests.strategies import codec_cases, jtl_pipe


@settings(max_examples=60, deadline=None)
@given(codec_cases())
def test_racelogic_roundtrip_through_jtl_pipeline(case):
    epoch, value, epoch_index = case
    codec = RaceLogicCodec(epoch)
    circuit, entry, probe, latency = jtl_pipe()
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_input(entry, "a", codec.encode_unipolar(value, epoch_index))
    sim.run()
    arrivals = [time - latency for time in probe.times]
    slot = codec.decode_pulse_train(arrivals, epoch_index)
    assert slot == codec.slot_for_unipolar(value)
    # Grid values are exactly representable: the round trip is lossless.
    assert codec.unipolar_of_slot(slot) == value


@settings(max_examples=60, deadline=None)
@given(codec_cases())
def test_pulsestream_roundtrip_through_jtl_pipeline(case):
    epoch, value, epoch_index = case
    codec = PulseStreamCodec(epoch)
    circuit, entry, probe, latency = jtl_pipe()
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_train(entry, "a", codec.encode_unipolar(value, epoch_index))
    sim.run()
    arrivals = [time - latency for time in probe.times]
    assert codec.count_in_epoch(arrivals, epoch_index) == \
        codec.count_for_unipolar(value)
    assert codec.decode_unipolar(arrivals, epoch_index) == value
