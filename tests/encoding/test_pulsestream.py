"""Pulse-stream codec: counts, times, complements, polarity."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import (
    PulseStreamCodec,
    bipolar_from_unipolar,
    unipolar_from_bipolar,
)
from repro.errors import EncodingError


def codec(bits=4):
    return PulseStreamCodec(EpochSpec(bits=bits))


@given(value=st.floats(min_value=-1.0, max_value=1.0))
def test_polarity_conversion_roundtrip(value):
    assert unipolar_from_bipolar(bipolar_from_unipolar((value + 1) / 2)) == pytest.approx(
        (value + 1) / 2
    )


@given(
    bits=st.integers(min_value=1, max_value=12),
    value=st.floats(min_value=0.0, max_value=1.0),
)
def test_encode_decode_unipolar_roundtrip(bits, value):
    pc = codec(bits)
    times = pc.encode_unipolar(value)
    assert pc.decode_unipolar(times) == pc.quantise_unipolar(value)


@given(
    bits=st.integers(min_value=1, max_value=12),
    value=st.floats(min_value=-1.0, max_value=1.0),
)
def test_encode_decode_bipolar_roundtrip(bits, value):
    pc = codec(bits)
    times = pc.encode_bipolar(value)
    assert pc.decode_bipolar(times) == pytest.approx(pc.quantise_bipolar(value))


@given(count=st.integers(min_value=0, max_value=16))
def test_complement_count(count):
    pc = codec(4)
    assert pc.complement_count(count) == 16 - count
    assert pc.complement_count(pc.complement_count(count)) == count


def test_pulse_weight():
    assert codec(4).pulse_weight == 1 / 16
    assert codec(16).pulse_weight == pytest.approx(1.52587890625e-05)  # paper 5.4.1


def test_count_in_epoch_windows():
    pc = codec(2)  # 4 slots
    times = pc.times_for_count(3, epoch_index=0) + pc.times_for_count(2, epoch_index=1)
    assert pc.count_in_epoch(times, 0) == 3
    assert pc.count_in_epoch(times, 1) == 2
    assert pc.count_in_epoch(times, 2) == 0


def test_decode_rejects_overfull_epoch():
    pc = codec(2)
    times = [0, 1, 2, 3, 4]  # five pulses in a 4-slot epoch
    with pytest.raises(EncodingError, match="exceed"):
        pc.decode_unipolar(times)


def test_burst_and_uniform_have_same_count():
    pc = codec(4)
    uniform = pc.encode_unipolar(0.5, uniform=True)
    burst = pc.encode_unipolar(0.5, uniform=False)
    assert len(uniform) == len(burst) == 8
    assert burst == [k * pc.epoch.slot_fs for k in range(8)]


def test_value_range_validation():
    pc = codec(4)
    with pytest.raises(EncodingError):
        pc.count_for_unipolar(-0.1)
    with pytest.raises(EncodingError):
        pc.count_for_bipolar(1.1)
    with pytest.raises(EncodingError):
        pc.times_for_count(17)
    with pytest.raises(EncodingError):
        pc.unipolar_of_count(-1)


class TestEpochBoundary:
    """Full-scale streams must stay inside their own half-open window."""

    @pytest.mark.parametrize("epoch_index", [0, 1, 2, 5])
    def test_unipolar_full_scale_roundtrip(self, epoch_index):
        pc = codec(4)
        times = pc.encode_unipolar(1.0, epoch_index)
        start, end = pc.epoch.epoch_window(epoch_index)
        assert all(start <= t < end for t in times)
        assert pc.decode_unipolar(times, epoch_index) == 1.0
        assert pc.count_in_epoch(times, epoch_index + 1) == 0

    @pytest.mark.parametrize("epoch_index", [0, 1, 3])
    @pytest.mark.parametrize("value", [-1.0, 0.0, 1.0])
    def test_bipolar_extremes_roundtrip(self, value, epoch_index):
        pc = codec(3)
        times = pc.encode_bipolar(value, epoch_index)
        assert pc.decode_bipolar(times, epoch_index) == value


class TestMidpointRounding:
    """Round-half-away-from-zero on the bipolar axis (shared with RL)."""

    def test_bits2_midpoint(self):
        pc = codec(2)
        assert pc.quantise_bipolar(0.25) == 0.5
        assert pc.quantise_bipolar(-0.25) == -0.5

    @given(
        bits=st.integers(min_value=1, max_value=10),
        numerator=st.integers(min_value=-2048, max_value=2048),
    )
    def test_bipolar_symmetry(self, bits, numerator):
        # Dyadic grid: value * n_max is exact, so midpoints are hit exactly.
        pc = codec(bits)
        value = numerator / 2048
        assert pc.quantise_bipolar(value) == -pc.quantise_bipolar(-value)
