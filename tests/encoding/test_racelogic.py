"""Race-Logic codec: quantisation, roundtrips, decode windows."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.epoch import EpochSpec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import EncodingError


def codec(bits=4):
    return RaceLogicCodec(EpochSpec(bits=bits))


@given(
    bits=st.integers(min_value=1, max_value=12),
    value=st.floats(min_value=0.0, max_value=1.0),
)
def test_unipolar_quantisation_error_bounded(bits, value):
    rc = codec(bits)
    quantised = rc.quantise_unipolar(value)
    assert abs(quantised - value) <= 0.5 / rc.epoch.n_max + 1e-12


@given(
    bits=st.integers(min_value=1, max_value=12),
    value=st.floats(min_value=-1.0, max_value=1.0),
)
def test_bipolar_quantisation_error_bounded(bits, value):
    rc = codec(bits)
    quantised = rc.quantise_bipolar(value)
    assert abs(quantised - value) <= 1.0 / rc.epoch.n_max + 1e-12


@given(slot=st.integers(min_value=0, max_value=16))
def test_slot_value_roundtrip(slot):
    rc = codec(4)
    assert rc.slot_for_unipolar(rc.unipolar_of_slot(slot)) == slot


@given(
    slot=st.integers(min_value=0, max_value=16),
    epoch_index=st.integers(min_value=0, max_value=5),
)
def test_encode_decode_time_roundtrip(slot, epoch_index):
    rc = codec(4)
    time = rc.epoch.slot_time(slot, epoch_index)
    if slot < rc.epoch.n_max:
        assert rc.decode_time(time, epoch_index) == slot


def test_decode_rounds_down_within_slot():
    rc = codec(4)
    time = rc.epoch.slot_time(3) + rc.epoch.slot_fs // 2
    assert rc.decode_time(time) == 3


def test_decode_rejects_out_of_window_pulse():
    rc = codec(4)
    with pytest.raises(EncodingError):
        rc.decode_time(rc.epoch.duration_fs + 1, epoch_index=0)


def test_decode_pulse_train_variants(epoch4):
    rc = RaceLogicCodec(epoch4)
    assert rc.decode_pulse_train([]) is None
    time = rc.epoch.slot_time(7)
    assert rc.decode_pulse_train([time]) == 7
    # Pulses in other epochs are ignored.
    assert rc.decode_pulse_train([time, rc.epoch.slot_time(2, 1)]) == 7
    with pytest.raises(EncodingError, match="2 pulses"):
        rc.decode_pulse_train([time, time + rc.epoch.slot_fs])


def test_bipolar_mapping_endpoints():
    rc = codec(4)
    assert rc.slot_for_bipolar(-1.0) == 0
    assert rc.slot_for_bipolar(1.0) == 16
    assert rc.bipolar_of_slot(8) == 0.0


def test_value_range_validation():
    rc = codec(4)
    with pytest.raises(EncodingError):
        rc.slot_for_unipolar(1.5)
    with pytest.raises(EncodingError):
        rc.slot_for_bipolar(-1.5)
    with pytest.raises(EncodingError):
        rc.unipolar_of_slot(17)


class TestEpochBoundary:
    """Regressions for the half-open-window fix: full scale (slot n_max)
    must round-trip inside its *own* epoch and never leak into the next."""

    @pytest.mark.parametrize("epoch_index", [0, 1, 2, 5])
    def test_unipolar_full_scale_roundtrip(self, epoch_index):
        rc = codec(4)
        time = rc.encode_unipolar(1.0, epoch_index)
        start, end = rc.epoch.epoch_window(epoch_index)
        assert start <= time < end
        assert rc.decode_pulse_train([time], epoch_index) == rc.epoch.n_max
        assert rc.decode_unipolar(time, epoch_index) == 1.0
        assert rc.decode_pulse_train([time], epoch_index + 1) is None

    @pytest.mark.parametrize("epoch_index", [0, 1, 3])
    @pytest.mark.parametrize("value", [-1.0, 0.0, 1.0])
    def test_bipolar_extremes_roundtrip(self, value, epoch_index):
        rc = codec(3)
        time = rc.encode_bipolar(value, epoch_index)
        slot = rc.decode_pulse_train([time], epoch_index)
        assert slot is not None
        assert rc.bipolar_of_slot(slot) == value

    @pytest.mark.parametrize("epoch_index", [0, 2])
    def test_zero_roundtrip(self, epoch_index):
        rc = codec(4)
        time = rc.encode_unipolar(0.0, epoch_index)
        assert rc.decode_unipolar(time, epoch_index) == 0.0

    def test_decode_window_is_half_open(self):
        rc = codec(4)
        start, end = rc.epoch.epoch_window(0)
        with pytest.raises(EncodingError):
            rc.decode_time(end, 0)  # epoch end belongs to the next epoch
        assert rc.decode_time(end, 1) == 0
        assert rc.decode_time(end - 1, 0) == rc.epoch.n_max  # sentinel

    def test_full_scale_needs_room_for_the_sentinel(self):
        rc = RaceLogicCodec(EpochSpec(bits=2, slot_fs=1))
        with pytest.raises(EncodingError, match="slot_fs=1"):
            rc.encode_unipolar(1.0)


class TestMidpointRounding:
    """Regressions for round-half-away-from-zero on the bipolar axis."""

    def test_bits2_midpoint(self):
        rc = codec(2)  # 0.25 sits exactly between representable levels
        assert rc.quantise_bipolar(0.25) == 0.5
        assert rc.quantise_bipolar(-0.25) == -0.5

    @given(
        bits=st.integers(min_value=1, max_value=10),
        numerator=st.integers(min_value=-2048, max_value=2048),
    )
    def test_bipolar_symmetry(self, bits, numerator):
        # Dyadic grid: value * n_max is exact in binary floating point, so
        # every quantisation midpoint is hit exactly (no float-noise ties).
        rc = codec(bits)
        value = numerator / 2048
        assert rc.quantise_bipolar(value) == -rc.quantise_bipolar(-value)
