"""Binary <-> unary conversion functions."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.conversion import (
    binary_to_rl_slot,
    pulse_count_to_binary,
    rl_slot_to_binary,
)
from repro.errors import EncodingError


@given(bits=st.integers(min_value=1, max_value=16), data=st.data())
def test_binary_rl_roundtrip(bits, data):
    word = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    assert rl_slot_to_binary(binary_to_rl_slot(word, bits), bits) == word


def test_epoch_boundary_slot_saturates():
    assert rl_slot_to_binary(16, 4) == 15


def test_pulse_counter_saturates():
    assert pulse_count_to_binary(5, 4) == 5
    assert pulse_count_to_binary(100, 4) == 15


def test_validation():
    with pytest.raises(EncodingError):
        binary_to_rl_slot(16, 4)
    with pytest.raises(EncodingError):
        binary_to_rl_slot(-1, 4)
    with pytest.raises(EncodingError):
        binary_to_rl_slot(0, 0)
    with pytest.raises(EncodingError):
        rl_slot_to_binary(17, 4)
    with pytest.raises(EncodingError):
        pulse_count_to_binary(-1, 4)
