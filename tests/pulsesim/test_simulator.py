"""The event-queue kernel: ordering, priorities, causality, limits."""

import pytest

from repro.cells.interconnect import Jtl
from repro.cells.storage import Ndro
from repro.errors import SimulationError
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.element import Element, PortSpec


class _Recorder(Element):
    """Test cell that logs (port, time) arrivals."""

    INPUTS = (PortSpec("hi", priority=0), PortSpec("lo", priority=5))
    OUTPUTS = ("q",)

    def __init__(self, name):
        super().__init__(name)
        self.log = []

    def handle(self, sim, port, time):
        self.log.append((port, time))

    def reset(self):
        self.log.clear()


def test_events_processed_in_time_order():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    for t in (500, 100, 300):
        sim.schedule_input(cell, "hi", t)
    sim.run()
    assert [t for _, t in cell.log] == [100, 300, 500]


def test_equal_time_events_processed_by_port_priority():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "lo", 100)
    sim.schedule_input(cell, "hi", 100)
    sim.run()
    assert cell.log == [("hi", 100), ("lo", 100)]


def test_equal_time_equal_priority_preserves_insertion_order():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 100)
    sim.run()
    assert len(cell.log) == 2


def test_run_until_leaves_later_events_queued():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 900)
    sim.run(until=500)
    assert len(cell.log) == 1
    assert sim.pending_events == 1
    sim.run()
    assert len(cell.log) == 2


def test_negative_schedule_time_rejected():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    with pytest.raises(SimulationError):
        sim.schedule_input(cell, "hi", -1)


def test_max_events_guard_trips():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", b, "a")
    circuit.connect(b, "q", a, "a")  # oscillator
    sim = Simulator(circuit, max_events=100)
    sim.schedule_input(a, "a", 0)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_reset_clears_queue_state_and_probes():
    circuit = Circuit()
    ndro = circuit.add(Ndro("n"))
    probe = circuit.probe(ndro, "q")
    sim = Simulator(circuit)
    sim.schedule_input(ndro, "set", 0)
    sim.schedule_input(ndro, "clk", 10)
    sim.run()
    assert probe.count() == 1
    sim.reset()
    assert probe.count() == 0
    assert ndro.state == 0
    assert sim.now == 0
    assert sim.pending_events == 0


def test_stats_track_events_and_pulses():
    circuit = Circuit()
    jtl = circuit.add(Jtl("j"))
    circuit.probe(jtl, "q")
    sim = Simulator(circuit)
    sim.schedule_train(jtl, "a", [0, 10, 20])
    stats = sim.run()
    assert stats.events_processed == 3
    assert stats.pulses_emitted == 3
    assert stats.end_time == 20


def test_run_until_clamps_end_time_to_horizon():
    """Regression: a bounded run used to report the last *event* time."""
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 900)
    stats = sim.run(until=500)
    assert stats.end_time == 500  # simulated up to the horizon, not 100
    stats = sim.run()
    assert stats.end_time == 900


def test_end_time_never_moves_backwards():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 900)
    sim.run()
    assert sim.stats.end_time == 900
    stats = sim.run(until=100)  # nothing left to do before 100
    assert stats.end_time == 900


def test_max_events_is_a_per_run_budget():
    """Regression: the guard used to count cumulatively across resumes."""
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit, max_events=3)
    for chunk in range(3):  # 9 events total, 3 per run(): never trips
        sim.schedule_train(cell, "hi", [chunk * 100 + k for k in range(3)])
        sim.run()
    assert sim.stats.events_processed == 9
    sim.schedule_train(cell, "hi", [1_000 + k for k in range(4)])
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_stats_accumulate_across_resumed_runs():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 900)
    sim.run(until=500)
    assert sim.stats.events_processed == 1
    sim.run()
    assert sim.stats.events_processed == 2


def test_capture_stats_aggregates_across_simulators():
    from repro.pulsesim import capture_stats

    with capture_stats() as total:
        for _ in range(2):
            circuit = Circuit()
            cell = circuit.add(_Recorder("r"))
            sim = Simulator(circuit)
            sim.schedule_train(cell, "hi", [0, 10, 20])
            sim.run()
    assert total.events_processed == 6
    assert total.end_time == 20


def test_wire_delay_applies():
    circuit = Circuit()
    a = circuit.add(Jtl("a", delay=0))
    b = circuit.add(_Recorder("b"))
    circuit.connect(a, "q", b, "hi", delay=7_000)
    sim = Simulator(circuit)
    sim.schedule_input(a, "a", 0)
    sim.run()
    assert b.log == [("hi", 7_000)]
