"""The event-queue kernel: ordering, priorities, causality, limits."""

import pytest

from repro.cells.interconnect import Jtl
from repro.cells.storage import Ndro
from repro.errors import SimulationError
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.element import Element, PortSpec


class _Recorder(Element):
    """Test cell that logs (port, time) arrivals."""

    INPUTS = (PortSpec("hi", priority=0), PortSpec("lo", priority=5))
    OUTPUTS = ("q",)

    def __init__(self, name):
        super().__init__(name)
        self.log = []

    def handle(self, sim, port, time):
        self.log.append((port, time))

    def reset(self):
        self.log.clear()


def test_events_processed_in_time_order():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    for t in (500, 100, 300):
        sim.schedule_input(cell, "hi", t)
    sim.run()
    assert [t for _, t in cell.log] == [100, 300, 500]


def test_equal_time_events_processed_by_port_priority():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "lo", 100)
    sim.schedule_input(cell, "hi", 100)
    sim.run()
    assert cell.log == [("hi", 100), ("lo", 100)]


def test_equal_time_equal_priority_preserves_insertion_order():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 100)
    sim.run()
    assert len(cell.log) == 2


def test_run_until_leaves_later_events_queued():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "hi", 100)
    sim.schedule_input(cell, "hi", 900)
    sim.run(until=500)
    assert len(cell.log) == 1
    assert sim.pending_events == 1
    sim.run()
    assert len(cell.log) == 2


def test_negative_schedule_time_rejected():
    circuit = Circuit()
    cell = circuit.add(_Recorder("r"))
    sim = Simulator(circuit)
    with pytest.raises(SimulationError):
        sim.schedule_input(cell, "hi", -1)


def test_max_events_guard_trips():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", b, "a")
    circuit.connect(b, "q", a, "a")  # oscillator
    sim = Simulator(circuit, max_events=100)
    sim.schedule_input(a, "a", 0)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_reset_clears_queue_state_and_probes():
    circuit = Circuit()
    ndro = circuit.add(Ndro("n"))
    probe = circuit.probe(ndro, "q")
    sim = Simulator(circuit)
    sim.schedule_input(ndro, "set", 0)
    sim.schedule_input(ndro, "clk", 10)
    sim.run()
    assert probe.count() == 1
    sim.reset()
    assert probe.count() == 0
    assert ndro.state == 0
    assert sim.now == 0
    assert sim.pending_events == 0


def test_stats_track_events_and_pulses():
    circuit = Circuit()
    jtl = circuit.add(Jtl("j"))
    circuit.probe(jtl, "q")
    sim = Simulator(circuit)
    sim.schedule_train(jtl, "a", [0, 10, 20])
    stats = sim.run()
    assert stats.events_processed == 3
    assert stats.pulses_emitted == 3
    assert stats.end_time == 20


def test_wire_delay_applies():
    circuit = Circuit()
    a = circuit.add(Jtl("a", delay=0))
    b = circuit.add(_Recorder("b"))
    circuit.connect(a, "q", b, "hi", delay=7_000)
    sim = Simulator(circuit)
    sim.schedule_input(a, "a", 0)
    sim.run()
    assert b.log == [("hi", 7_000)]
