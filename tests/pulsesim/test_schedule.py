"""Stimulus generators: uniform/burst streams, RL pulses, clocks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.pulsesim.schedule import (
    burst_stream_times,
    clock_times,
    rl_pulse_time,
    rl_pulse_times_batch,
    uniform_stream_times,
    uniform_stream_times_batch,
)


@given(
    bits=st.integers(min_value=1, max_value=10),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_uniform_stream_properties(bits, fraction):
    n_max = 1 << bits
    n = round(fraction * n_max)
    times = uniform_stream_times(n, n_max, 1_000)
    # Exactly n pulses, strictly increasing, all inside the epoch.
    assert len(times) == n
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(0 <= t < n_max * 1_000 for t in times)
    # Pulses land on slot boundaries.
    assert all(t % 1_000 == 0 for t in times)


@given(
    bits=st.integers(min_value=2, max_value=10),
    fraction=st.floats(min_value=0.05, max_value=1.0),
)
def test_uniform_stream_is_spread_not_bursty(bits, fraction):
    n_max = 1 << bits
    n = max(2, round(fraction * n_max))
    uniform = uniform_stream_times(n, n_max, 1_000)
    # The last pulse of a uniform stream sits in the last 1/n of the epoch
    # neighbourhood, far beyond where a burst would stop.
    assert uniform[-1] >= (n - 1) * n_max // n * 1_000


def test_uniform_full_rate_hits_every_slot():
    assert uniform_stream_times(8, 8, 10) == [0, 10, 20, 30, 40, 50, 60, 70]


def test_burst_stream_is_contiguous():
    assert burst_stream_times(3, 8, 10) == [0, 10, 20]


def test_zero_pulses_is_empty():
    assert uniform_stream_times(0, 8, 10) == []
    assert burst_stream_times(0, 8, 10) == []


def test_stream_bounds_validated():
    with pytest.raises(EncodingError):
        uniform_stream_times(9, 8, 10)
    with pytest.raises(EncodingError):
        uniform_stream_times(-1, 8, 10)
    with pytest.raises(EncodingError):
        uniform_stream_times(4, 8, 0)
    with pytest.raises(EncodingError):
        burst_stream_times(9, 8, 10)


def test_rl_pulse_time():
    assert rl_pulse_time(3, 12_000) == 36_000
    assert rl_pulse_time(0, 12_000, start=500) == 500
    with pytest.raises(EncodingError):
        rl_pulse_time(-1, 12_000)
    with pytest.raises(EncodingError):
        rl_pulse_time(1, 0)


@given(
    bits=st.integers(min_value=1, max_value=8),
    counts=st.lists(st.integers(0, 256), min_size=1, max_size=16),
    start=st.sampled_from([0, 7_500]),
)
def test_uniform_stream_batch_matches_scalar_per_lane(bits, counts, start):
    n_max = 1 << bits
    counts = [min(n, n_max) for n in counts]
    times, lanes = uniform_stream_times_batch(counts, n_max, 1_000, start=start)
    assert times.dtype == np.int64 and times.shape == lanes.shape
    for lane, n in enumerate(counts):
        got = sorted(times[lanes == lane].tolist())
        assert got == uniform_stream_times(n, n_max, 1_000, start=start)


def test_uniform_stream_batch_validated():
    with pytest.raises(EncodingError):
        uniform_stream_times_batch([3, 9], 8, 10)
    with pytest.raises(EncodingError):
        uniform_stream_times_batch([-1], 8, 10)
    with pytest.raises(EncodingError):
        uniform_stream_times_batch([[1, 2]], 8, 10)
    with pytest.raises(EncodingError):
        uniform_stream_times_batch([4], 8, 0)
    times, lanes = uniform_stream_times_batch([0, 0], 8, 10)
    assert times.size == 0 and lanes.size == 0


def test_rl_pulse_times_batch_matches_scalar_per_lane():
    slots = [0, 3, 7]
    batch = rl_pulse_times_batch(slots, 12_000, start=500)
    assert batch.tolist() == [rl_pulse_time(s, 12_000, start=500) for s in slots]
    with pytest.raises(EncodingError):
        rl_pulse_times_batch([-1], 12_000)
    with pytest.raises(EncodingError):
        rl_pulse_times_batch([1], 0)


def test_clock_times():
    assert clock_times(20_000, 3, start=100) == [100, 20_100, 40_100]
    assert clock_times(20_000, 0) == []
    with pytest.raises(EncodingError):
        clock_times(0, 5)
    with pytest.raises(EncodingError):
        clock_times(10, -1)
