"""Composite block helper: aliases, drive, probes, JJ budget."""

import pytest

from repro.cells.interconnect import Jtl, Merger, Splitter
from repro.errors import NetlistError
from repro.pulsesim import Block, Circuit, Simulator


def _two_stage_block():
    circuit = Circuit()
    block = Block(circuit, "stage")
    first = block.add(Jtl(block.subname("first"), delay=1_000))
    second = block.add(Jtl(block.subname("second"), delay=1_000))
    circuit.connect(first, "q", second, "a")
    block.expose_input("in", first, "a")
    block.expose_output("out", second, "q")
    return circuit, block


def test_namespaced_cell_names():
    _, block = _two_stage_block()
    assert block.elements[0].name == "stage.first"


def test_drive_and_probe_roundtrip():
    circuit, block = _two_stage_block()
    probe = block.probe_output("out")
    sim = Simulator(circuit)
    block.drive(sim, "in", [0, 10_000])
    sim.run()
    assert probe.times == [2_000, 12_000]


def test_drive_accepts_scalar_time():
    circuit, block = _two_stage_block()
    probe = block.probe_output("out")
    sim = Simulator(circuit)
    block.drive(sim, "in", 500)
    sim.run()
    assert probe.count() == 1


def test_unknown_aliases_rejected():
    _, block = _two_stage_block()
    with pytest.raises(NetlistError, match="no input"):
        block.input("bogus")
    with pytest.raises(NetlistError, match="no output"):
        block.output("bogus")


def test_duplicate_aliases_rejected():
    circuit = Circuit()
    block = Block(circuit, "b")
    cell = block.add(Jtl(block.subname("j")))
    block.expose_input("in", cell, "a")
    with pytest.raises(NetlistError, match="already has input"):
        block.expose_input("in", cell, "a")
    block.expose_output("out", cell, "q")
    with pytest.raises(NetlistError, match="already has output"):
        block.expose_output("out", cell, "q")


def test_expose_validates_ports():
    circuit = Circuit()
    block = Block(circuit, "b")
    cell = block.add(Jtl(block.subname("j")))
    with pytest.raises(NetlistError):
        block.expose_input("x", cell, "nope")
    with pytest.raises(NetlistError):
        block.expose_output("x", cell, "nope")


def test_jj_count_covers_only_member_cells():
    circuit = Circuit()
    block = Block(circuit, "b")
    block.add(Splitter(block.subname("s")))  # 3
    block.add(Merger(block.subname("m")))    # 5
    circuit.add(Jtl("outsider"))             # not in block
    assert block.jj_count == 8
    assert circuit.jj_count == 10


def test_connect_blocks_together():
    circuit = Circuit()
    a_block = Block(circuit, "a")
    a_cell = a_block.add(Jtl(a_block.subname("j"), delay=100))
    a_block.expose_input("in", a_cell, "a")
    a_block.expose_output("out", a_cell, "q")
    b_block = Block(circuit, "b")
    b_cell = b_block.add(Jtl(b_block.subname("j"), delay=100))
    b_block.expose_input("in", b_cell, "a")
    b_block.expose_output("out", b_cell, "q")
    a_block.connect_output_to("out", b_block, "in")
    probe = b_block.probe_output("out")
    sim = Simulator(circuit)
    a_block.drive(sim, "in", 0)
    sim.run()
    assert probe.times == [200]


def test_input_and_output_alias_listing():
    _, block = _two_stage_block()
    assert block.input_aliases == ("in",)
    assert block.output_aliases == ("out",)
