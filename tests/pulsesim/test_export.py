"""Netlist export: JSON description, census, DOT."""

import json

from repro.core.dpu import build_dpu
from repro.pulsesim import Circuit
from repro.pulsesim.export import cell_census, netlist_description, to_dot


def _small_dpu():
    circuit = Circuit("small_dpu")
    build_dpu(circuit, "dpu", 4)
    return circuit


def test_description_is_json_serialisable():
    description = netlist_description(_small_dpu())
    encoded = json.dumps(description)
    decoded = json.loads(encoded)
    assert decoded["name"] == "small_dpu"
    assert decoded["cell_count"] == len(decoded["cells"])
    assert decoded["wire_count"] == len(decoded["wires"])


def test_description_totals_match_circuit():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    assert description["jj_count"] == circuit.jj_count
    assert description["cell_count"] == len(circuit.elements)


def test_wires_reference_existing_cells():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    names = {cell["name"] for cell in description["cells"]}
    for wire in description["wires"]:
        assert wire["from"].rsplit(".", 1)[0] in names
        assert wire["to"].rsplit(".", 1)[0] in names
        assert wire["delay_fs"] >= 0


def test_census_counts_cell_types():
    census = cell_census(_small_dpu())
    assert census["Ndro"] == 4        # one multiplier NDRO per lane
    assert census["Balancer"] == 3    # the 4:1 counting network


def test_dot_renders_every_cell_and_wire():
    circuit = _small_dpu()
    dot = to_dot(circuit)
    assert dot.startswith('digraph "small_dpu"')
    for element in circuit.elements:
        assert f'"{element.name}"' in dot
    assert dot.count("->") == netlist_description(circuit)["wire_count"]
    assert dot.rstrip().endswith("}")


def test_empty_circuit():
    circuit = Circuit("empty")
    description = netlist_description(circuit)
    assert description["cells"] == []
    assert "digraph" in to_dot(circuit)
