"""Netlist export: JSON description, census, DOT."""

import json

from repro.core.dpu import build_dpu
from repro.pulsesim import Circuit
from repro.pulsesim.export import cell_census, netlist_description, to_dot


def _small_dpu():
    circuit = Circuit("small_dpu")
    build_dpu(circuit, "dpu", 4)
    return circuit


def test_description_is_json_serialisable():
    description = netlist_description(_small_dpu())
    encoded = json.dumps(description)
    decoded = json.loads(encoded)
    assert decoded["name"] == "small_dpu"
    assert decoded["cell_count"] == len(decoded["cells"])
    assert decoded["wire_count"] == len(decoded["wires"])


def test_description_totals_match_circuit():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    assert description["jj_count"] == circuit.jj_count
    assert description["cell_count"] == len(circuit.elements)


def test_wires_reference_existing_cells():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    names = {cell["name"] for cell in description["cells"]}
    for wire in description["wires"]:
        assert wire["from"].rsplit(".", 1)[0] in names
        assert wire["to"].rsplit(".", 1)[0] in names
        assert wire["delay_fs"] >= 0


def test_census_counts_cell_types():
    census = cell_census(_small_dpu())
    assert census["Ndro"] == 4        # one multiplier NDRO per lane
    assert census["Balancer"] == 3    # the 4:1 counting network


def test_dot_renders_every_cell_and_wire():
    circuit = _small_dpu()
    dot = to_dot(circuit)
    assert dot.startswith('digraph "small_dpu"')
    for element in circuit.elements:
        assert f'"{element.name}"' in dot
    assert dot.count("->") == netlist_description(circuit)["wire_count"]
    assert dot.rstrip().endswith("}")


def test_empty_circuit():
    circuit = Circuit("empty")
    description = netlist_description(circuit)
    assert description["cells"] == []
    assert "digraph" in to_dot(circuit)


def test_cells_and_wires_are_sorted_deterministically():
    description = netlist_description(_small_dpu())
    names = [cell["name"] for cell in description["cells"]]
    assert names == sorted(names)
    wire_keys = [(w["from"], w["to"], w["delay_fs"]) for w in description["wires"]]
    assert wire_keys == sorted(wire_keys)


def test_structurally_identical_circuits_export_identically():
    # Same structure, different construction order of the probe-free DPU:
    # the sorted export hides insertion order.
    first = json.dumps(netlist_description(_small_dpu()))
    second = json.dumps(netlist_description(_small_dpu()))
    assert first == second
    assert to_dot(_small_dpu()) == to_dot(_small_dpu())


def test_probes_appear_in_description_and_dot():
    circuit = _small_dpu()
    element = circuit.elements[0]
    port = element.output_names[0]
    circuit.probe(element, port)
    description = netlist_description(circuit)
    assert description["probe_count"] == 1
    entry = description["probes"][0]
    assert entry["port"] == f"{element.name}.{port}"
    assert entry["type"] == "PulseRecorder"
    assert entry["label"] == f"{element.name}.{port}"
    dot = to_dot(circuit)
    assert "style=dashed" in dot
    assert f'"{element.name}" -> "probe0"' in dot


def test_trace_taps_are_exported_as_probes():
    from repro.trace import TraceSession

    circuit = _small_dpu()
    session = TraceSession(circuit)
    description = netlist_description(circuit)
    assert description["probe_count"] == len(session.ports)
    assert all(p["type"] == "TracePort" for p in description["probes"])
    labels = [p["label"] for p in description["probes"]]
    assert labels == sorted(labels)
