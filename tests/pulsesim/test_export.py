"""Netlist export: JSON description, census, DOT, and re-import."""

import json

import pytest

from repro.cells import Dff, Jtl, Merger, Splitter, Tff
from repro.core.dpu import build_dpu
from repro.errors import NetlistError
from repro.pulsesim import Circuit, PulseRecorder, Simulator, WaveformProbe
from repro.pulsesim.export import (
    cell_census,
    default_cell_registry,
    import_netlist,
    netlist_description,
    to_dot,
)


def _small_dpu():
    circuit = Circuit("small_dpu")
    build_dpu(circuit, "dpu", 4)
    return circuit


def test_description_is_json_serialisable():
    description = netlist_description(_small_dpu())
    encoded = json.dumps(description)
    decoded = json.loads(encoded)
    assert decoded["name"] == "small_dpu"
    assert decoded["cell_count"] == len(decoded["cells"])
    assert decoded["wire_count"] == len(decoded["wires"])


def test_description_totals_match_circuit():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    assert description["jj_count"] == circuit.jj_count
    assert description["cell_count"] == len(circuit.elements)


def test_wires_reference_existing_cells():
    circuit = _small_dpu()
    description = netlist_description(circuit)
    names = {cell["name"] for cell in description["cells"]}
    for wire in description["wires"]:
        assert wire["from"].rsplit(".", 1)[0] in names
        assert wire["to"].rsplit(".", 1)[0] in names
        assert wire["delay_fs"] >= 0


def test_census_counts_cell_types():
    census = cell_census(_small_dpu())
    assert census["Ndro"] == 4        # one multiplier NDRO per lane
    assert census["Balancer"] == 3    # the 4:1 counting network


def test_dot_renders_every_cell_and_wire():
    circuit = _small_dpu()
    dot = to_dot(circuit)
    assert dot.startswith('digraph "small_dpu"')
    for element in circuit.elements:
        assert f'"{element.name}"' in dot
    assert dot.count("->") == netlist_description(circuit)["wire_count"]
    assert dot.rstrip().endswith("}")


def test_empty_circuit():
    circuit = Circuit("empty")
    description = netlist_description(circuit)
    assert description["cells"] == []
    assert "digraph" in to_dot(circuit)


def test_cells_and_wires_are_sorted_deterministically():
    description = netlist_description(_small_dpu())
    names = [cell["name"] for cell in description["cells"]]
    assert names == sorted(names)
    wire_keys = [(w["from"], w["to"], w["delay_fs"]) for w in description["wires"]]
    assert wire_keys == sorted(wire_keys)


def test_structurally_identical_circuits_export_identically():
    # Same structure, different construction order of the probe-free DPU:
    # the sorted export hides insertion order.
    first = json.dumps(netlist_description(_small_dpu()))
    second = json.dumps(netlist_description(_small_dpu()))
    assert first == second
    assert to_dot(_small_dpu()) == to_dot(_small_dpu())


def test_probes_appear_in_description_and_dot():
    circuit = _small_dpu()
    element = circuit.elements[0]
    port = element.output_names[0]
    circuit.probe(element, port)
    description = netlist_description(circuit)
    assert description["probe_count"] == 1
    entry = description["probes"][0]
    assert entry["port"] == f"{element.name}.{port}"
    assert entry["type"] == "PulseRecorder"
    assert entry["label"] == f"{element.name}.{port}"
    dot = to_dot(circuit)
    assert "style=dashed" in dot
    assert f'"{element.name}" -> "probe0"' in dot


def test_trace_taps_are_exported_as_probes():
    from repro.trace import TraceSession

    circuit = _small_dpu()
    session = TraceSession(circuit)
    description = netlist_description(circuit)
    assert description["probe_count"] == len(session.ports)
    assert all(p["type"] == "TracePort" for p in description["probes"])
    labels = [p["label"] for p in description["probes"]]
    assert labels == sorted(labels)


# -- import_netlist ------------------------------------------------------------
def _mixed_circuit():
    """Entry splitter fanning into a delayed JTL chain, a merger with a
    custom dead time, a DFF, and a toggle — plus two probe flavours."""
    circuit = Circuit("mixed")
    entry = circuit.add(Splitter("entry"))
    jtl = circuit.add(Jtl("jtl", delay=1_234))
    merger = circuit.add(Merger("m", delay=700, dead_time=4_000))
    dff = circuit.add(Dff("dff"))
    tff = circuit.add(Tff("t"))
    circuit.connect(entry, "q1", jtl, "a", delay=500)
    circuit.connect(entry, "q2", merger, "a")
    circuit.connect(jtl, "q", merger, "b", delay=250)
    circuit.connect(merger, "q", dff, "clk")
    circuit.connect(dff, "q", tff, "a")
    circuit.probe(dff, "q", probe=WaveformProbe("wave"))
    circuit.probe(tff, "q")
    return circuit, entry


def test_description_embeds_constructor_params():
    circuit, _entry = _mixed_circuit()
    description = netlist_description(circuit)
    by_name = {cell["name"]: cell for cell in description["cells"]}
    assert by_name["jtl"]["params"] == {"delay": 1_234}
    assert by_name["m"]["params"] == {"delay": 700, "dead_time": 4_000}


def test_import_round_trips_description():
    circuit, _entry = _mixed_circuit()
    description = netlist_description(circuit)
    rebuilt = import_netlist(description)
    assert netlist_description(rebuilt) == description
    # Twice over, for determinism of the rebuilt circuit itself.
    assert netlist_description(import_netlist(netlist_description(rebuilt))) \
        == description


@pytest.mark.parametrize("kernel", ["reference", "sealed"])
def test_imported_circuit_runs_identically(kernel):
    stimulus = [0, 0, 3_000, 3_000, 9_000, 20_000, 20_000]

    def run(circuit, entry):
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_train(entry, "a", stimulus)
        sim.run()
        return {
            tap.probe.label: list(tap.probe.times)
            for taps in circuit._taps.values()
            for tap in taps
        }

    original, entry = _mixed_circuit()
    rebuilt = import_netlist(netlist_description(original))
    assert run(rebuilt, rebuilt["entry"]) == run(original, entry)


def test_import_unknown_cell_type_raises():
    circuit, _entry = _mixed_circuit()
    description = netlist_description(circuit)
    description["cells"][0]["type"] = "FluxCapacitor"
    with pytest.raises(NetlistError, match="FluxCapacitor"):
        import_netlist(description)


def test_import_without_params_raises():
    circuit, _entry = _mixed_circuit()
    description = netlist_description(circuit)
    del description["cells"][0]["params"]
    with pytest.raises(NetlistError, match="params"):
        import_netlist(description)


def test_import_unknown_probe_type_raises():
    from repro.trace import TraceSession

    circuit, _entry = _mixed_circuit()
    TraceSession(circuit)  # attaches TracePort taps
    with pytest.raises(NetlistError, match="TracePort"):
        import_netlist(netlist_description(circuit))


def test_registry_covers_the_full_cell_library():
    registry = default_cell_registry()
    for kind in ("Jtl", "Splitter", "Merger", "IdealMerger", "Ndro", "Dff",
                 "Dff2", "Tff", "Tff2", "Inverter", "Bff", "Mux", "Demux",
                 "FirstArrival", "LastArrival", "ClockedAnd", "ClockedOr",
                 "ClockedXor", "DropChannel", "JitterChannel"):
        assert kind in registry


def test_cells_without_recoverable_params_export_without_them():
    class Mystery(Jtl):
        def __init__(self, name, secret=7):
            super().__init__(name)
            self._hidden = secret

    circuit = Circuit("mystery")
    circuit.add(Mystery("m"))
    description = netlist_description(circuit)
    assert "params" not in description["cells"][0]
    registry = {**default_cell_registry(), "Mystery": Mystery}
    with pytest.raises(NetlistError, match="params"):
        import_netlist(description, registry=registry)
