"""Unit and property tests for the vectorized batch kernel.

Three layers of coverage:

* API semantics — mode selection (analytic vs event), scheduling
  validation, per-lane drop-rate overrides, reset/RNG rewind, stats
  shapes, version pinning;
* differential properties — every lane of a batch run must equal a
  scalar ``kernel="sealed"`` run of the same circuit on that lane's
  stimulus (the same netlist strategy the sealed-vs-reference suite
  uses, so tie-order-sensitive cells are in scope);
* codec transport — the shared ``codec_cases`` strategy round-trips
  per-lane operand values through a batch-simulated JTL pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.interconnect import IdealMerger, Jtl, Splitter
from repro.cells.toggle import Tff
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import ConfigurationError, SimulationError
from repro.pulsesim import (
    BatchSimulator,
    Circuit,
    DropChannel,
    JitterChannel,
    PulseRecorder,
    Simulator,
)
from tests.strategies import (
    BATCH_LANES,
    codec_cases,
    jtl_pipe,
    lane_trains,
    netlists,
    run_case,
    run_case_batch,
    scalar_comparable,
)


def ff_fabric():
    """Analytic-eligible fabric: splitter -> two JTL paths -> ideal merger."""
    circuit = Circuit("ff")
    split = circuit.add(Splitter("s"))
    j1 = circuit.add(Jtl("j1"))
    j2 = circuit.add(Jtl("j2"))
    merger = circuit.add(IdealMerger("m"))
    circuit.connect(split, "q1", j1, "a", delay=100)
    circuit.connect(split, "q2", j2, "a", delay=300)
    circuit.connect(j1, "q", merger, "a")
    circuit.connect(j2, "q", merger, "b")
    probe = circuit.probe(merger, "q")
    return circuit, split, merger, probe


def tff_circuit():
    """Stateful (event-mode-only) circuit: JTL -> TFF."""
    circuit = Circuit("tff")
    jtl = circuit.add(Jtl("j"))
    tff = circuit.add(Tff("t"))
    circuit.connect(jtl, "q", tff, "a", delay=50)
    probe = circuit.probe(tff, "q")
    return circuit, jtl, tff, probe


def drop_circuit(rate=0.5, seed=7):
    circuit = Circuit("drop")
    jtl = circuit.add(Jtl("j"))
    channel = circuit.add(DropChannel("d", drop_rate=rate, seed=seed))
    circuit.connect(jtl, "q", channel, "a", delay=20)
    probe = circuit.probe(channel, "q")
    return circuit, jtl, channel, probe


TRAIN = [0, 1_000, 1_000, 2_500, 4_000, 4_000, 9_000]


class TestModes:
    def test_feedforward_takes_analytic_path(self):
        circuit, entry, merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=3)
        sim.schedule_train(entry, "a", TRAIN)
        stats = sim.run()
        assert stats.mode == "analytic"
        # Every input pulse reaches the merger twice (both paths).
        assert sim.port_counts(merger, "q").tolist() == [2 * len(TRAIN)] * 3

    def test_until_forces_event_mode(self):
        circuit, entry, merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=2)
        sim.schedule_train(entry, "a", TRAIN)
        stats = sim.run(until=100_000)
        assert stats.mode == "event"
        assert stats.end_time.tolist() == [100_000, 100_000]

    def test_stateful_circuit_uses_event_mode(self):
        circuit, entry, tff, _probe = tff_circuit()
        sim = BatchSimulator(circuit, batch=2)
        sim.schedule_train(entry, "a", TRAIN)
        stats = sim.run()
        assert stats.mode == "event"
        assert sim.port_counts(tff, "q").tolist() == [len(TRAIN) // 2] * 2

    def test_analytic_then_event_raises_until_reset(self):
        circuit, entry, _merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=2)
        sim.schedule_train(entry, "a", TRAIN)
        assert sim.run().mode == "analytic"
        sim.schedule_input(entry, "a", 50_000)
        with pytest.raises(SimulationError, match="analytic"):
            sim.run(until=60_000)
        sim.reset()
        sim.schedule_input(entry, "a", 50_000)
        assert sim.run(until=60_000).mode == "event"

    def test_repeated_analytic_runs_accumulate(self):
        circuit, entry, merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=2)
        sim.schedule_train(entry, "a", TRAIN[:4])
        first = sim.run()
        sim.schedule_train(entry, "a", TRAIN[4:])
        second = sim.run()
        assert second.mode == "analytic"
        assert second.events_total > first.events_total
        assert sim.port_counts(merger, "q").tolist() == [2 * len(TRAIN)] * 2

    def test_event_budget_is_enforced(self):
        circuit, entry, _tff, _probe = tff_circuit()
        sim = BatchSimulator(circuit, batch=4, max_events=3)
        sim.schedule_train(entry, "a", TRAIN)
        with pytest.raises(SimulationError):
            sim.run()


class TestScheduling:
    def test_schedule_input_broadcast_vs_array(self):
        circuit, entry, merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=3)
        sim.schedule_input(entry, "a", 1_000)
        sim.schedule_input(entry, "a", np.array([10, 20, 30]))
        sim.run()
        assert sim.port_counts(merger, "q").tolist() == [4, 4, 4]
        times = [sim.port_times(merger, "q", lane) for lane in range(3)]
        assert times[0] != times[1] != times[2]

    def test_validation_errors(self):
        circuit, entry, _merger, probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=2)
        with pytest.raises(SimulationError, match="negative"):
            sim.schedule_input(entry, "a", -5)
        with pytest.raises(SimulationError, match="not an input port"):
            sim.schedule_input(entry, "nope", 0)
        with pytest.raises(SimulationError, match="scalar or a"):
            sim.schedule_input(entry, "a", np.array([1, 2, 3]))
        with pytest.raises(SimulationError, match="lane ids"):
            sim.schedule_flat(entry, "a", [0, 1], [0, 2])
        with pytest.raises(SimulationError, match="does not match"):
            sim.schedule_flat(entry, "a", [0, 1], [0])
        with pytest.raises(SimulationError, match="one train per lane"):
            sim.schedule_lane_trains(entry, "a", [[0]])
        with pytest.raises(ConfigurationError, match="batch size"):
            BatchSimulator(circuit, batch=0)

    def test_circuit_change_after_build_raises(self):
        circuit, entry, merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=2)
        circuit.probe(merger, "q", PulseRecorder("extra"))  # bumps the version
        sim.schedule_input(entry, "a", 0)
        with pytest.raises(SimulationError, match="changed"):
            sim.run()

    def test_seal_batch_caches_per_version(self):
        circuit, _entry, merger, _probe = ff_fabric()
        program = circuit.seal_batch()
        assert circuit.seal_batch() is program
        circuit.probe(merger, "q", PulseRecorder("second"))
        assert circuit.seal_batch() is not program


class TestFaults:
    def test_set_drop_rates_per_lane(self):
        circuit, entry, channel, _probe = drop_circuit()
        sim = BatchSimulator(circuit, batch=4)
        sim.set_drop_rates(channel, [0.0, 0.3, 0.7, 1.0])
        pulses = list(range(0, 500_000, 1_000))
        sim.schedule_train(entry, "a", pulses)
        sim.run()
        counts = sim.port_counts(channel, "q").tolist()
        assert counts[0] == len(pulses)
        assert counts[3] == 0
        assert counts[0] > counts[1] > counts[2] > counts[3]
        seen = [sim.element_attr(channel, "pulses_seen", lane) for lane in range(4)]
        lost = [sim.element_attr(channel, "pulses_dropped", lane) for lane in range(4)]
        assert seen == [len(pulses)] * 4
        assert [s - d for s, d in zip(seen, lost)] == counts

    def test_set_drop_rates_validation(self):
        circuit = Circuit("faults")
        jtl = circuit.add(Jtl("j"))
        jitter = circuit.add(JitterChannel("g", std_fs=100))
        circuit.connect(jtl, "q", jitter, "a")
        circuit.probe(jitter, "q")
        sim = BatchSimulator(circuit, batch=2)
        with pytest.raises(ConfigurationError, match="not a DropChannel"):
            sim.set_drop_rates(jitter, 0.5)
        with pytest.raises(ConfigurationError, match="not a fault channel"):
            sim.set_drop_rates(jtl, 0.5)
        circuit2, _entry, channel, _probe = drop_circuit()
        sim2 = BatchSimulator(circuit2, batch=2)
        with pytest.raises(ConfigurationError, match=r"in \[0, 1\]"):
            sim2.set_drop_rates(channel, [0.5, 1.5])

    def test_deterministic_channels_match_scalar(self):
        for rate in (0.0, 1.0):
            circuit, entry, channel, _probe = drop_circuit(rate=rate)
            sim = BatchSimulator(circuit, batch=3)
            sim.schedule_train(entry, "a", TRAIN)
            sim.run()
            scircuit, sentry, schannel, sprobe = drop_circuit(rate=rate)
            ssim = Simulator(scircuit, kernel="sealed")
            ssim.schedule_train(sentry, "a", TRAIN)
            ssim.run()
            for lane in range(3):
                assert sim.port_times(channel, "q", lane) == sorted(sprobe.times)
                assert sim.element_attr(channel, "pulses_seen", lane) == \
                    schannel.pulses_seen
                assert sim.element_attr(channel, "pulses_dropped", lane) == \
                    schannel.pulses_dropped

    def test_jitter_counts_post_clamp_displacements(self):
        circuit = Circuit("jitter")
        jtl = circuit.add(Jtl("j"))
        jitter = circuit.add(JitterChannel("g", std_fs=300, mean_fs=100))
        circuit.connect(jtl, "q", jitter, "a", delay=10)
        circuit.probe(jitter, "q")
        sim = BatchSimulator(circuit, batch=3)
        inject = list(range(0, 200_000, 2_000))
        sim.schedule_train(jtl, "a", inject)
        sim.run()
        jtl_delay = Jtl("ref").delay
        for lane in range(3):
            arrivals = sim.port_times(jitter, "q", lane)
            entries = [t + jtl_delay + 10 for t in inject]
            moves = [out - t - 100 for out, t in zip(arrivals, sorted(entries))]
            displaced = sim.element_attr(jitter, "pulses_displaced", lane)
            peak = sim.element_attr(jitter, "max_displacement_fs", lane)
            assert displaced == sim.element_attr(jitter, "pulses_seen", lane) - \
                sum(1 for m in moves if m == 0)
            assert displaced > 0  # std=300 over 100 pulses: certain
            assert peak >= max(abs(m) for m in moves)
            assert min(t + 100 + m for t, m in zip(sorted(entries), moves)) >= \
                min(entries)  # clamp: never earlier than zero extra delay

    def test_lane_streams_independent_of_batch_size(self):
        results = {}
        for batch in (2, 5):
            circuit, entry, channel, _probe = drop_circuit(rate=0.4, seed=11)
            sim = BatchSimulator(circuit, batch=batch)
            sim.schedule_train(entry, "a", list(range(0, 300_000, 1_000)))
            sim.run()
            results[batch] = [
                sim.port_times(channel, "q", lane) for lane in range(2)
            ]
        assert results[2] == results[5]

    def test_reset_rewinds_rng_streams(self):
        circuit, entry, channel, _probe = drop_circuit(rate=0.4)
        sim = BatchSimulator(circuit, batch=2)

        def go():
            sim.schedule_train(entry, "a", list(range(0, 100_000, 1_000)))
            sim.run()
            return [sim.port_times(channel, "q", lane) for lane in range(2)]

        first = go()
        sim.reset()
        assert go() == first


class TestStats:
    def test_lane_stats_and_totals(self):
        circuit, entry, _merger, _probe = ff_fabric()
        sim = BatchSimulator(circuit, batch=3)
        sim.schedule_train(entry, "a", TRAIN)
        stats = sim.run()
        assert stats.events_total == int(stats.events.sum())
        assert stats.pulses_total == int(stats.pulses.sum())
        lane = stats.lane(1)
        assert lane.events_processed == int(stats.events[1])
        assert lane.pulses_emitted == int(stats.pulses[1])
        assert lane.end_time == int(stats.end_time[1])
        assert stats.wall_s >= 0.0

    def test_pending_events_drains(self):
        circuit, entry, _tff, _probe = tff_circuit()
        sim = BatchSimulator(circuit, batch=2)
        sim.schedule_train(entry, "a", TRAIN)
        sim.run(until=1_500)
        assert sim.pending_events > 0
        sim.run()
        assert sim.pending_events == 0


@settings(max_examples=50, deadline=None)
@given(netlists())
def test_batch_matches_sealed_kernel_per_lane(case):
    build, stimulus = case
    lanes = run_case_batch(build, stimulus)
    for lane, train in enumerate(lane_trains(stimulus)):
        expected = scalar_comparable(run_case(build, train, "sealed"))
        assert lanes[lane] == expected, f"lane {lane} diverged"


@settings(max_examples=20, deadline=None)
@given(netlists(), st.integers(0, 30))
def test_batch_event_mode_matches_sealed_across_resume(case, cut):
    """Per-lane agreement across a run(until=...) boundary (event mode)."""
    build, stimulus = case
    horizon = cut * 1_000
    circuit, entry, probes = build()
    tap_ports = {
        id(tap.probe): (tap.source, port)
        for (_eid, port), taps in circuit._taps.items()
        for tap in taps
    }
    sim = BatchSimulator(circuit, batch=BATCH_LANES)
    sim.schedule_lane_trains(entry, "a", lane_trains(stimulus))
    sim.run(until=horizon)
    partial = [
        [sim.port_times(*tap_ports[id(p)], lane) for p in probes]
        for lane in range(BATCH_LANES)
    ]
    stats = sim.run()
    for lane, train in enumerate(lane_trains(stimulus)):
        scircuit, sentry, sprobes = build()
        ssim = Simulator(scircuit, kernel="sealed")
        ssim.schedule_train(sentry, "a", train)
        ssim.run(until=horizon)
        assert partial[lane] == [sorted(p.times) for p in sprobes]
        sstats = ssim.run()
        assert int(stats.events[lane]) == sstats.events_processed
        assert int(stats.pulses[lane]) == sstats.pulses_emitted
        assert int(stats.end_time[lane]) == sstats.end_time


@settings(max_examples=30, deadline=None)
@given(codec_cases(), st.integers(1, 7))
def test_batch_racelogic_transport_roundtrip(case, stride):
    """Per-lane Race-Logic operands survive batch-simulated transport."""
    epoch, _value, epoch_index = case
    codec = RaceLogicCodec(epoch)
    circuit, entry, _probe, latency = jtl_pipe()
    slots = [(lane * stride) % (epoch.n_max + 1) for lane in range(BATCH_LANES)]
    times = np.array(
        [codec.pulse_time(slot, epoch_index) for slot in slots], dtype=np.int64
    )
    sim = BatchSimulator(circuit, batch=BATCH_LANES)
    sim.schedule_input(entry, "a", times)
    assert sim.run().mode == "analytic"
    taps = [(tap.source, port)
            for (_eid, port), tap_list in circuit._taps.items()
            for tap in tap_list]
    element, port = taps[0]
    for lane, slot in enumerate(slots):
        arrivals = [t - latency for t in sim.port_times(element, port, lane)]
        assert codec.decode_pulse_train(arrivals, epoch_index) == slot


@settings(max_examples=30, deadline=None)
@given(codec_cases(), st.integers(1, 7))
def test_batch_pulsestream_transport_roundtrip(case, stride):
    """Per-lane pulse-stream operands survive batch-simulated transport."""
    epoch, _value, epoch_index = case
    codec = PulseStreamCodec(epoch)
    circuit, entry, _probe, latency = jtl_pipe()
    counts = [(lane * stride) % (epoch.n_max + 1) for lane in range(BATCH_LANES)]
    values = [codec.unipolar_of_count(n) for n in counts]
    sim = BatchSimulator(circuit, batch=BATCH_LANES)
    sim.schedule_lane_trains(
        entry, "a",
        [codec.encode_unipolar(value, epoch_index) for value in values],
    )
    sim.run()
    taps = [(tap.source, port)
            for (_eid, port), tap_list in circuit._taps.items()
            for tap in tap_list]
    element, port = taps[0]
    for lane, value in enumerate(values):
        arrivals = [t - latency for t in sim.port_times(element, port, lane)]
        assert codec.decode_unipolar(arrivals, epoch_index) == value
