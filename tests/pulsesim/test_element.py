"""Element base class: port declarations, priorities, validation."""

import pytest

from repro.errors import NetlistError
from repro.pulsesim.element import Element, PortSpec


class _Sample(Element):
    INPUTS = (PortSpec("ctrl", priority=0), "data")
    OUTPUTS = ("q", "nq")

    def handle(self, sim, port, time):
        pass


def test_string_ports_become_specs_with_default_priority():
    cell = _Sample("s")
    assert cell.input_priority("data") == 0
    assert cell.input_priority("ctrl") == 0
    assert cell.input_names == ("ctrl", "data")
    assert cell.output_names == ("q", "nq")


def test_unknown_input_port_raises():
    cell = _Sample("s")
    with pytest.raises(NetlistError, match="no input port"):
        cell.input_priority("bogus")


def test_unknown_output_port_raises():
    cell = _Sample("s")
    with pytest.raises(NetlistError, match="no output port"):
        cell.check_output("bogus")


def test_handle_is_abstract():
    class _Bare(Element):
        INPUTS = ("a",)
        OUTPUTS = ("q",)

    with pytest.raises(NotImplementedError):
        _Bare("b").handle(None, "a", 0)


def test_portspec_is_frozen():
    spec = PortSpec("a", priority=3)
    with pytest.raises(AttributeError):
        spec.priority = 0


def test_repr_mentions_class_and_name():
    assert "_Sample" in repr(_Sample("xyz"))
    assert "xyz" in repr(_Sample("xyz"))


def test_default_reset_is_a_no_op():
    _Sample("s").reset()  # must not raise
