"""capture_stats / quiet_stats must be task-local (ContextVar semantics).

Two asyncio tasks running simulations concurrently must each see only
their own runs' event counts — the old module-global collector list let
an interleaved task inflate a neighbour's stats.
"""

import asyncio

from repro.cells.interconnect import Jtl
from repro.pulsesim import (
    Circuit,
    Simulator,
    active_collectors,
    capture_stats,
    quiet_stats,
)


def _run_chain(pulses):
    """A one-JTL circuit driven with ``pulses`` inputs: 2*pulses events."""
    circuit = Circuit("stats_async")
    jtl = circuit.add(Jtl("jtl"))
    circuit.seal()
    sim = Simulator(circuit)
    for index in range(pulses):
        sim.schedule_input(jtl, "a", 10_000 * (index + 1))
    sim.run()
    return sim.stats.events_processed


def test_overlapping_tasks_accumulate_into_their_own_collector():
    async def worker(pulses):
        with capture_stats() as stats:
            for _ in range(3):
                await asyncio.sleep(0)  # interleave with the other task
                _run_chain(pulses)
            return stats.events_processed

    async def main():
        return await asyncio.gather(worker(1), worker(4))

    events_small, events_large = asyncio.run(main())
    single_small = _run_chain(1)
    single_large = _run_chain(4)
    assert events_small == 3 * single_small
    assert events_large == 3 * single_large


def test_quiet_stats_hides_ambient_collectors_for_the_block():
    with capture_stats() as stats:
        baseline = _run_chain(2)
        assert stats.events_processed == baseline
        with quiet_stats():
            assert active_collectors() == ()
            _run_chain(2)  # must not be observed
        assert stats.events_processed == baseline
        _run_chain(2)
        assert stats.events_processed == 2 * baseline
    assert active_collectors() == ()
