"""The compiled (sealed) kernel: selection, sealing, and exact semantics.

The sealed kernel's contract is *bit-identical behaviour* to the reference
heap loop — these tests pin the machinery (kernel selection, seal
semantics, fanout immutability, packed-key tie-breaking, bucket-queue
ordering, resume, error paths).  The broad behavioural equivalence is
covered by the Hypothesis differential suite in
``test_kernel_differential.py``.
"""

import pytest

from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.cells.logic import LastArrival
from repro.cells.storage import Ndro
from repro.errors import ConfigurationError, NetlistError, SimulationError
from repro.pulsesim import (
    Circuit,
    Element,
    PortSpec,
    SealedSimulator,
    Simulator,
    compile_circuit,
    resolve_kernel,
)
from repro.pulsesim.kernel import KERNEL_ENV
from repro.pulsesim.simulator import Simulator as ReferenceSimulator


def _jtl_pair():
    circuit = Circuit("pair")
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", b, "a")
    probe = circuit.probe(b, "q")
    return circuit, a, b, probe


# -- kernel selection ----------------------------------------------------------
def test_resolve_kernel_rejects_unknown():
    with pytest.raises(ConfigurationError, match="unknown kernel"):
        resolve_kernel("turbo")


def test_resolve_kernel_env_default(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert resolve_kernel(None) == "auto"
    monkeypatch.setenv(KERNEL_ENV, "reference")
    assert resolve_kernel(None) == "reference"
    # An explicit argument wins over the environment.
    assert resolve_kernel("sealed") == "sealed"


def test_simulator_dispatches_by_kernel():
    circuit, a, _b, _probe = _jtl_pair()
    assert isinstance(Simulator(circuit), SealedSimulator)
    assert isinstance(Simulator(circuit, kernel="auto"), SealedSimulator)
    reference = Simulator(circuit, kernel="reference")
    assert type(reference) is ReferenceSimulator
    assert reference.kernel == "reference"


def test_kernel_env_var_selects_reference(monkeypatch):
    circuit, _a, _b, _probe = _jtl_pair()
    monkeypatch.setenv(KERNEL_ENV, "reference")
    assert type(Simulator(circuit)) is ReferenceSimulator


def test_kernel_sealed_seals_the_circuit():
    circuit, _a, _b, _probe = _jtl_pair()
    assert not circuit.sealed
    sim = Simulator(circuit, kernel="sealed")
    assert circuit.sealed
    assert isinstance(sim, SealedSimulator)


# -- seal semantics ------------------------------------------------------------
def test_seal_freezes_topology():
    circuit, a, b, _probe = _jtl_pair()
    assert circuit.seal() is circuit  # fluent, and idempotent below
    circuit.seal()
    with pytest.raises(NetlistError, match="sealed"):
        circuit.add(Jtl("c"))
    with pytest.raises(NetlistError, match="sealed"):
        circuit.connect(b, "q", a, "a")


def test_seal_still_allows_probes():
    circuit, a, b, _probe = _jtl_pair()
    circuit.seal()
    late = circuit.probe(a, "q")  # observability is not topology
    sim = Simulator(circuit)
    sim.schedule_input(a, "a", 0)
    sim.run()
    assert len(late.times) == 1


def test_fanout_immutable_after_seal():
    circuit, a, _b, _probe = _jtl_pair()
    circuit.seal()
    wires = circuit.fanout(a, "q")
    assert isinstance(wires, tuple)
    with pytest.raises(AttributeError):
        wires.append(None)


def test_fanout_mutation_cannot_corrupt_routing():
    # Before seal fanout() hands out a defensive copy: clearing it must not
    # change what the simulator routes.
    circuit, a, b, probe = _jtl_pair()
    aliased = circuit.fanout(a, "q")
    aliased.clear()
    aliased.extend([None, None, None])
    sim = Simulator(circuit)
    sim.schedule_input(a, "a", 0)
    stats = sim.run()
    assert len(probe.times) == 1
    assert stats.events_processed == 2  # a then b; routing intact


def test_wires_into_is_indexed_and_ordered():
    circuit = Circuit("fanin")
    merger = circuit.add(IdealMerger("m"))
    sources = [circuit.add(Jtl(f"j{i}")) for i in range(4)]
    for jtl in sources:
        circuit.connect(jtl, "q", merger, "a", delay=7)
    wires = circuit.wires_into(merger, "a")
    assert [w.source.name for w in wires] == ["j0", "j1", "j2", "j3"]
    assert circuit.wires_into(merger, "b") == []


# -- exact ordering semantics --------------------------------------------------
def test_port_priority_beats_schedule_order():
    # NDRO: reset (priority 0) must beat clk (priority 2) when simultaneous
    # even though the clk pulse was scheduled first.
    for kernel in ("reference", "sealed"):
        circuit = Circuit("prio")
        ndro = circuit.add(Ndro("n"))
        probe = circuit.probe(ndro, "q")
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_input(ndro, "set", 0)
        sim.schedule_input(ndro, "clk", 10_000)  # scheduled before reset...
        sim.schedule_input(ndro, "reset", 10_000)  # ...but processed first
        sim.run()
        assert probe.times == [], kernel


def test_sequence_preserves_fifo_within_priority():
    # Two pulses into a TFF at the same time from different schedule calls:
    # insertion order decides which one toggles first — observable through
    # the merger dead-time filter downstream in richer netlists; here we
    # just check both kernels process both events and agree on stats.
    results = {}
    for kernel in ("reference", "sealed"):
        circuit = Circuit("fifo")
        jtl = circuit.add(Jtl("j"))
        probe = circuit.probe(jtl, "q")
        sim = Simulator(circuit, kernel=kernel)
        for _ in range(3):
            sim.schedule_input(jtl, "a", 5_000)
        sim.schedule_train(jtl, "a", [5_000, 5_000])
        stats = sim.run()
        results[kernel] = (probe.times, stats.events_processed)
    assert results["reference"] == results["sealed"]


def test_bucket_queue_orders_across_times():
    circuit = Circuit("order")
    jtl = circuit.add(Jtl("j"))
    probe = circuit.probe(jtl, "q")
    sim = Simulator(circuit, kernel="sealed")
    # Deliberately unsorted stimulus with duplicates.
    sim.schedule_train(jtl, "a", [9_000, 1_000, 5_000, 1_000, 9_000])
    sim.run()
    assert probe.times == sorted(t + jtl.delay for t in
                                 [1_000, 1_000, 5_000, 9_000, 9_000])
    assert sim.pending_events == 0


def test_schedule_train_empty_never_validates_port():
    circuit = Circuit("empty")
    jtl = circuit.add(Jtl("j"))
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_train(jtl, "nonsense", [])  # matches the reference loop
    with pytest.raises(NetlistError):
        sim.schedule_train(jtl, "nonsense", [1_000])


def test_negative_time_rejected():
    circuit, a, _b, _probe = _jtl_pair()
    for kernel in ("reference", "sealed"):
        sim = Simulator(circuit, kernel=kernel)
        with pytest.raises(SimulationError, match="negative"):
            sim.schedule_input(a, "a", -1)
        with pytest.raises(SimulationError, match="negative"):
            sim.schedule_train(a, "a", [0, -5])


# -- run/resume/reset ----------------------------------------------------------
def test_run_until_resume_matches_reference():
    outputs = {}
    for kernel in ("reference", "sealed"):
        circuit = Circuit("resume")
        cells = [circuit.add(Jtl(f"j{i}")) for i in range(4)]
        for left, right in zip(cells, cells[1:]):
            circuit.connect(left, "q", right, "a", delay=2_000)
        probe = circuit.probe(cells[-1], "q")
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_train(cells[0], "a", [0, 10_000, 20_000])
        first = sim.run(until=15_000)
        mid = (list(probe.times), first.events_processed, first.end_time,
               sim.pending_events)
        final = sim.run()
        outputs[kernel] = (mid, list(probe.times), final.events_processed,
                           final.end_time)
    assert outputs["reference"] == outputs["sealed"]


def test_monotonic_flip_mid_life_preserves_order():
    """A foreign-element schedule voids the monotonic proof mid-life.

    The first (monotonic) run plain-appends into contended buckets and
    stops at ``until`` with some of them still pending; the foreign
    schedule then flips the circuit non-monotonic, so the second run must
    restore the heap invariant before heap-popping those leftovers.  The
    NDRO is the oracle: set/reset/clk collide at every timestamp, so any
    ordering slip changes its state, read count, or recordings.
    """
    outputs = {}
    for kernel in ("reference", "sealed"):
        circuit = Circuit("flip")
        heads = [circuit.add(Jtl(name)) for name in ("a", "b", "c")]
        ndro = circuit.add(Ndro("n"))
        for head, port in zip(heads, ("set", "reset", "clk")):
            circuit.connect(head, "q", ndro, port, delay=500)
        probe = circuit.probe(ndro, "q")
        sim = Simulator(circuit, kernel=kernel)
        times = [1_000 * i for i in range(20) for _ in (0, 1)]
        for head in heads:
            sim.schedule_train(head, "a", times)
        sim.run(until=9_000)
        sim.schedule_input(LastArrival("foreign"), "a", 11_000)
        stats = sim.run()
        outputs[kernel] = (list(probe.times), stats.events_processed,
                           stats.pulses_emitted, ndro.state, ndro.reads)
    assert outputs["reference"] == outputs["sealed"]


def test_reset_clears_queue_and_state():
    circuit, a, _b, probe = _jtl_pair()
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_train(a, "a", [1_000, 2_000])
    assert sim.pending_events == 2
    sim.reset()
    assert sim.pending_events == 0
    assert sim.now == 0
    sim.schedule_input(a, "a", 0)
    sim.run()
    assert len(probe.times) == 1


def test_max_events_guard():
    circuit, a, _b, _probe = _jtl_pair()
    sim = Simulator(circuit, kernel="sealed", max_events=3)
    sim.schedule_train(a, "a", [0, 1_000, 2_000, 3_000])
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_stats_match_reference_exactly():
    per_kernel = {}
    for kernel in ("reference", "sealed"):
        circuit = Circuit("stats")
        split = circuit.add(Splitter("s"))
        left = circuit.add(Jtl("l"))
        right = circuit.add(Jtl("r"))
        merger = circuit.add(Merger("m"))
        circuit.connect(split, "q1", left, "a")
        circuit.connect(split, "q2", right, "a", delay=1_500)
        circuit.connect(left, "q", merger, "a")
        circuit.connect(right, "q", merger, "b")
        probe = circuit.probe(merger, "q")
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_train(split, "a", [0, 20_000, 40_000])
        stats = sim.run()
        per_kernel[kernel] = (
            stats.events_processed,
            stats.pulses_emitted,
            stats.end_time,
            probe.times,
            merger.collisions,
        )
    assert per_kernel["reference"] == per_kernel["sealed"]


# -- recompilation -------------------------------------------------------------
def test_probe_after_schedule_recompiles_without_stale_events():
    # Events queued before a probe is attached must still notify it: the
    # compiler patches programs in place rather than rebuilding them.
    circuit, a, b, _probe = _jtl_pair()
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_input(a, "a", 0)
    late = circuit.probe(a, "q")
    sim.run()
    assert len(late.times) == 1


def test_unsealed_circuit_can_grow_between_runs():
    circuit = Circuit("grow")
    a = circuit.add(Jtl("a"))
    probe_a = circuit.probe(a, "q")
    sim = Simulator(circuit)  # auto: compiled kernel, unsealed circuit
    sim.schedule_input(a, "a", 0)
    sim.run()
    assert len(probe_a.times) == 1
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", b, "a")
    probe_b = circuit.probe(b, "q")
    sim.schedule_input(a, "a", 50_000)
    sim.run()
    assert len(probe_a.times) == 2
    assert len(probe_b.times) == 1


def test_generic_cell_uses_call_path():
    # LastArrival has no inline opcode: the sealed loop must fall back to
    # its handle and still agree with the reference loop.
    per_kernel = {}
    for kernel in ("reference", "sealed"):
        circuit = Circuit("generic")
        gate = circuit.add(LastArrival("gate"))
        probe = circuit.probe(gate, "q")
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_input(gate, "a", 1_000)
        sim.schedule_input(gate, "b", 8_000)
        stats = sim.run()
        per_kernel[kernel] = (probe.times, stats.events_processed,
                              stats.pulses_emitted)
    assert per_kernel["reference"] == per_kernel["sealed"]


def test_custom_element_with_handler_exception_keeps_counters():
    class Exploding(Element):
        INPUTS = (PortSpec("a"),)
        OUTPUTS = ("q",)
        jj_count = 0
        delay = 1_000

        def handle(self, sim, port, time):
            self.emit(sim, "q", time + self.delay)
            raise RuntimeError("boom")

    circuit = Circuit("boom")
    cell = circuit.add(Exploding("x"))
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit, kernel="sealed")
    sim.schedule_input(cell, "a", 0)
    with pytest.raises(RuntimeError):
        sim.run()
    # The emission before the crash is accounted for and queued.
    assert sim.stats.pulses_emitted == 1
    assert sim.pending_events == 0  # q has no fanout; probe got the pulse
    assert len(probe.times) == 1


def test_compile_circuit_is_cached_by_version():
    circuit, _a, _b, _probe = _jtl_pair()
    circuit.seal()
    first = circuit._compiled
    assert first is not None
    assert compile_circuit(circuit) is not first  # explicit call recompiles
    again = Simulator(circuit, kernel="sealed")._tables()
    assert again is circuit._compiled  # version unchanged: served from cache
