"""Fault-injection channels and their effect on structural blocks."""

import pytest

from repro.core.balancer import Balancer
from repro.core.multiplier import SETUP_FS, build_unipolar_multiplier, unipolar_product_count
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.faults import DropChannel, JitterChannel
from repro.pulsesim.schedule import uniform_stream_times


class TestJitterChannel:
    def test_zero_std_is_a_plain_wire(self):
        circuit = Circuit()
        channel = circuit.add(JitterChannel("j", std_fs=0))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", [0, 10_000])
        sim.run()
        assert probe.times == [0, 10_000]

    def test_jitter_displaces_but_preserves_pulses(self):
        circuit = Circuit()
        channel = circuit.add(JitterChannel("j", std_fs=2_000, seed=7))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        inputs = [k * 50_000 for k in range(40)]
        sim.schedule_train(channel, "a", inputs)
        sim.run()
        assert probe.count() == 40
        assert channel.max_displacement_fs > 0
        assert probe.times != inputs

    def test_seeded_runs_reproduce(self):
        times = []
        for _ in range(2):
            circuit = Circuit()
            channel = circuit.add(JitterChannel("j", std_fs=3_000, seed=11))
            probe = circuit.probe(channel, "q")
            sim = Simulator(circuit)
            sim.schedule_train(channel, "a", [k * 50_000 for k in range(20)])
            sim.run()
            times.append(tuple(probe.times))
        assert times[0] == times[1]

    def test_reset_restores_rng(self):
        circuit = Circuit()
        channel = circuit.add(JitterChannel("j", std_fs=3_000, seed=3))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", [k * 50_000 for k in range(10)])
        sim.run()
        first = tuple(probe.times)
        sim.reset()
        sim.schedule_train(channel, "a", [k * 50_000 for k in range(10)])
        sim.run()
        assert tuple(probe.times) == first

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JitterChannel("j", std_fs=-1)

    def test_clamped_draws_are_not_counted_as_displacement(self):
        """With mean_fs=0, every negative draw is fully clamped away — the
        counters must reflect only pulses that actually moved."""
        circuit = Circuit()
        channel = circuit.add(JitterChannel("j", std_fs=5_000, mean_fs=0, seed=9))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        inputs = [k * 1_000_000 for k in range(200)]  # spacing >> jitter
        sim.schedule_train(channel, "a", inputs)
        sim.run()
        moved = [out - t for out, t in zip(sorted(probe.times), inputs)]
        assert channel.pulses_displaced == sum(1 for d in moved if d)
        assert channel.max_displacement_fs == max(moved)
        # ~half the draws are negative (clamped), so the distinction matters:
        assert 0 < channel.pulses_displaced < len(inputs)

    def test_partial_clamp_records_effective_displacement(self):
        """mean_fs > 0 with huge negative draws: the pulse moves early by at
        most mean_fs, not by the raw draw size."""
        circuit = Circuit()
        channel = circuit.add(
            JitterChannel("j", std_fs=1_000_000, mean_fs=10, seed=1)
        )
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        inputs = [k * 10_000_000 for k in range(50)]
        sim.schedule_train(channel, "a", inputs)
        sim.run()
        effective = [
            out - t - channel.mean_fs
            for out, t in zip(sorted(probe.times), inputs)
        ]
        assert channel.pulses_displaced == sum(1 for d in effective if d)
        assert channel.max_displacement_fs == max(abs(d) for d in effective)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_negative_effective_delay_clamped(self, seed):
        """Huge jitter must never schedule a pulse before its arrival."""
        circuit = Circuit()
        channel = circuit.add(
            JitterChannel("j", std_fs=1_000_000, mean_fs=10, seed=seed)
        )
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        inputs = [k * 10_000_000 for k in range(50)]
        sim.schedule_train(channel, "a", inputs)
        sim.run()  # a negative delay would raise a causality violation
        assert probe.count() == 50
        assert all(out >= t_in for out, t_in in zip(sorted(probe.times), inputs))


class TestDropChannel:
    def test_drop_rate_zero_passes_everything(self):
        circuit = Circuit()
        channel = circuit.add(DropChannel("d", drop_rate=0.0))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", range(0, 1_000, 100))
        sim.run()
        assert probe.count() == 10

    def test_drop_rate_one_blocks_everything(self):
        circuit = Circuit()
        channel = circuit.add(DropChannel("d", drop_rate=1.0))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", range(0, 1_000, 100))
        sim.run()
        assert probe.count() == 0
        assert channel.pulses_dropped == 10

    def test_partial_loss_accounting(self):
        circuit = Circuit()
        channel = circuit.add(DropChannel("d", drop_rate=0.3, seed=5))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", range(0, 100_000, 100))
        sim.run()
        assert probe.count() + channel.pulses_dropped == 1_000
        assert 200 < channel.pulses_dropped < 400

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DropChannel("d", drop_rate=1.5)

    def test_reset_restores_rng(self):
        """Simulator.reset() rewinds the seed: the drop pattern repeats."""
        circuit = Circuit()
        channel = circuit.add(DropChannel("d", drop_rate=0.4, seed=21))
        probe = circuit.probe(channel, "q")
        sim = Simulator(circuit)
        stimulus = list(range(0, 50_000, 100))
        sim.schedule_train(channel, "a", stimulus)
        sim.run()
        first = tuple(probe.times)
        first_dropped = channel.pulses_dropped
        assert 0 < first_dropped < len(stimulus)
        sim.reset()
        sim.schedule_train(channel, "a", stimulus)
        sim.run()
        assert tuple(probe.times) == first
        assert channel.pulses_dropped == first_dropped


class TestStructuralFaultEffects:
    def test_jittery_lane_provokes_balancer_hazards(self):
        """Delay variation inside t_BFF biases the balancer (section 5.4.1)."""
        circuit = Circuit()
        channel = circuit.add(JitterChannel("j", std_fs=6_000, seed=2))
        balancer = circuit.add(Balancer("bal"))
        circuit.connect(channel, "q", balancer, "a")
        circuit.probe(balancer, "y1")
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", [k * 12_000 for k in range(64)])
        sim.run()
        assert balancer.hazard_events > 0

    def test_dropped_rl_pulse_reads_full_scale(self):
        """Losing the Race-Logic pulse passes the whole stream (error ii)."""
        epoch = EpochSpec(bits=4)
        circuit = Circuit()
        mult = build_unipolar_multiplier(circuit, "mul")
        channel = circuit.add(DropChannel("d", drop_rate=1.0))
        b_element, b_port = mult.input("b")
        circuit.connect(channel, "q", b_element, b_port)
        probe = mult.probe_output("out")
        sim = Simulator(circuit)
        mult.drive(sim, "epoch", 0)
        mult.drive(
            sim, "a",
            [t + SETUP_FS for t in uniform_stream_times(8, 16, epoch.slot_fs)],
        )
        sim.schedule_input(channel, "a", SETUP_FS + epoch.slot_time(4))
        sim.run()
        # Without the loss the product would be ceil(8 * 4 / 16) = 2.
        assert unipolar_product_count(8, 4, 16) == 2
        assert probe.count() == 8  # the whole stream passed


class TestFaultTotals:
    """Process-cumulative counters consumed by the experiment runner."""

    def test_totals_accumulate_across_instances_and_resets(self):
        from repro.pulsesim.faults import fault_totals

        base = fault_totals()
        circuit = Circuit()
        jitter = circuit.add(JitterChannel("j", std_fs=2_000, seed=3))
        sim = Simulator(circuit)
        sim.schedule_train(jitter, "a", [k * 10_000 for k in range(20)])
        sim.run()
        seen_once = fault_totals()["jitter.pulses_seen"] - base["jitter.pulses_seen"]
        assert seen_once == 20
        assert jitter.pulses_seen == 20
        assert jitter.pulses_displaced > 0

        sim.reset()  # clears per-instance counters, not the totals
        assert jitter.pulses_seen == 0
        assert jitter.pulses_displaced == 0
        assert fault_totals()["jitter.pulses_seen"] - base["jitter.pulses_seen"] == 20

        sim.schedule_input(jitter, "a", 0)
        sim.run()
        assert fault_totals()["jitter.pulses_seen"] - base["jitter.pulses_seen"] == 21

    def test_drop_totals_count_losses(self):
        from repro.pulsesim.faults import fault_totals

        base = fault_totals()
        circuit = Circuit()
        channel = circuit.add(DropChannel("d", drop_rate=1.0))
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", [0, 1_000, 2_000])
        sim.run()
        delta = {
            key: value - base[key] for key, value in fault_totals().items()
        }
        assert delta["drop.pulses_seen"] == 3
        assert delta["drop.pulses_dropped"] == 3

    def test_snapshot_is_a_copy(self):
        from repro.pulsesim.faults import _TOTALS, fault_totals

        snapshot = fault_totals()
        snapshot["drop.pulses_seen"] += 999
        assert _TOTALS["drop.pulses_seen"] != snapshot["drop.pulses_seen"]
