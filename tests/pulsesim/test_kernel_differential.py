"""Property-based differential test: sealed kernel vs reference loop.

Hypothesis builds random layered netlists from the full standard-cell
library (plus generic-dispatch cells), drives them with random stimulus
trains — heavy on simultaneous events to stress tie-breaking — and runs
the same circuit under ``kernel="reference"`` and ``kernel="sealed"``.
The two runs must agree *exactly*: every probe recording (order included),
all simulation stats, and every cell's internal state.  Internal cell
state is the sharpest oracle: balancer/TFF parity, merger dead-time
filtering, and NDRO/DFF stores are all order-sensitive, so any divergence
in the ``(time, priority, sequence)`` total order shows up as a state or
recording mismatch.

The netlist strategy and run snapshotter live in :mod:`tests.strategies`,
shared with the trace-transparency suite and mirrored by the standalone
fuzzing harness in :mod:`repro.verify`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pulsesim import Simulator
from tests.strategies import netlists, run_case


@settings(max_examples=60, deadline=None)
@given(netlists())
def test_sealed_kernel_matches_reference(case):
    build, stimulus = case
    reference = run_case(build, stimulus, "reference")
    sealed = run_case(build, stimulus, "sealed")
    assert sealed == reference


@settings(max_examples=20, deadline=None)
@given(netlists(), st.integers(0, 30))
def test_sealed_kernel_matches_reference_with_resume(case, cut):
    """Same property across a run(until=...) boundary."""
    build, stimulus = case
    horizon = cut * 1_000

    def run_split(kernel):
        circuit, entry, probes = build()
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_train(entry, "a", stimulus)
        sim.run(until=horizon)
        partial = [list(probe.times) for probe in probes]
        stats = sim.run()
        return (partial, [list(p.times) for p in probes],
                stats.events_processed, stats.pulses_emitted, stats.end_time,
                stats.max_queue_depth)

    assert run_split("sealed") == run_split("reference")
