"""Property-based differential test: sealed kernel vs reference loop.

Hypothesis builds random layered netlists from the full standard-cell
library (plus generic-dispatch cells), drives them with random stimulus
trains — heavy on simultaneous events to stress tie-breaking — and runs
the same circuit under ``kernel="reference"`` and ``kernel="sealed"``.
The two runs must agree *exactly*: every probe recording (order included),
all simulation stats, and every cell's internal state.  Internal cell
state is the sharpest oracle: balancer/TFF parity, merger dead-time
filtering, and NDRO/DFF stores are all order-sensitive, so any divergence
in the ``(time, priority, sequence)`` total order shows up as a state or
recording mismatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.cells.logic import FirstArrival, Inverter, LastArrival
from repro.cells.storage import Dff, Dff2, Ndro
from repro.cells.toggle import Tff, Tff2
from repro.pulsesim import Circuit, Simulator

#: (factory, input ports, output ports).  LastArrival/FirstArrival have no
#: inline opcode, so drawing them exercises the generic-call path and the
#: non-monotonic drain mode alongside the compiled opcodes.
_CELLS = [
    (Jtl, ("a",), ("q",)),
    (Splitter, ("a",), ("q1", "q2")),
    (Merger, ("a", "b"), ("q",)),
    (IdealMerger, ("a", "b"), ("q",)),
    (Ndro, ("set", "reset", "clk"), ("q",)),
    (Dff, ("d", "clk"), ("q",)),
    (Dff2, ("a", "c1", "c2"), ("y1", "y2")),
    (Tff, ("a",), ("q",)),
    (Tff2, ("a",), ("q1", "q2")),
    (Inverter, ("a", "clk"), ("q",)),
    (LastArrival, ("reset", "a", "b"), ("q",)),
    (FirstArrival, ("reset", "a", "b"), ("q",)),
]

#: Observable internal state, per cell, after a run.
_STATE_ATTRS = ("state", "reads", "collisions", "_armed", "_last_accept",
                "_first_emitted")


@st.composite
def netlists(draw):
    """A random layered DAG plus stimulus: ``(build, stimulus, n_layers)``.

    Returns a zero-argument ``build()`` so each kernel run gets an
    identical, freshly constructed circuit (cells are stateful objects —
    they cannot be shared between the two runs without a reset, and
    rebuilding also exercises compilation from scratch).
    """
    n_layers = draw(st.integers(1, 3))
    layer_specs = []  # per layer: list of (cell_index, per-input wiring)
    n_outputs = 2  # the entry splitter's q1/q2
    for _ in range(n_layers):
        width = draw(st.integers(1, 3))
        cells = []
        for _ in range(width):
            cell_index = draw(st.integers(0, len(_CELLS) - 1))
            inputs = _CELLS[cell_index][1]
            wiring = [
                (draw(st.integers(0, n_outputs - 1)),
                 draw(st.integers(0, 3)) * 500)  # wire delay in {0..1500}
                for _ in inputs
            ]
            cells.append((cell_index, wiring))
        layer_specs.append(cells)
        n_outputs += sum(len(_CELLS[ci][2]) for ci, _ in cells)
    probe_mask = draw(st.integers(0, (1 << n_outputs) - 1))
    stimulus = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=25).map(
            lambda raw: [t * 1_000 for t in raw]  # many duplicate times
        )
    )

    def build():
        circuit = Circuit("differential")
        entry = circuit.add(Splitter("entry"))
        outputs = [(entry, "q1"), (entry, "q2")]
        for layer, cells in enumerate(layer_specs):
            for position, (cell_index, wiring) in enumerate(cells):
                factory, inputs, outs = _CELLS[cell_index]
                cell = circuit.add(factory(f"c{layer}_{position}"))
                for port, (source_index, delay) in zip(inputs, wiring):
                    source, source_port = outputs[source_index]
                    circuit.connect(source, source_port, cell, port,
                                    delay=delay)
                outputs.extend((cell, out) for out in outs)
        probes = []
        for index, (element, port) in enumerate(outputs):
            if probe_mask >> index & 1 or index == len(outputs) - 1:
                probes.append(circuit.probe(element, port))
        return circuit, entry, probes

    return build, stimulus


def _run(build, stimulus, kernel):
    circuit, entry, probes = build()
    sim = Simulator(circuit, kernel=kernel)
    # Mix single-pulse scheduling with the batched path.
    for time in stimulus[:3]:
        sim.schedule_input(entry, "a", time)
    sim.schedule_train(entry, "a", stimulus[3:])
    stats = sim.run()
    state = [
        tuple(getattr(element, attr, None) for attr in _STATE_ATTRS)
        for element in circuit.elements
    ]
    assert stats.wall_s >= 0.0  # the one non-deterministic stat: not compared
    return {
        "recordings": [list(probe.times) for probe in probes],
        "events": stats.events_processed,
        "pulses": stats.pulses_emitted,
        "end_time": stats.end_time,
        "max_queue_depth": stats.max_queue_depth,
        "now": sim.now,
        "state": state,
    }


@settings(max_examples=60, deadline=None)
@given(netlists())
def test_sealed_kernel_matches_reference(case):
    build, stimulus = case
    reference = _run(build, stimulus, "reference")
    sealed = _run(build, stimulus, "sealed")
    assert sealed == reference


@settings(max_examples=20, deadline=None)
@given(netlists(), st.integers(0, 30))
def test_sealed_kernel_matches_reference_with_resume(case, cut):
    """Same property across a run(until=...) boundary."""
    build, stimulus = case
    horizon = cut * 1_000

    def run_split(kernel):
        circuit, entry, probes = build()
        sim = Simulator(circuit, kernel=kernel)
        sim.schedule_train(entry, "a", stimulus)
        sim.run(until=horizon)
        partial = [list(probe.times) for probe in probes]
        stats = sim.run()
        return (partial, [list(p.times) for p in probes],
                stats.events_processed, stats.pulses_emitted, stats.end_time,
                stats.max_queue_depth)

    assert run_split("sealed") == run_split("reference")
