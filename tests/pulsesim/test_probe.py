"""Pulse recorders and waveform probes."""

import numpy as np
import pytest

from repro.pulsesim.probe import PulseRecorder, WaveformProbe, merge_timelines


def _recorder(times, label="x"):
    probe = PulseRecorder(label)
    for t in times:
        probe.record(t)
    return probe


def test_count_whole_history_and_window():
    probe = _recorder([10, 20, 30, 40])
    assert probe.count() == 4
    assert probe.count(15, 35) == 2
    assert probe.count(start=25) == 2


def test_first_and_empty_error():
    assert _recorder([30, 10]).first() == 10
    with pytest.raises(ValueError):
        _recorder([]).first()


def test_in_window_sorted():
    probe = _recorder([30, 10, 20])
    assert probe.in_window(0, 25) == [10, 20]


def test_inter_pulse_intervals():
    assert _recorder([10, 40, 20]).inter_pulse_intervals() == [10, 20]
    assert _recorder([5]).inter_pulse_intervals() == []


def test_len_and_reset():
    probe = _recorder([1, 2, 3])
    assert len(probe) == 3
    probe.reset()
    assert len(probe) == 0


def test_merge_timelines_interleaves_sorted():
    a = _recorder([10, 30], "a")
    b = _recorder([20], "b")
    assert merge_timelines([a, b]) == [(10, "a"), (20, "b"), (30, "a")]


def test_waveform_render_peaks_at_pulses():
    probe = WaveformProbe("w", pulse_width_fs=2_000, amplitude_mv=0.5)
    probe.record(50_000)
    time, voltage = probe.render(0, 100_000, n_samples=1001)
    peak_index = int(np.argmax(voltage))
    assert abs(time[peak_index] - 50_000) < 200
    assert voltage[peak_index] == pytest.approx(0.5, rel=0.05)
    assert voltage[0] == pytest.approx(0.0, abs=1e-6)


def test_waveform_render_superposes_pulses():
    probe = WaveformProbe("w")
    probe.record(40_000)
    probe.record(60_000)
    _, voltage = probe.render(0, 100_000)
    # Two distinct peaks -> total integrated energy roughly doubles.
    assert np.sum(voltage) == pytest.approx(2 * 0.5 * np.sqrt(2 * np.pi) * (2_000 / 2.355) / (100_000 / 1999), rel=0.1)
