"""lane_slices: per-request lane ranges over a coalesced batch."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pulsesim.batch import lane_slices


def test_contiguous_slices_cover_the_batch_in_order():
    slices = lane_slices([2, 1, 3])
    assert slices == [slice(0, 2), slice(2, 3), slice(3, 6)]
    lanes = np.arange(6)
    assert lanes[slices[0]].tolist() == [0, 1]
    assert lanes[slices[1]].tolist() == [2]
    assert lanes[slices[2]].tolist() == [3, 4, 5]


def test_zero_lane_requests_yield_empty_slices_without_shifting_others():
    slices = lane_slices([0, 2, 0, 1])
    assert slices == [slice(0, 0), slice(0, 2), slice(2, 2), slice(2, 3)]
    lanes = np.arange(3)
    assert lanes[slices[0]].size == 0
    assert lanes[slices[2]].size == 0
    assert lanes[slices[3]].tolist() == [2]


def test_empty_input_and_negative_counts():
    assert lane_slices([]) == []
    with pytest.raises(ConfigurationError):
        lane_slices([1, -1])


def test_slices_partition_every_lane_exactly_once():
    counts = [3, 0, 5, 1, 2]
    slices = lane_slices(counts)
    seen = []
    for request_slice in slices:
        seen.extend(range(request_slice.start, request_slice.stop))
    assert seen == list(range(sum(counts)))
