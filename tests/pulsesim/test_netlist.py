"""Circuit construction rules and introspection."""

import pytest

from repro.cells.interconnect import Jtl, Merger, Splitter
from repro.errors import NetlistError
from repro.pulsesim import Circuit, Simulator


def test_duplicate_element_names_rejected():
    circuit = Circuit()
    circuit.add(Jtl("x"))
    with pytest.raises(NetlistError, match="duplicate"):
        circuit.add(Jtl("x"))


def test_element_cannot_join_two_circuits():
    c1, c2 = Circuit("a"), Circuit("b")
    cell = c1.add(Jtl("x"))
    with pytest.raises(NetlistError, match="already belongs"):
        c2.add(cell)


def test_lookup_by_name():
    circuit = Circuit()
    cell = circuit.add(Jtl("x"))
    assert circuit["x"] is cell
    with pytest.raises(NetlistError, match="no element"):
        circuit["missing"]


def test_connect_validates_ports():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    with pytest.raises(NetlistError):
        circuit.connect(a, "nope", b, "a")
    with pytest.raises(NetlistError):
        circuit.connect(a, "q", b, "nope")
    with pytest.raises(NetlistError):
        circuit.connect(a, "q", b, "a", delay=-1)


def test_connect_rejects_foreign_elements():
    c1, c2 = Circuit("a"), Circuit("b")
    a = c1.add(Jtl("a"))
    b = c2.add(Jtl("b"))
    with pytest.raises(NetlistError, match="does not belong"):
        c1.connect(a, "q", b, "a")


def test_fanout_reaches_all_sinks():
    circuit = Circuit()
    src = circuit.add(Jtl("src", delay=0))
    sinks = [circuit.add(Jtl(f"s{i}", delay=0)) for i in range(3)]
    probes = [circuit.probe(s, "q") for s in sinks]
    for sink in sinks:
        circuit.connect(src, "q", sink, "a")
    sim = Simulator(circuit)
    sim.schedule_input(src, "a", 5)
    sim.run()
    assert all(p.count() == 1 for p in probes)


def test_jj_count_sums_cells():
    circuit = Circuit()
    circuit.add(Jtl("a"))        # 2
    circuit.add(Splitter("s"))   # 3
    circuit.add(Merger("m"))     # 5
    assert circuit.jj_count == 10


def test_probe_validates_port():
    circuit = Circuit()
    cell = circuit.add(Jtl("a"))
    with pytest.raises(NetlistError):
        circuit.probe(cell, "nope")


def test_circuit_reset_clears_merger_state():
    circuit = Circuit()
    merger = circuit.add(Merger("m"))
    sim = Simulator(circuit)
    sim.schedule_input(merger, "a", 0)
    sim.schedule_input(merger, "b", 0)  # collides
    sim.run()
    assert merger.collisions == 1
    circuit.reset()
    assert merger.collisions == 0


def test_fanout_returns_empty_list_on_miss():
    circuit = Circuit()
    cell = circuit.add(Jtl("a"))
    assert circuit.fanout(cell, "q") == []
    assert isinstance(circuit.fanout(cell, "q"), list)


def test_wires_iterate_every_connection():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    split = circuit.add(Splitter("s"))
    b = circuit.add(Jtl("b"))
    circuit.connect(a, "q", split, "a")
    circuit.connect(split, "q1", b, "a")
    wires = circuit.wires
    assert len(wires) == 2
    assert list(circuit.iter_wires()) == wires
    assert circuit.wires_into(b, "a") == [wires[1]]


def test_wire_repr_names_endpoints_and_delay():
    circuit = Circuit()
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    wire = circuit.connect(a, "q", b, "a", delay=7)
    assert repr(wire) == "<Wire a.q -> b.a, 7 fs>"


def test_duplicate_probe_rejected():
    circuit = Circuit()
    cell = circuit.add(Jtl("a"))
    circuit.probe(cell, "q")
    with pytest.raises(NetlistError, match="already has a probe"):
        circuit.probe(cell, "q")


def test_distinct_probe_labels_allowed_on_one_port():
    from repro.pulsesim.probe import PulseRecorder

    circuit = Circuit()
    cell = circuit.add(Jtl("a"))
    first = circuit.probe(cell, "q", PulseRecorder("raw"))
    second = circuit.probe(cell, "q", PulseRecorder("decoded"))
    assert first is not second
    assert circuit.probed_ports() == [(cell, "q")]
