"""Shared Hypothesis strategies and runners for simulator conformance.

Two netlist generators live in this repo, on purpose:

* :func:`netlists` (here) — free-form layered DAGs that exploit the
  simulator's permissiveness (implicit fanout, arbitrary probe subsets)
  to stress engine paths a physical netlist never reaches;
* :func:`repro.verify.generate_spec` — lint-clean-by-construction
  circuits for the conformance harness; :func:`verify_specs` wraps it as
  a Hypothesis strategy so property tests can draw legal specs too.

Both the kernel-differential and the trace-transparency suites use
:func:`run_case` so "everything comparable about a run" is defined in
exactly one place (mirroring ``repro.verify.oracles.run_built``).
"""

from hypothesis import strategies as st

from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.cells.logic import FirstArrival, Inverter, LastArrival
from repro.cells.storage import Dff, Dff2, Ndro
from repro.cells.toggle import Tff, Tff2
from repro.pulsesim import Circuit, Simulator
from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.oracles import STATE_ATTRS

#: (factory, input ports, output ports).  LastArrival/FirstArrival have no
#: inline opcode, so drawing them exercises the generic-call path and the
#: non-monotonic drain mode alongside the compiled opcodes.
CELLS = [
    (Jtl, ("a",), ("q",)),
    (Splitter, ("a",), ("q1", "q2")),
    (Merger, ("a", "b"), ("q",)),
    (IdealMerger, ("a", "b"), ("q",)),
    (Ndro, ("set", "reset", "clk"), ("q",)),
    (Dff, ("d", "clk"), ("q",)),
    (Dff2, ("a", "c1", "c2"), ("y1", "y2")),
    (Tff, ("a",), ("q",)),
    (Tff2, ("a",), ("q1", "q2")),
    (Inverter, ("a", "clk"), ("q",)),
    (LastArrival, ("reset", "a", "b"), ("q",)),
    (FirstArrival, ("reset", "a", "b"), ("q",)),
]


@st.composite
def netlists(draw):
    """A random layered DAG plus stimulus: ``(build, stimulus)``.

    Returns a zero-argument ``build()`` so each kernel run gets an
    identical, freshly constructed circuit (cells are stateful objects —
    they cannot be shared between the two runs without a reset, and
    rebuilding also exercises compilation from scratch).
    """
    n_layers = draw(st.integers(1, 3))
    layer_specs = []  # per layer: list of (cell_index, per-input wiring)
    n_outputs = 2  # the entry splitter's q1/q2
    for _ in range(n_layers):
        width = draw(st.integers(1, 3))
        cells = []
        for _ in range(width):
            cell_index = draw(st.integers(0, len(CELLS) - 1))
            inputs = CELLS[cell_index][1]
            wiring = [
                (draw(st.integers(0, n_outputs - 1)),
                 draw(st.integers(0, 3)) * 500)  # wire delay in {0..1500}
                for _ in inputs
            ]
            cells.append((cell_index, wiring))
        layer_specs.append(cells)
        n_outputs += sum(len(CELLS[ci][2]) for ci, _ in cells)
    probe_mask = draw(st.integers(0, (1 << n_outputs) - 1))
    stimulus = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=25).map(
            lambda raw: [t * 1_000 for t in raw]  # many duplicate times
        )
    )

    def build():
        circuit = Circuit("differential")
        entry = circuit.add(Splitter("entry"))
        outputs = [(entry, "q1"), (entry, "q2")]
        for layer, cells in enumerate(layer_specs):
            for position, (cell_index, wiring) in enumerate(cells):
                factory, inputs, outs = CELLS[cell_index]
                cell = circuit.add(factory(f"c{layer}_{position}"))
                for port, (source_index, delay) in zip(inputs, wiring):
                    source, source_port = outputs[source_index]
                    circuit.connect(source, source_port, cell, port,
                                    delay=delay)
                outputs.extend((cell, out) for out in outs)
        probes = []
        for index, (element, port) in enumerate(outputs):
            if probe_mask >> index & 1 or index == len(outputs) - 1:
                probes.append(circuit.probe(element, port))
        return circuit, entry, probes

    return build, stimulus


@st.composite
def verify_specs(draw, profile_name="smoke"):
    """A lint-clean :class:`repro.verify.NetlistSpec` via the harness's
    own generator, driven by a Hypothesis-drawn substream index."""
    seed = draw(st.integers(0, 2**32 - 1))
    example = draw(st.integers(0, 9999))
    return generate_spec(example_rng(seed, example), profile(profile_name))


def run_case(build, stimulus, kernel, trace_factory=None):
    """Run one generated case and snapshot everything comparable.

    ``trace_factory`` (circuit -> session), when given, attaches a trace
    session before the run; the returned dict is identical in shape either
    way so traced and untraced runs compare with ``==``.
    """
    circuit, entry, probes = build()
    session = trace_factory(circuit) if trace_factory is not None else None
    sim = Simulator(circuit, kernel=kernel, trace=session)
    # Mix single-pulse scheduling with the batched path.
    for time in stimulus[:3]:
        sim.schedule_input(entry, "a", time)
    sim.schedule_train(entry, "a", stimulus[3:])
    stats = sim.run()
    assert stats.wall_s >= 0.0  # the one non-deterministic stat: not compared
    if session is not None:
        assert sum(s.cohort for s in session.health) == stats.events_processed
    state = [
        tuple(getattr(element, attr, None) for attr in STATE_ATTRS)
        for element in circuit.elements
    ]
    return {
        "recordings": [list(probe.times) for probe in probes],
        "events": stats.events_processed,
        "pulses": stats.pulses_emitted,
        "end_time": stats.end_time,
        "max_queue_depth": stats.max_queue_depth,
        "now": sim.now,
        "state": state,
    }
