"""Shared Hypothesis strategies and runners for simulator conformance.

Two netlist generators live in this repo, on purpose:

* :func:`netlists` (here) — free-form layered DAGs that exploit the
  simulator's permissiveness (implicit fanout, arbitrary probe subsets)
  to stress engine paths a physical netlist never reaches;
* :func:`repro.verify.generate_spec` — lint-clean-by-construction
  circuits for the conformance harness; :func:`verify_specs` wraps it as
  a Hypothesis strategy so property tests can draw legal specs too.

A third generator, :func:`repro.synth.random_spec`, draws *dataflow*
specs (programs, not netlists) for the synthesis frontend;
:func:`dataflow_specs` wraps it the same way.

Both the kernel-differential and the trace-transparency suites use
:func:`run_case` so "everything comparable about a run" is defined in
exactly one place (mirroring ``repro.verify.oracles.run_built``).
"""

from hypothesis import strategies as st

from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.cells.logic import FirstArrival, Inverter, LastArrival
from repro.cells.storage import Dff, Dff2, Ndro
from repro.cells.toggle import Tff, Tff2
from repro.encoding.epoch import EpochSpec
from repro.pulsesim import Circuit, Simulator
from repro.synth.generator import random_spec, spec_rng
from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.oracles import STATE_ATTRS

#: Lanes used by the batch-vs-sealed property suites (kept small: every
#: lane is re-run under the scalar kernel for comparison).
BATCH_LANES = 4

#: (factory, input ports, output ports).  LastArrival/FirstArrival have no
#: inline opcode, so drawing them exercises the generic-call path and the
#: non-monotonic drain mode alongside the compiled opcodes.
CELLS = [
    (Jtl, ("a",), ("q",)),
    (Splitter, ("a",), ("q1", "q2")),
    (Merger, ("a", "b"), ("q",)),
    (IdealMerger, ("a", "b"), ("q",)),
    (Ndro, ("set", "reset", "clk"), ("q",)),
    (Dff, ("d", "clk"), ("q",)),
    (Dff2, ("a", "c1", "c2"), ("y1", "y2")),
    (Tff, ("a",), ("q",)),
    (Tff2, ("a",), ("q1", "q2")),
    (Inverter, ("a", "clk"), ("q",)),
    (LastArrival, ("reset", "a", "b"), ("q",)),
    (FirstArrival, ("reset", "a", "b"), ("q",)),
]


@st.composite
def netlists(draw):
    """A random layered DAG plus stimulus: ``(build, stimulus)``.

    Returns a zero-argument ``build()`` so each kernel run gets an
    identical, freshly constructed circuit (cells are stateful objects —
    they cannot be shared between the two runs without a reset, and
    rebuilding also exercises compilation from scratch).
    """
    n_layers = draw(st.integers(1, 3))
    layer_specs = []  # per layer: list of (cell_index, per-input wiring)
    n_outputs = 2  # the entry splitter's q1/q2
    for _ in range(n_layers):
        width = draw(st.integers(1, 3))
        cells = []
        for _ in range(width):
            cell_index = draw(st.integers(0, len(CELLS) - 1))
            inputs = CELLS[cell_index][1]
            wiring = [
                (draw(st.integers(0, n_outputs - 1)),
                 draw(st.integers(0, 3)) * 500)  # wire delay in {0..1500}
                for _ in inputs
            ]
            cells.append((cell_index, wiring))
        layer_specs.append(cells)
        n_outputs += sum(len(CELLS[ci][2]) for ci, _ in cells)
    probe_mask = draw(st.integers(0, (1 << n_outputs) - 1))
    stimulus = draw(
        st.lists(st.integers(0, 40), min_size=1, max_size=25).map(
            lambda raw: [t * 1_000 for t in raw]  # many duplicate times
        )
    )

    def build():
        circuit = Circuit("differential")
        entry = circuit.add(Splitter("entry"))
        outputs = [(entry, "q1"), (entry, "q2")]
        for layer, cells in enumerate(layer_specs):
            for position, (cell_index, wiring) in enumerate(cells):
                factory, inputs, outs = CELLS[cell_index]
                cell = circuit.add(factory(f"c{layer}_{position}"))
                for port, (source_index, delay) in zip(inputs, wiring):
                    source, source_port = outputs[source_index]
                    circuit.connect(source, source_port, cell, port,
                                    delay=delay)
                outputs.extend((cell, out) for out in outs)
        probes = []
        for index, (element, port) in enumerate(outputs):
            if probe_mask >> index & 1 or index == len(outputs) - 1:
                probes.append(circuit.probe(element, port))
        return circuit, entry, probes

    return build, stimulus


@st.composite
def verify_specs(draw, profile_name="smoke"):
    """A lint-clean :class:`repro.verify.NetlistSpec` via the harness's
    own generator, driven by a Hypothesis-drawn substream index."""
    seed = draw(st.integers(0, 2**32 - 1))
    example = draw(st.integers(0, 9999))
    return generate_spec(example_rng(seed, example), profile(profile_name))


@st.composite
def dataflow_specs(draw, max_nodes=7):
    """A valid :class:`repro.synth.DataflowSpec` via the synthesis
    frontend's own generator, driven by a Hypothesis-drawn substream
    index (mirrors :func:`verify_specs`)."""
    seed = draw(st.integers(0, 2**32 - 1))
    example = draw(st.integers(0, 9999))
    return random_spec(spec_rng(seed, example), max_nodes=max_nodes)


def run_case(build, stimulus, kernel, trace_factory=None):
    """Run one generated case and snapshot everything comparable.

    ``trace_factory`` (circuit -> session), when given, attaches a trace
    session before the run; the returned dict is identical in shape either
    way so traced and untraced runs compare with ``==``.
    """
    circuit, entry, probes = build()
    session = trace_factory(circuit) if trace_factory is not None else None
    sim = Simulator(circuit, kernel=kernel, trace=session)
    # Mix single-pulse scheduling with the batched path.
    for time in stimulus[:3]:
        sim.schedule_input(entry, "a", time)
    sim.schedule_train(entry, "a", stimulus[3:])
    stats = sim.run()
    assert stats.wall_s >= 0.0  # the one non-deterministic stat: not compared
    if session is not None:
        assert sum(s.cohort for s in session.health) == stats.events_processed
    state = [
        tuple(getattr(element, attr, None) for attr in STATE_ATTRS)
        for element in circuit.elements
    ]
    return {
        "recordings": [list(probe.times) for probe in probes],
        "events": stats.events_processed,
        "pulses": stats.pulses_emitted,
        "end_time": stats.end_time,
        "max_queue_depth": stats.max_queue_depth,
        "now": sim.now,
        "state": state,
    }


def lane_trains(stimulus, batch=BATCH_LANES):
    """Per-lane stimulus prefixes: lane ``k`` drops the last ``k`` pulses.

    Distinct prefixes make lane masks diverge at the first stateful cell,
    which is exactly what the batch kernel's mask algebra must survive.
    """
    return [
        list(stimulus[: max(0, len(stimulus) - lane)]) for lane in range(batch)
    ]


def scalar_comparable(result):
    """Project a :func:`run_case` result onto the batch-comparable keys.

    Recordings are sorted (the batch kernel's analytic mode defines no
    emission order within a lane) and the master-queue-only stats
    (``max_queue_depth``, ``now``) are dropped.
    """
    return {
        "recordings": [sorted(times) for times in result["recordings"]],
        "events": result["events"],
        "pulses": result["pulses"],
        "end_time": result["end_time"],
        "state": result["state"],
    }


def run_case_batch(build, stimulus, batch=BATCH_LANES):
    """Run per-lane stimulus prefixes under the batch kernel.

    Returns one dict per lane, shaped like :func:`scalar_comparable` of a
    scalar :func:`run_case` on :func:`lane_trains`'s matching prefix.
    """
    from repro.pulsesim.batch import BatchSimulator

    circuit, entry, probes = build()
    tap_ports = {
        id(tap.probe): (tap.source, port)
        for (_eid, port), taps in circuit._taps.items()
        for tap in taps
    }
    sim = BatchSimulator(circuit, batch=batch)
    sim.schedule_lane_trains(entry, "a", lane_trains(stimulus, batch))
    stats = sim.run()
    lanes = []
    for lane in range(batch):
        lanes.append({
            "recordings": [
                sim.port_times(*tap_ports[id(probe)], lane)
                for probe in probes
            ],
            "events": int(stats.events[lane]),
            "pulses": int(stats.pulses[lane]),
            "end_time": int(stats.end_time[lane]),
            "state": [
                tuple(
                    sim.element_attr(element, attr, lane, None)
                    for attr in STATE_ATTRS
                )
                for element in circuit.elements
            ],
        })
    return lanes


@st.composite
def codec_cases(draw):
    """``(EpochSpec, value, epoch_index)`` for codec round-trip properties.

    Values are drawn on the representable grid ``k / n_max`` (exact in
    binary floating point for bits <= 10), so ``encode -> decode`` must be
    lossless; ``slot_fs >= 2`` leaves room for the full-scale sentinel at
    ``end - 1``.  Used by the scalar encode -> JTL-sim -> decode round
    trip and reused by the batch-kernel differential suite.
    """
    bits = draw(st.integers(1, 8))
    slot_fs = draw(st.sampled_from([2, 10, 500, 12_000]))
    epoch = EpochSpec(bits=bits, slot_fs=slot_fs)
    value = draw(st.integers(0, epoch.n_max)) / epoch.n_max
    epoch_index = draw(st.integers(0, 5))
    return epoch, value, epoch_index


def jtl_pipe(n_stages=2, stage_delay=40, wire_delay=10):
    """A probed JTL pipeline: ``(circuit, entry, probe, latency_fs)``.

    The canonical transport fixture for codec round trips: pulses arrive
    at the probe exactly ``latency_fs`` after injection, so decoding uses
    ``time - latency_fs``.
    """
    circuit = Circuit("pipe")
    stages = [circuit.add(Jtl(f"j{i}", delay=stage_delay)) for i in range(n_stages)]
    for left, right in zip(stages, stages[1:]):
        circuit.connect(left, "q", right, "a", delay=wire_delay)
    probe = circuit.probe(stages[-1], "q")
    latency = n_stages * stage_delay + (n_stages - 1) * wire_delay
    return circuit, stages[0], probe, latency
