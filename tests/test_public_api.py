"""The top-level package exposes a coherent public API."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_from_docstring():
    epoch = repro.EpochSpec(bits=6)
    mult = repro.UnipolarMultiplier(epoch)
    assert abs(mult.multiply(0.5, 0.75) - 0.375) <= 1 / 64


def test_error_hierarchy():
    assert issubclass(repro.SimulationError, repro.ReproError)
    assert issubclass(repro.NetlistError, repro.ReproError)
    assert issubclass(repro.EncodingError, repro.ReproError)
    assert issubclass(repro.ConfigurationError, repro.ReproError)
