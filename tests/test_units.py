"""Unit-conversion helpers."""

import pytest

from repro import units


def test_ps_roundtrip():
    assert units.ps(9) == 9_000
    assert units.to_ps(units.ps(9)) == 9.0


def test_ns_and_us():
    assert units.ns(1) == 1_000_000
    assert units.us(2) == 2_000_000_000
    assert units.to_ns(units.ns(3.5)) == pytest.approx(3.5)
    assert units.to_us(units.us(0.25)) == pytest.approx(0.25)


def test_rounding_to_nearest_femtosecond():
    assert units.ps(0.0004) == 0
    assert units.ps(0.0006) == 1


def test_frequency_of_9ps_is_111ghz():
    assert units.frequency_ghz(units.ps(9)) == pytest.approx(111.11, abs=0.01)


def test_period_of_48ghz():
    assert units.period_fs(48.0) == pytest.approx(20833, abs=1)


def test_frequency_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        units.frequency_ghz(0)
    with pytest.raises(ValueError):
        units.period_fs(-1)


def test_to_seconds():
    assert units.to_seconds(units.ns(1)) == pytest.approx(1e-9)


def test_power_conversions_roundtrip():
    assert units.to_nw(units.nw(68)) == pytest.approx(68)
    assert units.to_uw(units.uw(8.45)) == pytest.approx(8.45)
    assert units.to_mw(units.mw(4.8)) == pytest.approx(4.8)


def test_gops():
    assert units.gops(48e9) == pytest.approx(48.0)
