"""usfq-shard CLI: exit codes, JSON output, and the run-check contract."""

import json

import pytest

from repro.shard.cli import main
from repro.shard.partition import ShardPlan


def test_list_blocks(capsys):
    assert main(["--list-blocks"]) == 0
    out = capsys.readouterr().out
    assert "pnm" in out and "cgra-fabric" in out


def test_no_command_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_unknown_block_exits_2(capsys):
    assert main(["plan", "nosuchblock"]) == 2
    assert "unknown block" in capsys.readouterr().err


def test_too_many_shards_exits_2(capsys):
    assert main(["plan", "pnm", "--shards", "999"]) == 2
    assert "usfq-shard:" in capsys.readouterr().err


def test_partition_emits_a_loadable_plan(capsys, tmp_path):
    assert main(["partition", "pnm", "--shards", "2"]) == 0
    plan = ShardPlan.from_json(json.loads(capsys.readouterr().out))
    assert plan.num_shards == 2 and plan.cuts

    target = tmp_path / "plan.json"
    assert main(["partition", "pnm", "--shards", "2", "--output", str(target)]) == 0
    on_disk = ShardPlan.from_json(json.loads(target.read_text()))
    assert on_disk.to_json() == plan.to_json()


def test_plan_summary_text_and_json(capsys):
    assert main(["plan", "pnm", "--shards", "2"]) == 0
    text = capsys.readouterr().out
    assert "lookahead" in text and "shard 1" in text

    assert main(["plan", "pnm", "--shards", "2", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["num_shards"] == 2
    assert summary["lookahead_fs"] > 0
    assert len(summary["jj_per_shard"]) == 2


def test_run_checks_equivalence(capsys):
    assert main(["run", "pnm", "--shards", "2", "--pulses", "8"]) == 0
    assert "IDENTICAL" in capsys.readouterr().out


def test_run_json_report(capsys):
    assert main(
        ["run", "pnm", "--shards", "2", "--pulses", "8", "--jobs", "2", "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["identical"] is True
    assert report["sharded"]["jobs"] == 2
    assert report["sharded"]["events"] == report["monolithic"]["events"]


def test_run_no_check_skips_the_reference(capsys):
    assert main(
        ["run", "pnm", "--shards", "2", "--pulses", "4", "--no-check", "--json"]
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["check"] is False
    assert "monolithic" not in report and "identical" not in report


def test_run_rejects_bad_jobs(capsys):
    assert main(["run", "pnm", "--jobs", "bogus"]) == 2
    assert "jobs" in capsys.readouterr().err
