"""Property: any lint-clean netlist, cut any K ways, partitions losslessly.

The conformance harness's own generator supplies the circuits (so every
draw is lint-clean by construction, including seeded ``DropChannel``
fault cells), Hypothesis supplies the shard count, and the invariant is
the tentpole guarantee: the conservative-sync partitioned run is
bit-identical to a monolithic sealed run of the same NoC-augmented
circuit on every probed port.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.pulsesim import Simulator
from repro.shard import ShardSimulator, build_noc_circuit, plan_partition
from repro.shard.engine import _freeze
from repro.verify import spec as specmod
from repro.verify.oracles import (
    STATE_ATTRS,
    TIE_ORDER_SENSITIVE,
    oracle_shard_differential,
)
from repro.verify.spec import CellSpec, NetlistSpec, WireSpec, build
from tests.strategies import verify_specs


def _differential(spec, num_shards, jobs):
    """Assert the K-way partitioned run matches the monolithic run."""
    base = build(spec)
    num_shards = min(num_shards, len(base.circuit.elements))
    plan = plan_partition(base.circuit, num_shards,
                          entry_points=[(base.entry, "a")])

    mono_circuit = build_noc_circuit(base.circuit, plan)
    mono = Simulator(mono_circuit, kernel="sealed")
    mono.schedule_train(mono_circuit[specmod.ENTRY_NAME], "a",
                        list(spec.stimulus))
    stats = mono.run()
    mono_recordings = {
        tap.probe.label: list(tap.probe.times)
        for taps in mono_circuit._taps.values()
        for tap in taps
    }

    with ShardSimulator(base.circuit, plan, jobs=jobs) as sharded:
        sharded.schedule_train(specmod.ENTRY_NAME, "a", list(spec.stimulus))
        merged = sharded.run()
        assert sharded.recordings() == mono_recordings
        assert merged.events_processed == stats.events_processed
        assert merged.pulses_emitted == stats.pulses_emitted
        assert sharded.now == mono.now
        shard_state = sharded.state(STATE_ATTRS)
    for element in mono_circuit.elements:
        frozen = tuple(
            _freeze(getattr(element, attr, None)) for attr in STATE_ATTRS
        )
        assert shard_state[element.name] == frozen


@given(spec=verify_specs(), num_shards=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_random_cut_of_random_netlist_is_lossless(spec, num_shards):
    assume(spec.cells)
    assume(not any(
        cell.kind in TIE_ORDER_SENSITIVE or cell.kind == "JitterChannel"
        for cell in spec.cells
    ))
    _differential(spec, num_shards, jobs=1)


@given(spec=verify_specs())
@settings(max_examples=15, deadline=None)
def test_the_registered_oracle_agrees(spec):
    # Same invariant through the production entry point (K=2, two real
    # worker processes): applicable specs must pass, never fail.
    result = oracle_shard_differential(spec)
    assert result.ok or not result.applicable


def test_seeded_fault_channels_survive_partitioning():
    # Two lossy channels land in different shards; each worker re-seeds
    # its own RNG stream from the exported params, so the drop pattern —
    # and therefore every downstream timeline — is reproduced exactly.
    spec = NetlistSpec(
        cells=(
            CellSpec("DropChannel", (WireSpec(0),),
                     params=(("drop_rate", 0.5), ("seed", 11))),
            CellSpec("Jtl", (WireSpec(2, delay=1_000),)),
            CellSpec("DropChannel", (WireSpec(3),),
                     params=(("drop_rate", 0.25), ("seed", 7))),
            CellSpec("Tff", (WireSpec(4, delay=500),)),
        ),
        stimulus=tuple(range(0, 120_000, 4_000)),
    )
    for num_shards in (2, 3, 4):
        _differential(spec, num_shards, jobs=1)
    _differential(spec, 2, jobs=2)  # and across real process boundaries
