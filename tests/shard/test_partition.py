"""repro.shard.partition: plan shape, determinism, NoC-circuit legality."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint.blocks import build_shipped_block
from repro.pulsesim.export import import_netlist, netlist_description
from repro.shard.partition import (
    LinkSpec,
    ShardPlan,
    build_noc_circuit,
    build_noc_description,
    plan_partition,
    shard_description,
)


def _pnm():
    built = build_shipped_block("pnm")
    for element, port in built.observed_outputs:
        built.circuit.probe(element, port)
    return built


def _plan(num_shards=2, link=None):
    built = _pnm()
    return built, plan_partition(
        built.circuit, num_shards, link=link, entry_points=built.entry_points
    )


def test_single_shard_plan_has_no_cuts():
    built, plan = _plan(num_shards=1)
    assert plan.num_shards == 1
    assert plan.cuts == []
    assert plan.lookahead_fs is None
    assert set(plan.assignment.values()) == {0}
    assert len(plan.assignment) == len(built.circuit.elements)


def test_plan_covers_every_cell_with_nonempty_balanced_shards():
    built, plan = _plan(num_shards=3)
    assert sorted(plan.assignment) == sorted(
        element.name for element in built.circuit.elements
    )
    for shard in range(3):
        assert plan.cells_of(shard)
    # Weight balance: no shard hoards more than ~1.5x its fair JJ share.
    total = sum(plan.jj_by_shard)
    assert max(plan.jj_by_shard) <= total / 3 * 1.5 + max(
        max(1, element.jj_count) for element in built.circuit.elements
    )


def test_cuts_carry_positive_lookahead_and_traffic_bounds():
    _built, plan = _plan(num_shards=2)
    assert plan.cuts
    assert plan.lookahead_fs is not None and plan.lookahead_fs > 0
    for cut in plan.cuts:
        assert cut.source_shard != cut.sink_shard
        assert cut.hops >= 1
        assert cut.traffic_hi >= 0
        assert plan.link.min_latency_fs(cut.hops) + cut.delay_fs >= plan.lookahead_fs


def test_planning_is_deterministic():
    _b1, first = _plan(num_shards=4)
    _b2, second = _plan(num_shards=4)
    assert first.to_json() == second.to_json()


def test_plan_json_round_trip():
    _built, plan = _plan(num_shards=2, link=LinkSpec(fifo_depth=16))
    restored = ShardPlan.from_json(json.loads(plan.dumps()))
    assert restored.to_json() == plan.to_json()
    assert restored.link.fifo_depth == 16
    assert restored.lookahead_fs == plan.lookahead_fs


def test_custom_link_spec_moves_the_lookahead():
    _slow_built, slow = _plan(num_shards=2)
    _fast_built, fast = _plan(
        num_shards=2, link=LinkSpec(serialization_fs=1, hop_latency_fs=1)
    )
    assert fast.lookahead_fs < slow.lookahead_fs


@pytest.mark.parametrize("bad", [0, -1, 12])  # pnm has 11 cells
def test_invalid_shard_counts_are_rejected(bad):
    built = _pnm()
    with pytest.raises(ConfigurationError):
        plan_partition(built.circuit, bad)


def test_noc_description_is_canonical_and_importable():
    built, plan = _plan(num_shards=2)
    description = build_noc_description(built.circuit, plan)
    # Canonical: importing and re-exporting is byte-stable.
    assert netlist_description(import_netlist(description)) == description
    kinds = [cell["type"] for cell in description["cells"]]
    assert kinds.count("NocLink") == len(plan.cuts)


def test_noc_circuit_inserts_links_on_every_cut():
    built, plan = _plan(num_shards=2)
    circuit = build_noc_circuit(built.circuit, plan)
    for cut in plan.cuts:
        link = circuit[cut.link]
        assert type(link).__name__ == "NocLink"
        assert link.delay == plan.link.min_latency_fs(cut.hops)
    # Probes survive the transform.
    original = {
        tap.probe.label for taps in built.circuit._taps.values() for tap in taps
    }
    carried = {tap.probe.label for taps in circuit._taps.values() for tap in taps}
    assert carried == original


def test_shard_descriptions_tile_the_noc_circuit():
    built, plan = _plan(num_shards=3)
    description = build_noc_description(built.circuit, plan)
    names = []
    wires = 0
    for shard in range(plan.num_shards):
        piece = shard_description(description, plan, shard)
        names.extend(cell["name"] for cell in piece["cells"])
        wires += len(piece["wires"])
        assert piece["name"].endswith(f"/shard{shard}")
        circuit = import_netlist(piece)  # every piece is itself legal
        assert len(circuit.elements) == len(piece["cells"])
    assert sorted(names) == sorted(cell["name"] for cell in description["cells"])
    # Exactly the cut-crossing wires are absent from the union of pieces
    # (each cut contributes its link's far-side wire).
    assert wires == len(description["wires"]) - len(plan.cuts)
