"""repro.shard.engine: conservative-sync equivalence and the host API."""

import pytest

from repro.cells.interconnect import Jtl, Splitter
from repro.cells.toggle import Tff
from repro.errors import ConfigurationError, SimulationError
from repro.pulsesim import Circuit, Simulator
from repro.shard.engine import ShardSimulator
from repro.shard.partition import LinkSpec, build_noc_circuit, plan_partition

STIMULUS = [0, 500, 500, 7_000, 7_000, 31_000, 44_000, 90_000]


def _chain():
    """An 8-cell Jtl/Tff chain with probes sprinkled along it."""
    circuit = Circuit("chain")
    entry = circuit.add(Splitter("entry"))
    previous, port = entry, "q1"
    for index in range(7):
        factory = Tff if index % 3 == 2 else Jtl
        cell = circuit.add(factory(f"c{index}"))
        circuit.connect(previous, port, cell, "a", delay=137 * (index + 1))
        previous, port = cell, "q"
    circuit.probe(entry, "q2")
    circuit.probe(circuit["c3"], "q")
    circuit.probe(previous, port)
    return circuit


def _monolithic_side(circuit, plan):
    mono = build_noc_circuit(circuit, plan)
    sim = Simulator(mono, kernel="sealed")
    for time in STIMULUS[:3]:
        sim.schedule_input(mono["entry"], "a", time)
    sim.schedule_train(mono["entry"], "a", STIMULUS[3:])
    stats = sim.run()
    recordings = {
        tap.probe.label: list(tap.probe.times)
        for taps in mono._taps.values()
        for tap in taps
    }
    return stats, sim.now, recordings


def _sharded_side(circuit, plan, jobs):
    with ShardSimulator(circuit, plan, jobs=jobs) as sharded:
        for time in STIMULUS[:3]:
            sharded.schedule_input("entry", "a", time)
        sharded.schedule_train("entry", "a", STIMULUS[3:])
        stats = sharded.run()
        return stats, sharded.now, sharded.recordings(), sharded.windows


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("num_shards", [2, 3])
def test_partitioned_run_matches_monolithic(jobs, num_shards):
    circuit = _chain()
    plan = plan_partition(circuit, num_shards)
    mono_stats, mono_now, mono_recordings = _monolithic_side(circuit, plan)
    stats, now, recordings, windows = _sharded_side(_chain(), plan, jobs)
    assert recordings == mono_recordings
    assert stats.events_processed == mono_stats.events_processed
    assert stats.pulses_emitted == mono_stats.pulses_emitted
    assert stats.end_time == mono_stats.end_time
    assert now == mono_now
    assert windows >= 1


def test_single_shard_runs_in_one_window():
    circuit = _chain()
    plan = plan_partition(circuit, 1)
    stats, _now, recordings, windows = _sharded_side(_chain(), plan, jobs=1)
    assert windows == 1  # no cuts: nothing bounds the horizon
    assert stats.pulses_emitted > 0
    assert all(recordings.values())


def test_until_caps_the_merged_clock():
    circuit = _chain()
    plan = plan_partition(circuit, 2)
    with ShardSimulator(_chain(), plan, jobs=1) as sharded:
        sharded.schedule_train("entry", "a", STIMULUS)
        stats = sharded.run(until=10_000)
    assert stats.end_time == 10_000
    assert sharded.now <= 10_000


def test_noc_drops_are_counted_per_link():
    circuit = _chain()
    # A depth-1 FIFO with a huge serialization delay backs up immediately.
    plan = plan_partition(
        circuit, 2, link=LinkSpec(serialization_fs=200_000, fifo_depth=1)
    )
    with ShardSimulator(_chain(), plan, jobs=1) as sharded:
        sharded.schedule_train("entry", "a", STIMULUS)
        sharded.run()
        drops = sharded.noc_drops()
    assert set(drops) == {cut.link for cut in plan.cuts}
    assert sum(drops.values()) > 0


def test_stimulus_validation():
    plan = plan_partition(_chain(), 2)
    sharded = ShardSimulator(_chain(), plan, jobs=1)
    try:
        with pytest.raises(ConfigurationError):
            sharded.schedule_input("nope", "a", 0)
        with pytest.raises(ConfigurationError):
            sharded.schedule_input("entry", "nope", 0)
        with pytest.raises(SimulationError):
            sharded.schedule_input("entry", "a", -1)
        sharded.schedule_input("entry", "a", 0)
        sharded.run()
        with pytest.raises(SimulationError):
            sharded.schedule_input("entry", "a", 1)  # single-shot engine
        with pytest.raises(SimulationError):
            sharded.run()
    finally:
        sharded.close()
    sharded.close()  # idempotent


def test_jobs_auto_resolves():
    plan = plan_partition(_chain(), 2)
    with ShardSimulator(_chain(), plan, jobs="auto") as sharded:
        assert sharded.jobs >= 1
    with pytest.raises(ConfigurationError):
        ShardSimulator(_chain(), plan, jobs="many")


def test_state_merges_across_shards():
    circuit = _chain()
    plan = plan_partition(circuit, 2)
    mono = build_noc_circuit(circuit, plan)
    sim = Simulator(mono, kernel="sealed")
    sim.schedule_train(mono["entry"], "a", STIMULUS)
    sim.run()
    mono_state = {
        element.name: getattr(element, "state", None)
        for element in mono.elements
        if type(element).__name__ == "Tff"
    }
    with ShardSimulator(_chain(), plan, jobs=1) as sharded:
        sharded.schedule_train("entry", "a", STIMULUS)
        sharded.run()
        state = sharded.state(("state",))
    tff_state = {
        name: frozen[0] for name, frozen in state.items() if name in mono_state
    }
    assert tff_state == mono_state
