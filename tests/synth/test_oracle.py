"""The synth-differential oracle: registration, teeth, and corpus replay."""

from repro.synth import compile_spec, random_spec
from repro.verify.corpus import corpus_entry, replay_entry
from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.oracles import ORACLES, oracle_synth_differential, run_oracle
from repro.verify.spec import CellSpec, NetlistSpec, WireSpec


def _netlist_spec(example=0):
    return generate_spec(example_rng(0, example), profile("smoke"))


def test_registered_as_the_thirteenth_oracle():
    assert len(ORACLES) == 13
    assert ORACLES["synth-differential"] is oracle_synth_differential
    # Canonical order keeps the two most expensive oracles (soundness
    # sweep, process-spawning shard differential) at the very end.
    assert list(ORACLES).index("synth-differential") == len(ORACLES) - 3


def test_passes_on_campaign_specs():
    for example in range(5):
        result = run_oracle("synth-differential", _netlist_spec(example))
        assert result.oracle == "synth-differential"
        assert result.applicable
        assert result.ok, result.detail


def test_dataflow_spec_is_derived_from_the_netlist_spec_key():
    spec = _netlist_spec()
    first = oracle_synth_differential(spec)
    second = oracle_synth_differential(spec)
    assert first == second  # content-addressed: fully deterministic
    other = _netlist_spec(example=1)
    assert spec.key() != other.key()
    assert first.detail != oracle_synth_differential(other).detail


def test_oracle_has_teeth_against_a_decode_defect(monkeypatch):
    # Corrupt the compiled program's expected levels: the oracle must
    # notice the simulation no longer matches the reference evaluation.
    import repro.verify.oracles as oracles_module

    real_compile = compile_spec

    def sabotaged(spec, **kwargs):
        import dataclasses

        program = real_compile(spec, **kwargs)
        port = program.outputs[0]
        program.outputs[0] = dataclasses.replace(
            port, expected_level=port.expected_level + 1
        )
        return program

    monkeypatch.setattr("repro.synth.compile_spec", sabotaged)
    result = oracle_synth_differential(_netlist_spec())
    assert not result.ok
    assert "decoded" in result.detail


def test_corpus_replay_reaches_the_synth_oracle():
    spec = NetlistSpec(cells=(CellSpec("Jtl", (WireSpec(0),)),),
                       stimulus=(0, 4_000))
    entry = corpus_entry("synth-differential", "", spec)
    result = replay_entry(entry)
    assert result.oracle == "synth-differential"
    assert result.ok
