"""Golden lock: the committed example specs compile byte-identically,
lint clean, carry analyzer proofs, and simulate to the reference levels
on both kernels.

Regenerate a golden after an intentional emission change with::

    python -m repro.synth compile examples/specs/<name>.json --json \
        --out tests/synth/golden/<name>.json
"""

from pathlib import Path

import pytest

from repro.synth import analyze_program, compile_json, lint_program

REPO = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO / "examples" / "specs"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

NAMES = sorted(path.stem for path in SPEC_DIR.glob("*.json"))


def _program(name):
    return compile_json((SPEC_DIR / f"{name}.json").read_text())


def test_the_example_corpus_is_present():
    assert len(NAMES) >= 5
    assert NAMES == sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))


@pytest.mark.parametrize("name", NAMES)
def test_compile_json_is_byte_identical_to_the_golden(name):
    got = _program(name).to_json()
    assert got == (GOLDEN_DIR / f"{name}.json").read_text()


@pytest.mark.parametrize("name", NAMES)
def test_recompilation_is_deterministic(name):
    assert _program(name).to_json() == _program(name).to_json()


@pytest.mark.parametrize("name", NAMES)
def test_golden_lints_clean(name):
    report = lint_program(_program(name))
    assert report.diagnostics == []


@pytest.mark.parametrize("name", NAMES)
def test_golden_passes_proof_mode_analysis(name):
    analysis = analyze_program(_program(name))
    stats = analysis.report.stats
    assert stats["mergers_proved"] == stats["mergers_checked"]
    assert analysis.report.ok


@pytest.mark.parametrize("name", NAMES)
def test_golden_passes_stimulus_mode_analysis(name):
    program = _program(name)
    analysis = analyze_program(program, proof_mode=False)
    assert analysis.report.ok


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("kernel", ["reference", "sealed"])
def test_golden_simulates_to_the_reference_levels(name, kernel):
    program = _program(name)
    expected = {port.ref: port.expected_level for port in program.outputs}
    outcome = program.simulate(kernel=kernel)
    assert outcome.levels == expected
    assert outcome.collisions == 0
