"""DataflowSpec validation: round trips, keys, and every rejection path."""

import json

import pytest

from repro.errors import SynthesisError
from repro.synth import DataflowSpec, NodeSpec, dataflow_spec, spec_from_json, validate_spec



def _spec(nodes, outputs, bits=3, slot_fs=None, name="t"):
    """Build-and-validate from NodeSpec objects (dataflow_spec takes dicts)."""
    spec = DataflowSpec(name=name, bits=bits, nodes=tuple(nodes),
                        outputs=tuple(outputs), slot_fs=slot_fs)
    validate_spec(spec)
    return spec


def _mul_chain(bits=3):
    return [
        NodeSpec(id="x", op="const", encoding="stream", level=5),
        NodeSpec(id="w", op="const", encoding="rl", level=3),
        NodeSpec(id="p", op="mul", args=("x", "w")),
    ]


def test_round_trip_and_key_stability():
    spec = _spec(_mul_chain(), ["p"])
    doc = spec.to_json()
    again = DataflowSpec.from_json(doc)
    assert again == spec
    assert again.key() == spec.key()
    # key is content-addressed: byte-identical canonical JSON.
    assert spec_from_json(json.dumps(doc)).key() == spec.key()


def test_dataflow_spec_dict_constructor_matches_nodespec_form():
    via_dicts = dataflow_spec("t", 3, [
        {"id": "x", "op": "const", "encoding": "stream", "level": 5},
        {"id": "w", "op": "const", "encoding": "rl", "level": 3},
        {"id": "p", "op": "mul", "args": ["x", "w"]},
    ], ["p"])
    assert via_dicts == _spec(_mul_chain(), ["p"])


def test_key_changes_with_content():
    base = _spec(_mul_chain(), ["p"])
    bumped = _spec(
        [
            NodeSpec(id="x", op="const", encoding="stream", level=6),
            NodeSpec(id="w", op="const", encoding="rl", level=3),
            NodeSpec(id="p", op="mul", args=("x", "w")),
        ],
        ["p"],
    )
    assert base.key() != bumped.key()


def test_n_max():
    assert _spec(_mul_chain(), ["p"], bits=3).n_max == 8


@pytest.mark.parametrize("bad_id", ["", "1x", "a-b", "a b", "a__b", "epoch"])
def test_bad_node_ids_rejected(bad_id):
    with pytest.raises(SynthesisError):
        _spec(
            [NodeSpec(id=bad_id, op="const", encoding="stream", level=1)],
            [bad_id],
        )


def test_unknown_op_and_encoding_rejected():
    with pytest.raises(SynthesisError):
        _spec([NodeSpec(id="x", op="xor", args=())], ["x"])
    with pytest.raises(SynthesisError):
        _spec([NodeSpec(id="x", op="const", encoding="ternary", level=1)],
              ["x"])


def test_const_level_range():
    with pytest.raises(SynthesisError):
        _spec([NodeSpec(id="x", op="const", encoding="stream", level=9)],
              ["x"], bits=3)
    with pytest.raises(SynthesisError):
        _spec([NodeSpec(id="x", op="const", encoding="stream", level=-1)],
              ["x"], bits=3)


def test_mul_argument_encodings_enforced():
    nodes = [
        NodeSpec(id="a", op="const", encoding="stream", level=2),
        NodeSpec(id="b", op="const", encoding="stream", level=3),
        NodeSpec(id="p", op="mul", args=("a", "b")),
    ]
    with pytest.raises(SynthesisError):
        _spec(nodes, ["p"])


def test_add_requires_stream_lanes():
    nodes = [
        NodeSpec(id="a", op="const", encoding="rl", level=2),
        NodeSpec(id="s", op="add", args=("a",)),
    ]
    with pytest.raises(SynthesisError):
        _spec(nodes, ["s"])


def test_rl_delay_overflow_rejected():
    nodes = [
        NodeSpec(id="w", op="const", encoding="rl", level=7),
        NodeSpec(id="d", op="delay", args=("w",), slots=2),
    ]
    with pytest.raises(SynthesisError):
        _spec(nodes, ["d"], bits=3)  # 7 + 2 > n_max = 8


def test_tap_shape_constraints():
    x = NodeSpec(id="x", op="const", encoding="stream", level=3)
    with pytest.raises(SynthesisError):
        _spec([x, NodeSpec(id="y", op="tap", args=("x",), taps=())], ["y"])
    with pytest.raises(SynthesisError):
        _spec([x, NodeSpec(id="y", op="tap", args=("x",), taps=(1, 2),
                           spacing=0)], ["y"])
    with pytest.raises(SynthesisError):
        # (len-1)*spacing beyond the epoch
        _spec([x, NodeSpec(id="y", op="tap", args=("x",), taps=(1,) * 5,
                           spacing=3)], ["y"], bits=3)


def test_matvec_shape_and_outputs():
    x0 = NodeSpec(id="x0", op="const", encoding="stream", level=1)
    x1 = NodeSpec(id="x1", op="const", encoding="stream", level=2)
    ragged = NodeSpec(id="mv", op="matvec", args=("x0", "x1"),
                      matrix=((1, 2), (3,)))
    with pytest.raises(SynthesisError):
        _spec([x0, x1, ragged], ["mv.y0"])
    good = NodeSpec(id="mv", op="matvec", args=("x0", "x1"),
                    matrix=((1, 2), (3, 4)))
    spec = _spec([x0, x1, good], ["mv.y0", "mv.y1"])
    assert validate_spec(spec)["mv.y0"] == "stream"


def test_outputs_must_be_known_unique_nonempty():
    nodes = _mul_chain()
    with pytest.raises(SynthesisError):
        _spec(nodes, [])
    with pytest.raises(SynthesisError):
        _spec(nodes, ["p", "p"])
    with pytest.raises(SynthesisError):
        _spec(nodes, ["nope"])


def test_dangling_value_is_an_error():
    nodes = [
        NodeSpec(id="x", op="const", encoding="stream", level=5),
        NodeSpec(id="w", op="const", encoding="rl", level=3),
        NodeSpec(id="p", op="mul", args=("x", "w")),
        NodeSpec(id="q", op="const", encoding="stream", level=1),
    ]
    with pytest.raises(SynthesisError, match="q"):
        _spec(nodes, ["p"])


def test_duplicate_node_ids_rejected():
    nodes = [
        NodeSpec(id="x", op="const", encoding="stream", level=5),
        NodeSpec(id="x", op="const", encoding="stream", level=2),
    ]
    with pytest.raises(SynthesisError):
        _spec(nodes, ["x"])


def test_from_json_rejects_unknown_fields_and_bad_types():
    doc = _spec(_mul_chain(), ["p"]).to_json()
    doc["surprise"] = 1
    with pytest.raises(SynthesisError):
        DataflowSpec.from_json(doc)
    doc2 = _spec(_mul_chain(), ["p"]).to_json()
    doc2["bits"] = True  # bool is not an int here
    with pytest.raises(SynthesisError):
        DataflowSpec.from_json(doc2)
    with pytest.raises(SynthesisError):
        spec_from_json("not json at all {")
