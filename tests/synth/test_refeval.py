"""The NumPy reference evaluator: the semantic ground truth the compiled
netlist must reproduce, tied to the paper's quantised-product model."""

import numpy as np
import pytest

from repro.core.multiplier import unipolar_product_count
from repro.synth import evaluate, expected_levels
from repro.synth.expand import PrimGraph, PrimNode
from repro.synth.refeval import check_product_model, uniform_slots


def _graph(bits=3):
    return PrimGraph(name="t", bits=bits)


def test_uniform_slots_matches_floor_grid():
    assert uniform_slots(0, 8).size == 0
    assert list(uniform_slots(8, 8)) == list(range(8))
    assert list(uniform_slots(3, 8)) == [0, 2, 5]  # floor(k*8/3)


@pytest.mark.parametrize("level", range(0, 9))
@pytest.mark.parametrize("weight", range(0, 9))
def test_product_matches_closed_form(level, weight):
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=level))
    graph.emit(PrimNode("w", "rconst", level=weight))
    graph.emit(PrimNode("p", "mul", ("x", "w")))
    graph.outputs.append(("p", "p"))
    got = expected_levels(graph)["p"]
    assert got == unipolar_product_count(level, weight, 8)
    check_product_model(graph)  # must not raise


def test_add_concatenates_and_sorts():
    graph = _graph()
    graph.emit(PrimNode("a", "sconst", level=3))
    graph.emit(PrimNode("b", "sconst", level=5))
    graph.emit(PrimNode("s", "add", ("a", "b")))
    graph.outputs.append(("s", "s"))
    value = evaluate(graph)["s"]
    assert value.level == 8
    assert list(value.ticks) == sorted(value.ticks)
    merged = np.sort(np.concatenate([uniform_slots(3, 8), uniform_slots(5, 8)]))
    assert list(value.ticks) == [int(t) for t in merged]


def test_delay_shifts_stream_ticks_and_rl_levels():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=2))
    graph.emit(PrimNode("dx", "delay", ("x",), slots=3))
    graph.emit(PrimNode("w", "rconst", level=4))
    graph.emit(PrimNode("dw", "delay", ("w",), slots=2))
    graph.outputs.append(("dx", "dx"))
    graph.outputs.append(("dw", "dw"))
    values = evaluate(graph)
    assert list(values["dx"].ticks) == [t + 3 for t in uniform_slots(2, 8)]
    assert values["dw"].encoding == "rl"
    assert values["dw"].level == 6
    assert values["dw"].ticks == ()


def test_delayed_stream_through_mul_filters_on_shifted_slots():
    # A delayed stream can carry ticks at slot >= n_max; the RL filter
    # still passes exactly the ticks strictly before the reset slot.
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=4))
    graph.emit(PrimNode("dx", "delay", ("x",), slots=5))
    graph.emit(PrimNode("w", "rconst", level=7))
    graph.emit(PrimNode("p", "mul", ("dx", "w")))
    graph.outputs.append(("p", "p"))
    ticks = uniform_slots(4, 8) + 5
    assert expected_levels(graph)["p"] == int((ticks < 7).sum())


def test_output_declaration_order_is_preserved():
    graph = _graph()
    graph.emit(PrimNode("a", "sconst", level=1))
    graph.emit(PrimNode("b", "sconst", level=2))
    graph.outputs.append(("b", "b"))
    graph.outputs.append(("a", "a"))
    assert list(evaluate(graph)) == ["b", "a"]
