"""The PR's acceptance gate: 500 random dataflow specs compile with zero
lint violations and zero conformance escapes.

Analyzer *proofs* are deliberately not asserted here: the interval
domain is incomplete for delay relabels on early adder lanes (see
docs/synthesis.md), so random programs may earn WARNING-level "not
proved" findings while remaining collision-free — which the simulation
check below verifies directly on both kernels.
"""

from repro.synth import compile_spec, lint_program, random_spec, spec_rng

N_SPECS = 500


def test_500_random_specs_compile_lint_clean_with_zero_escapes():
    lint_violations = []
    escapes = []
    for index in range(N_SPECS):
        spec = random_spec(spec_rng(0, index), name=f"acc{index}")
        program = compile_spec(spec)
        report = lint_program(program)
        if report.diagnostics:
            lint_violations.append((index, report.diagnostics[0]))
            continue
        expected = {o.ref: o.expected_level for o in program.outputs}
        for kernel in ("reference", "sealed"):
            outcome = program.simulate(kernel=kernel)
            if outcome.levels != expected:
                escapes.append((index, kernel, outcome.levels, expected))
            if outcome.collisions:
                escapes.append((index, kernel, "collisions",
                                outcome.collisions))
    assert lint_violations == []
    assert escapes == []
