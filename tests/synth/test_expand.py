"""Macro expansion: tap and matvec blow down to the five primitives."""

import pytest

from repro.errors import SynthesisError
from repro.synth import DataflowSpec, NodeSpec, expand_spec, validate_spec
from repro.synth.expand import PRIM_OPS, PrimGraph, PrimNode


def _spec(nodes, outputs, bits=3, slot_fs=None):
    spec = DataflowSpec(name="t", bits=bits, nodes=tuple(nodes),
                        outputs=tuple(outputs), slot_fs=slot_fs)
    validate_spec(spec)
    return spec


def test_expand_preserves_slot_override_and_emits_prims_only():
    spec = _spec(
        [
            NodeSpec(id="x", op="const", encoding="stream", level=5),
            NodeSpec(id="w", op="const", encoding="rl", level=3),
            NodeSpec(id="p", op="mul", args=("x", "w")),
        ],
        ["p"], slot_fs=20_000,
    )
    graph = expand_spec(spec)
    assert graph.slot_fs == 20_000
    assert all(node.op in PRIM_OPS for node in graph.nodes.values())
    assert graph.outputs == [("p", "p")]


def test_tap_expansion_names_and_structure():
    spec = _spec(
        [
            NodeSpec(id="x", op="const", encoding="stream", level=5),
            NodeSpec(id="y", op="tap", args=("x",), taps=(3, 8, 1)),
        ],
        ["y"],
    )
    graph = expand_spec(spec)
    # Lag-0 tap takes the undelayed input; later taps get delay nodes.
    assert "y__d0" not in graph.nodes
    assert graph.nodes["y__d1"].op == "delay"
    assert graph.nodes["y__d1"].slots == 1
    assert graph.nodes["y__d2"].slots == 2
    for i, weight in enumerate((3, 8, 1)):
        assert graph.nodes[f"y__c{i}"].op == "rconst"
        assert graph.nodes[f"y__c{i}"].level == weight
        assert graph.nodes[f"y__p{i}"].op == "mul"
    assert graph.nodes["y"].op == "add"
    assert graph.nodes["y"].args == ("y__p0", "y__p1", "y__p2")


def test_tap_spacing_scales_delays():
    spec = _spec(
        [
            NodeSpec(id="x", op="const", encoding="stream", level=5),
            NodeSpec(id="y", op="tap", args=("x",), taps=(3, 8), spacing=2),
        ],
        ["y"],
    )
    graph = expand_spec(spec)
    assert graph.nodes["y__d1"].slots == 2


def test_single_tap_collapses_to_a_plain_product():
    spec = _spec(
        [
            NodeSpec(id="x", op="const", encoding="stream", level=5),
            NodeSpec(id="y", op="tap", args=("x",), taps=(6,)),
        ],
        ["y"],
    )
    graph = expand_spec(spec)
    assert graph.nodes["y"].op == "mul"  # renamed product, no add
    assert not any(node.op == "add" for node in graph.nodes.values())


def test_matvec_expansion_names_and_refs():
    spec = _spec(
        [
            NodeSpec(id="x0", op="const", encoding="stream", level=6),
            NodeSpec(id="x1", op="const", encoding="stream", level=2),
            NodeSpec(id="mv", op="matvec", args=("x0", "x1"),
                     matrix=((3, 5), (8, 0))),
        ],
        ["mv.y0", "mv.y1"],
    )
    graph = expand_spec(spec)
    assert graph.nodes["mv__w0_1"].level == 5
    assert graph.nodes["mv__p1_0"].op == "mul"
    assert graph.nodes["mv__y0"].op in ("add", "mul")
    assert ("mv.y0", "mv__y0") in graph.outputs
    assert ("mv.y1", "mv__y1") in graph.outputs


def test_node_encoding_follows_delay_chains():
    graph = PrimGraph(name="t", bits=3)
    graph.emit(PrimNode("w", "rconst", level=3))
    graph.emit(PrimNode("d", "delay", ("w",), slots=1))
    graph.emit(PrimNode("dd", "delay", ("d",), slots=1))
    assert graph.node_encoding("dd") == "rl"


def test_emit_rejects_duplicates_and_replace_requires_existing():
    graph = PrimGraph(name="t", bits=3)
    graph.emit(PrimNode("x", "sconst", level=1))
    with pytest.raises(SynthesisError):
        graph.emit(PrimNode("x", "sconst", level=2))
    with pytest.raises(SynthesisError):
        graph.replace_node(PrimNode("nope", "sconst", level=1))
