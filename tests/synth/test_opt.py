"""The cell-choice optimizer: semantics-preserving JJ reduction."""

from repro.synth import evaluate, optimize_graph
from repro.synth.expand import PrimGraph, PrimNode
from repro.synth.opt import estimate_jj, resolve_outputs


def _graph(bits=3):
    return PrimGraph(name="t", bits=bits)


def _levels(graph):
    return {ref: v.level for ref, v in evaluate(graph).items()}


def test_zero_delay_is_aliased_away():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=3))
    graph.emit(PrimNode("d", "delay", ("x",), slots=0))
    graph.outputs.append(("d", "d"))
    optimized, report = optimize_graph(graph)
    assert resolve_outputs(optimized)["d"] == "x"
    assert "d" not in optimized.nodes
    assert _levels(optimized) == _levels(graph)


def test_full_scale_weight_elides_the_multiplier():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=8))  # ticks 0..7
    graph.emit(PrimNode("w", "rconst", level=8))  # reset after every tick
    graph.emit(PrimNode("p", "mul", ("x", "w")))
    graph.outputs.append(("p", "p"))
    optimized, report = optimize_graph(graph)
    assert report.muls_elided == 1
    assert resolve_outputs(optimized)["p"] == "x"
    # DCE drops the now-unused weight constant.
    assert "w" not in optimized.nodes
    assert report.jj_saved > 0
    assert _levels(optimized) == _levels(graph)


def test_delayed_stream_defeats_mul_elision():
    # The delay pushes ticks to slots >= the reset slot: the NDRO gates.
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=4))
    graph.emit(PrimNode("d", "delay", ("x",), slots=4))
    graph.emit(PrimNode("w", "rconst", level=8))
    graph.emit(PrimNode("p", "mul", ("d", "w")))
    graph.outputs.append(("p", "p"))
    optimized, report = optimize_graph(graph)
    assert report.muls_elided == 0
    assert optimized.nodes["p"].op == "mul"
    assert _levels(optimized) == _levels(graph)


def test_zero_operands_fold_to_silent_streams():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=0))
    graph.emit(PrimNode("w", "rconst", level=5))
    graph.emit(PrimNode("p", "mul", ("x", "w")))
    graph.emit(PrimNode("y", "sconst", level=3))
    graph.emit(PrimNode("s", "add", ("p", "y")))
    graph.outputs.append(("s", "s"))
    optimized, report = optimize_graph(graph)
    assert report.zeros_folded >= 1
    assert report.lanes_pruned == 1
    # The add collapsed: its one live lane is y.
    assert resolve_outputs(optimized)["s"] == "y"
    assert _levels(optimized) == _levels(graph) == {"s": 3}


def test_all_zero_add_folds_to_a_zero_const():
    graph = _graph()
    graph.emit(PrimNode("a", "sconst", level=0))
    graph.emit(PrimNode("b", "sconst", level=0))
    graph.emit(PrimNode("s", "add", ("a", "b")))
    graph.outputs.append(("s", "s"))
    optimized, _report = optimize_graph(graph)
    assert optimized.nodes["s"].op == "sconst"
    assert optimized.nodes["s"].level == 0
    assert _levels(optimized) == {"s": 0}


def test_rl_delay_tracking_keeps_static_levels_exact():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=8))
    graph.emit(PrimNode("w", "rconst", level=6))
    graph.emit(PrimNode("dw", "delay", ("w",), slots=2))  # effective 8
    graph.emit(PrimNode("p", "mul", ("x", "dw")))
    graph.outputs.append(("p", "p"))
    optimized, report = optimize_graph(graph)
    # top tick 7 < effective reset 8: elided through the delayed weight.
    assert report.muls_elided == 1
    assert _levels(optimized) == _levels(graph)


def test_estimate_jj_counts_scale_with_structure():
    small = _graph()
    small.emit(PrimNode("x", "sconst", level=3))
    small.outputs.append(("x", "x"))
    big = _graph()
    big.emit(PrimNode("x", "sconst", level=3))
    big.emit(PrimNode("w", "rconst", level=2))
    big.emit(PrimNode("p", "mul", ("x", "w")))
    big.outputs.append(("p", "p"))
    assert estimate_jj(big) > estimate_jj(small)


def test_report_accounting_is_consistent():
    graph = _graph()
    graph.emit(PrimNode("x", "sconst", level=8))
    graph.emit(PrimNode("w", "rconst", level=8))
    graph.emit(PrimNode("p", "mul", ("x", "w")))
    graph.outputs.append(("p", "p"))
    _optimized, report = optimize_graph(graph)
    assert report.nodes_before == 3
    assert report.nodes_after < report.nodes_before
    assert report.jj_saved == report.jj_before - report.jj_after
