"""The shared construction-legality helpers (builder is also consumed by
the verify generator and the lint/analyze merger rule — see those suites
for the byte-stability locks)."""

from repro.cells.interconnect import Jtl, Splitter
from repro.pulsesim import Circuit, PulseRecorder
from repro.synth.builder import (
    collision_pairs,
    fanout_chain,
    probe_unconsumed,
    space_arrivals,
    splitters_needed,
)


def test_splitters_needed_is_the_shortfall():
    assert splitters_needed(2, 2) == 0
    assert splitters_needed(2, 5) == 3
    assert splitters_needed(5, 2) == 0


def test_space_arrivals_bumps_in_arrival_order():
    # Two coincident arrivals: the later-sorted one is pushed a dead time.
    assert space_arrivals([0, 0], 5_000) == [0, 5_000]
    # Already legal: no bumps.
    assert space_arrivals([0, 6_000], 5_000) == [0, 0]
    # Chained: each bump is measured against the updated predecessor.
    bumps = space_arrivals([0, 1_000, 2_000], 5_000)
    spaced = sorted(a + b for a, b in zip([0, 1_000, 2_000], bumps))
    assert all(b - a >= 5_000 for a, b in zip(spaced, spaced[1:]))


def test_space_arrivals_order_is_stable_for_ties():
    # Ties keep input order (stable sort): index 0 stays unbumped.
    bumps = space_arrivals([7, 7], 100)
    assert bumps == [0, 100]


def test_collision_pairs_reports_adjacent_violations_only():
    arrivals = [("a", 0), ("b", 2_000), ("c", 30_000)]
    pairs = collision_pairs(arrivals, 5_000)
    assert len(pairs) == 1
    (name_a, _ta), (name_b, _tb), skew = pairs[0]
    assert (name_a, name_b, skew) == ("a", "b", 2_000)
    assert collision_pairs(arrivals, 1_000) == []


def test_collision_pairs_sorts_stably_by_time():
    arrivals = [("late", 9_000), ("early", 0)]
    pairs = collision_pairs(arrivals, 10_000)
    (name_a, _), (name_b, _), skew = pairs[0]
    assert (name_a, name_b, skew) == ("early", "late", 9_000)


def test_fanout_chain_single_consumer_is_a_wire():
    circuit = Circuit("f")
    src = circuit.add(Jtl("src"))
    legs = fanout_chain(circuit, "x", src, "q", 1)
    assert legs == [(src, "q", 0)]
    assert len(circuit.elements) == 1  # no splitters inserted


def test_fanout_chain_builds_a_linear_splitter_chain():
    circuit = Circuit("f")
    src = circuit.add(Jtl("src"))
    legs = fanout_chain(circuit, "x", src, "q", 4)
    assert len(legs) == 4
    names = [element.name for element in circuit.elements]
    assert names == ["src", "x__s1", "x__s2", "x__s3"]
    # q1 legs at depths 1..3, the final q2 leg at the chain's depth.
    depths = [depth for _el, _port, depth in legs]
    assert depths == [1, 2, 3, 3]
    ports = [port for _el, port, depth in legs]
    assert ports == ["q1", "q1", "q1", "q2"]


def test_probe_unconsumed_probes_exactly_the_leftovers():
    circuit = Circuit("f")
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    outputs = [(a, "q"), (b, "q")]
    probes = probe_unconsumed(circuit, outputs, frozenset({0}))
    assert len(probes) == 1
    assert isinstance(probes[0], PulseRecorder)


def test_fanout_chain_legs_all_descend_from_the_source():
    circuit = Circuit("f")
    src = circuit.add(Splitter("root"))
    legs = fanout_chain(circuit, "fan", src, "q1", 3)
    sinks = {element.name for element, _port, _depth in legs}
    assert sinks == {"fan__s1", "fan__s2"}
