"""Hypothesis properties over the synthesis frontend's own generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (
    DataflowSpec,
    compile_spec,
    expand_spec,
    expected_levels,
    lint_program,
    optimize_graph,
    random_spec,
    spec_rng,
)
from repro.synth.refeval import check_product_model
from tests.strategies import dataflow_specs


@given(spec=dataflow_specs())
@settings(max_examples=25, deadline=None)
def test_random_spec_compiles_lint_clean_and_simulates_true(spec):
    program = compile_spec(spec)
    assert lint_program(program).diagnostics == []
    expected = {o.ref: o.expected_level for o in program.outputs}
    outcome = program.simulate(kernel="reference")
    assert outcome.levels == expected
    assert outcome.collisions == 0


@given(spec=dataflow_specs())
@settings(max_examples=50, deadline=None)
def test_spec_json_round_trip_is_lossless(spec):
    assert DataflowSpec.from_json(spec.to_json()) == spec
    assert DataflowSpec.from_json(spec.to_json()).key() == spec.key()


@given(spec=dataflow_specs())
@settings(max_examples=50, deadline=None)
def test_optimizer_preserves_reference_semantics(spec):
    graph = expand_spec(spec)
    optimized, _report = optimize_graph(graph)
    assert expected_levels(optimized) == expected_levels(graph)
    check_product_model(graph)


@given(seed=st.integers(0, 2**32 - 1), example=st.integers(0, 9999))
@settings(max_examples=25, deadline=None)
def test_generator_is_deterministic_per_substream(seed, example):
    first = random_spec(spec_rng(seed, example))
    second = random_spec(spec_rng(seed, example))
    assert first == second
    assert first.key() == second.key()
