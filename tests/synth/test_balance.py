"""Delay balancing: slot-period floors and the wire/JTL pad trade-off."""

import pytest

from repro.errors import SynthesisError
from repro.models import technology as tech
from repro.pulsesim import Circuit
from repro.cells.interconnect import Jtl
from repro.synth import MARGIN_FS, required_slot_fs
from repro.synth.balance import Padder, choose_slot_fs, stream_spreads
from repro.synth.expand import PrimGraph, PrimNode


def _mul_graph(slot_fs=None):
    graph = PrimGraph(name="t", bits=3, slot_fs=slot_fs)
    graph.emit(PrimNode("x", "sconst", level=5))
    graph.emit(PrimNode("w", "rconst", level=3))
    graph.emit(PrimNode("p", "mul", ("x", "w")))
    graph.outputs.append(("p", "p"))
    return graph


def _add_graph(lanes):
    graph = PrimGraph(name="t", bits=3)
    args = []
    for i in range(lanes):
        graph.emit(PrimNode(f"x{i}", "sconst", level=1))
        args.append(f"x{i}")
    graph.emit(PrimNode("s", "add", tuple(args)))
    graph.outputs.append(("s", "s"))
    return graph


def test_mul_requires_margin_over_spread():
    spreads, required = stream_spreads(_mul_graph())
    assert spreads["x"] == 0
    assert spreads["p"] == 0
    assert required == MARGIN_FS + 1


def test_add_fold_accumulates_spread_and_dead_time():
    dead = tech.T_MERGER_DEAD_FS
    spreads, required = stream_spreads(_add_graph(3))
    # Fold: acc 0 -> dead -> 2*dead; each step needs slot >= acc + dead.
    assert spreads["s"] == 2 * dead
    assert required == 3 * dead


def test_choose_slot_fs_floors_at_bff_period():
    assert choose_slot_fs(_mul_graph()) == tech.T_BFF_FS


def test_choose_slot_fs_respects_and_validates_override():
    assert choose_slot_fs(_mul_graph(slot_fs=20_000)) == 20_000
    graph = _add_graph(3)
    graph.slot_fs = required_slot_fs(graph) - 1
    with pytest.raises(SynthesisError, match="below the minimum"):
        choose_slot_fs(graph)


def test_required_slot_fs_exceeds_bff_for_wide_adds():
    # 3-lane fold needs 15000 fs > the 12000 fs BFF period.
    graph = _add_graph(3)
    assert required_slot_fs(graph) == 15_000
    assert choose_slot_fs(graph) == 15_000


def _pad_fixture():
    circuit = Circuit("pads")
    a = circuit.add(Jtl("a"))
    b = circuit.add(Jtl("b"))
    return circuit, a, b


def test_wire_padding_books_delay_on_the_net():
    circuit, a, b = _pad_fixture()
    padder = Padder(circuit, mode="wire")
    padder.connect(a, "q", b, "a", 1_500)
    assert padder.total_fs == 1_500
    assert padder.jtl_cells == 0
    assert len(circuit.elements) == 2


def test_jtl_padding_inserts_cells_only_for_nonzero_pads():
    circuit, a, b = _pad_fixture()
    padder = Padder(circuit, mode="jtl")
    padder.connect(a, "q", b, "a", 1_500)
    assert padder.jtl_cells == 1
    assert circuit["pad1"].delay == 1_500
    circuit2, c, d = _pad_fixture()
    padder2 = Padder(circuit2, mode="jtl")
    padder2.connect(c, "q", d, "a", 0)
    assert padder2.jtl_cells == 0


def test_negative_pad_and_unknown_mode_rejected():
    circuit, a, b = _pad_fixture()
    with pytest.raises(SynthesisError, match="unknown padding mode"):
        Padder(circuit, mode="maglev")
    padder = Padder(circuit, mode="wire")
    with pytest.raises(SynthesisError, match="negative"):
        padder.connect(a, "q", b, "a", -1)
