"""usfq-synth CLI: exit codes, JSON modes, and failure surfaces."""

import json
from pathlib import Path

import pytest

from repro.synth import NodeSpec  # noqa: F401  (re-export sanity)
from repro.synth.cli import main

REPO = Path(__file__).resolve().parents[2]
SPECS = sorted(str(p) for p in (REPO / "examples" / "specs").glob("*.json"))
FIR3 = str(REPO / "examples" / "specs" / "fir3.json")


def test_compile_writes_the_netlist_json(tmp_path, capsys):
    out = tmp_path / "out.json"
    assert main(["compile", FIR3, "--json", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["format"] == "usfq-synth/1"
    assert doc["epoch"]["slot_fs"] == doc["stats"]["slot_fs"]


def test_compile_to_stdout_and_simulate(capsys):
    assert main(["compile", FIR3, "--json", "--simulate"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["simulation"]["collisions"] == 0
    assert doc["simulation"]["levels"] == {"y": 7}


def test_check_all_examples_pass_at_warning(capsys):
    assert main(["check", *SPECS, "--fail-on", "warning"]) == 0


def test_check_json_report_shape(capsys):
    assert main(["check", FIR3, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["results"]
    assert entry["spec"].endswith("fir3.json")
    assert entry["findings"] == []
    assert entry["jj"] > 0


def test_malformed_spec_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"format\": \"usfq-dataflow/1\"}")
    assert main(["check", str(bad)]) == 2
    assert "usfq-synth: error:" in capsys.readouterr().err


def test_missing_file_exits_2(capsys):
    assert main(["compile", "/nonexistent/spec.json"]) == 2


def test_unknown_fail_on_level_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["check", FIR3, "--fail-on", "catastrophe"])
    assert excinfo.value.code == 2


def test_no_opt_and_jtl_padding_modes_compile(tmp_path):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert main(["compile", FIR3, "--no-opt", "--out", str(out_a)]) == 0
    assert main(
        ["compile", FIR3, "--padding", "jtl", "--out", str(out_b)]
    ) == 0
    doc = json.loads(out_b.read_text())
    assert doc["stats"]["pad_jtls"] > 0


@pytest.mark.parametrize("args", [[], ["compile"], ["frobnicate", FIR3]])
def test_usage_errors_exit_2(args, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(args)
    assert excinfo.value.code == 2
