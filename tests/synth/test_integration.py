"""Compiled programs flow through every execution tier unchanged:
the sealed kernel, the vectorized batch kernel, the partitioned NoC
simulator, and (via the shared quantised-product model) the serving
layer's functional PEs."""

import asyncio
import json
from pathlib import Path

import pytest

from repro.core.multiplier import unipolar_product_count
from repro.pulsesim.batch import BatchSimulator
from repro.serve import ServeConfig, ServeService
from repro.pulsesim import Simulator
from repro.shard import ShardSimulator, build_noc_circuit, plan_partition
from repro.synth import compile_json, compile_spec, dataflow_spec

REPO = Path(__file__).resolve().parents[2]
FIR3 = REPO / "examples" / "specs" / "fir3.json"
DELAY_LINE = REPO / "examples" / "specs" / "delay_line.json"


def _decode(output, times, slot_fs):
    """Decode one output port from raw probe times (mirrors simulate())."""
    if output.encoding == "stream":
        return len(times)
    (time,) = times
    offset = time - output.latency_fs
    assert offset % slot_fs == 0
    return offset // slot_fs


def _expected(program):
    return {port.ref: port.expected_level for port in program.outputs}


def test_sealed_kernel_accepts_the_compiled_circuit():
    program = compile_json(FIR3.read_text())
    outcome = program.simulate(kernel="sealed")
    assert outcome.levels == _expected(program)
    assert outcome.collisions == 0


@pytest.mark.parametrize("path", [FIR3, DELAY_LINE])
def test_batch_kernel_reproduces_every_lane(path):
    batch = 3
    program = compile_json(path.read_text())
    circuit = program.circuit
    by_name = {element.name: element for element in circuit.elements}
    tap_ports = {
        id(tap.probe): (tap.source, port)
        for (_eid, port), taps in circuit._taps.items()
        for tap in taps
    }
    sim = BatchSimulator(circuit, batch=batch)
    for name, times in program.stimulus.items():
        sim.schedule_lane_trains(by_name[name], "a",
                                 [list(times)] * batch)
    sim.run()
    expected = _expected(program)
    for lane in range(batch):
        levels = {}
        for output in program.outputs:
            probe = program.probes[output.probe_label]
            times = sim.port_times(*tap_ports[id(probe)], lane)
            levels[output.ref] = _decode(output, sorted(times),
                                         program.slot_fs)
        assert levels == expected, f"lane {lane}"


@pytest.mark.parametrize("num_shards", [2, 3])
def test_shard_partitioning_of_a_compiled_netlist_is_lossless(num_shards):
    """The shard layer's own invariant, applied to a synthesized netlist:
    the partitioned run is bit-identical to a monolithic sealed run of
    the same NoC-augmented circuit.  (NoC links add real latency on cut
    wires, so the *decode* intentionally belongs to the augmented timing,
    not the original delay-balanced schedule.)"""
    program = compile_json(FIR3.read_text())
    plan = plan_partition(program.circuit, num_shards,
                          entry_points=program.entry_points)

    mono_circuit = build_noc_circuit(program.circuit, plan)
    mono_by_name = {el.name: el for el in mono_circuit.elements}
    mono = Simulator(mono_circuit, kernel="sealed")
    for name, times in program.stimulus.items():
        mono.schedule_train(mono_by_name[name], "a", list(times))
    mono.run()
    mono_recordings = {
        tap.probe.label: list(tap.probe.times)
        for taps in mono_circuit._taps.values()
        for tap in taps
    }

    with ShardSimulator(program.circuit, plan) as sharded:
        for name, times in program.stimulus.items():
            sharded.schedule_train(name, "a", list(times))
        sharded.run()
        assert sharded.recordings() == mono_recordings


def test_serve_pe_mac_agrees_with_the_synthesized_product():
    """The serving layer's functional PE and the synthesized multiplier
    share one quantised-product model: a served MAC answer is exactly
    reconstructible from the hardware decode of the compiled netlist."""
    bits, x, w = 3, 5, 6
    n_max = 2 ** bits
    spec = dataflow_spec("xw", bits, [
        {"id": "a", "op": "const", "encoding": "stream", "level": x},
        {"id": "w", "op": "const", "encoding": "rl", "level": w},
        {"id": "p", "op": "mul", "args": ["a", "w"]},
    ], ["p"])
    decoded = compile_spec(spec).simulate().levels["p"]
    assert decoded == unipolar_product_count(x, w, n_max)

    async def served():
        service = ServeService(ServeConfig(port=0, workers=0))
        try:
            status, _reason, body, _headers = await service.handle(
                "POST", "/v1/compute",
                json.dumps({
                    "op": "pe.mac",
                    "config": {"bits": bits, "slot_fs": 40_000},
                    "values": [w / n_max, x / n_max, 0.0],
                }).encode(),
            )
            return status, json.loads(body)
        finally:
            service.close()

    status, doc = asyncio.run(served())
    assert status == 200
    # PE semantics: (product + in3 + 1) // 2, normalised by n_max.
    assert doc["result"]["value"] == ((decoded + 1) // 2) / n_max
