"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import settings

from repro.encoding.epoch import EpochSpec

# Property tests measure wall time per example; under instrumented runs
# (coverage collection, tracing) the default 200 ms deadline produces
# flaky DeadlineExceeded failures.  CI and coverage runs select the
# "ci" profile via HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def epoch4() -> EpochSpec:
    """A small 4-bit epoch (16 slots, 12 ps each)."""
    return EpochSpec(bits=4)


@pytest.fixture
def epoch6() -> EpochSpec:
    """A 6-bit epoch (64 slots)."""
    return EpochSpec(bits=6)
