"""Shared fixtures for the test suite."""

import pytest

from repro.encoding.epoch import EpochSpec


@pytest.fixture
def epoch4() -> EpochSpec:
    """A small 4-bit epoch (16 slots, 12 ps each)."""
    return EpochSpec(bits=4)


@pytest.fixture
def epoch6() -> EpochSpec:
    """A 6-bit epoch (64 slots)."""
    return EpochSpec(bits=6)
