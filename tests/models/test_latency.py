"""Latency/throughput models and the paper's crossover points."""

import pytest

from repro.errors import ConfigurationError
from repro.models import latency, technology as tech
from repro.units import ns, to_ns, us


def test_unary_formulas():
    assert latency.multiplier_unary_latency_fs(8) == 256 * tech.T_INV_FS
    assert latency.adder_unary_balancer_latency_fs(8) == 256 * tech.T_BFF_FS
    assert latency.adder_unary_merger_latency_fs(4, m_inputs=4) == 16 * 4 * tech.T_MERGER_DEAD_FS
    assert latency.fir_unary_latency_fs(8) == 256 * 8 * tech.T_TFF2_FS


def test_fir_unary_latency_is_tap_independent():
    assert latency.fir_unary_latency_fs(10) == latency.fir_unary_latency_fs(10)
    # and reaches the Fig 18a scale at 16 bits (~21 us).
    assert latency.fir_unary_latency_fs(16) == pytest.approx(us(21), rel=0.05)


def test_binary_fir_scales_with_taps():
    assert latency.fir_binary_latency_fs(256, 8) == 8 * latency.fir_binary_latency_fs(32, 8)


def test_paper_crossovers():
    # Fig 18a: unary faster below 9 bits (32 taps) / 12 bits (256 taps).
    assert latency.fir_unary_latency_fs(8) < latency.fir_binary_latency_fs(32, 8)
    assert latency.fir_unary_latency_fs(9) > latency.fir_binary_latency_fs(32, 9)
    assert latency.fir_unary_latency_fs(11) < latency.fir_binary_latency_fs(256, 11)
    assert latency.fir_unary_latency_fs(12) > latency.fir_binary_latency_fs(256, 12)


def test_multiplier_crossover_at_8_bits():
    assert latency.multiplier_unary_latency_fs(7) < latency.multiplier_binary_latency_fs(7)
    assert latency.multiplier_unary_latency_fs(8) > latency.multiplier_binary_latency_fs(8)


def test_pes_for_equal_throughput():
    assert latency.pes_for_equal_throughput(4) >= 1
    assert latency.pes_for_equal_throughput(16) > latency.pes_for_equal_throughput(8)


def test_pes_for_bp_throughput_at_8_bits():
    # 2^8 * 12 ps / (1/48 GHz) ~ 148 PEs.
    assert latency.pes_for_bp_throughput(8) == 148


def test_throughput_gops():
    assert latency.throughput_gops(ns(1)) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        latency.throughput_gops(0)


def test_bp_fir_latency():
    assert to_ns(latency.fir_binary_bp_latency_fs(48)) == pytest.approx(1.0, rel=0.01)


def test_validation():
    with pytest.raises(ConfigurationError):
        latency.multiplier_unary_latency_fs(0)
    with pytest.raises(ConfigurationError):
        latency.fir_binary_latency_fs(0, 8)
    with pytest.raises(ConfigurationError):
        latency.adder_unary_merger_latency_fs(8, m_inputs=1)
