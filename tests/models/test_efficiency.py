"""Throughput-per-JJ models."""

import pytest

from repro.errors import ConfigurationError
from repro.models import efficiency
from repro.units import ns


def test_kops_per_jj_basic():
    # 1 op per ns over 1000 JJs = 1e9 ops/s / 1e3 JJ = 1e6 ops/s/JJ = 1000 kOPs/JJ.
    assert efficiency.kops_per_jj(ns(1), 1_000) == pytest.approx(1_000)
    with pytest.raises(ConfigurationError):
        efficiency.kops_per_jj(ns(1), 0)


def test_fir_efficiency_advantage_at_low_bits():
    assert efficiency.fir_unary_efficiency(32, 6) > efficiency.fir_binary_efficiency(32, 6)


def test_fir_efficiency_loses_at_high_bits():
    assert efficiency.fir_unary_efficiency(32, 16) < efficiency.fir_binary_efficiency(32, 16)


def test_fir_efficiency_gain_grows_with_taps():
    gain_32 = efficiency.fir_unary_efficiency(32, 8) / efficiency.fir_binary_efficiency(32, 8)
    gain_256 = efficiency.fir_unary_efficiency(256, 8) / efficiency.fir_binary_efficiency(256, 8)
    assert gain_256 > gain_32


def test_pe_efficiency_positive_and_finite():
    for bits in (4, 8, 16):
        assert efficiency.pe_unary_efficiency(bits) > 0
        assert efficiency.pe_binary_efficiency(bits) > 0


def test_dpu_efficiency_unary_wins_small_vectors():
    assert efficiency.dpu_unary_efficiency(32, 8) > efficiency.dpu_binary_efficiency(32, 8)


def test_dpu_binary_sequential_cost():
    # Doubling L halves the binary DPU's rate (sequential MACs).
    e64 = efficiency.dpu_binary_efficiency(64, 8)
    e128 = efficiency.dpu_binary_efficiency(128, 8)
    assert e128 == pytest.approx(e64 / 2)
    with pytest.raises(ConfigurationError):
        efficiency.dpu_binary_efficiency(0, 8)
