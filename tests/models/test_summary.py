"""Design-report budgets."""

import pytest

from repro.errors import ConfigurationError
from repro.models import area, summary, technology as tech


def test_fir_report_matches_area_model():
    report = summary.fir_report(32, 8)
    assert report.jj_total == pytest.approx(area.fir_unary_jj(32, 8), abs=1)
    assert report.latency_fs > 0
    assert report.active_power_w > 0
    assert report.passive_power_w > report.active_power_w  # RSFQ bias dominates


def test_fir_report_line_items():
    report = summary.fir_report(32, 8)
    blocks = {line.block: line for line in report.lines}
    assert blocks["bipolar multiplier"].count == 32
    assert blocks["counting-network balancer"].count == 31
    assert blocks["RL memory cell (delay line)"].count == 31
    assert blocks["bipolar multiplier"].jj_each == 46


def test_dpu_report_matches_area_model():
    report = summary.dpu_report(32, 8)
    assert report.jj_total == area.dpu_unary_jj(32)


def test_pe_array_report():
    report = summary.pe_array_report(8, 8, 8)
    assert report.jj_total == 64 * 126
    assert report.fits()  # 8k JJs fits the 20k practical budget


def test_fits_detects_oversized_designs():
    report = summary.fir_report(256, 16)
    assert report.jj_total > tech.MITLL_SFQ5EE.max_practical_jjs
    assert not report.fits()


def test_render_contains_totals():
    text = summary.fir_report(16, 6).render()
    assert "U-SFQ FIR" in text
    assert "total" in text
    assert "latency" in text
    assert "uW" in text


def test_validation():
    with pytest.raises(ConfigurationError):
        summary.fir_report(0, 8)
    with pytest.raises(ConfigurationError):
        summary.pe_array_report(0, 1, 8)
