"""Area models: anchors, monotonicity, crossovers."""

import pytest

from repro.errors import ConfigurationError
from repro.models import area


def test_block_anchors():
    assert area.multiplier_unary_jj() == 46
    assert area.multiplier_unary_jj(bipolar=False) == 16
    assert area.adder_unary_balancer_jj() == 56
    assert area.adder_unary_merger_jj() == 5
    assert area.pe_unary_jj() == 126


def test_unary_areas_are_bit_independent():
    assert area.dpu_unary_jj(32) == area.dpu_unary_jj(32)
    for bits in (4, 8, 16):
        assert area.shift_register_buffer_jj(bits) == 122


def test_binary_areas_grow_with_bits():
    assert area.multiplier_binary_jj(16) > area.multiplier_binary_jj(8)
    assert area.adder_binary_jj(16) > area.adder_binary_jj(8)
    assert area.pe_binary_jj(16) > area.pe_binary_jj(8)
    assert area.fir_binary_jj(32, 16) > area.fir_binary_jj(32, 8)


def test_shift_register_fig12_anchors():
    assert area.shift_register_binary_jj(8) == 48
    assert area.shift_register_b2rc_jj(8) == round(3.2 * 48)
    assert area.shift_register_dff_rl_jj(8) == 256 * 6
    # 2.5x at 8 bits, 1.3x at 16 bits.
    assert area.shift_register_buffer_jj(8) / 48 == pytest.approx(2.5, abs=0.05)
    assert area.shift_register_buffer_jj(16) / 96 == pytest.approx(1.3, abs=0.05)


def test_dpu_linear_in_length():
    assert area.dpu_unary_jj(64) - area.dpu_unary_jj(32) == 32 * 46 + 32 * 56


def test_dpu_crossovers():
    # Unary wins for every L <= 64; binary wins for L = 256 at all bits.
    for bits in range(6, 17):
        assert area.dpu_unary_jj(64) < area.dpu_binary_jj(bits)
        assert area.dpu_unary_jj(256) > area.dpu_binary_jj(bits)


def test_fir_area_crossovers_match_fig18c():
    first = next(
        b for b in range(4, 17) if area.fir_unary_jj(32, b) < area.fir_binary_jj(32, b)
    )
    assert first in (8, 9)
    assert all(
        area.fir_unary_jj(256, b) > area.fir_binary_jj(256, b) for b in range(4, 17)
    )


def test_fir_unary_rl_output_option():
    base = area.fir_unary_jj(32, 8)
    assert area.fir_unary_jj(32, 8, rl_output=True) == base + 122


def test_pe_array_area():
    assert area.pe_array_unary_jj(10) == 1_260
    with pytest.raises(ConfigurationError):
        area.pe_array_unary_jj(0)


def test_pe_binary_bp_reference():
    assert area.pe_binary_bp_jj(8) > 17_000  # the BP multiplier alone


def test_validation():
    with pytest.raises(ConfigurationError):
        area.fir_unary_jj(0, 8)
    with pytest.raises(ConfigurationError):
        area.fir_binary_jj(32, 0)
    with pytest.raises(ConfigurationError):
        area.dpu_unary_jj(3)
    with pytest.raises(ConfigurationError):
        area.shift_register_binary_jj(30)
