"""Fig 20 savings grids and application regions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import regions


def test_grid_shapes():
    for metric in ("latency", "area", "efficiency"):
        grid = regions.savings_grid(metric)
        assert grid.shape == (len(regions.DEFAULT_BITS), len(regions.DEFAULT_TAPS))


def test_unknown_metric_rejected():
    with pytest.raises(ConfigurationError):
        regions.savings_grid("energy")


def test_latency_savings_monotone_in_taps():
    """Unary latency is tap-independent, so more taps = more savings."""
    for bits in (6, 8, 10):
        assert regions.latency_savings(256, bits) > regions.latency_savings(32, bits)


def test_latency_savings_decrease_with_bits():
    for taps in (32, 256):
        assert regions.latency_savings(taps, 6) > regions.latency_savings(taps, 14)


def test_savings_sign_flips_at_crossover():
    assert regions.latency_savings(32, 8) > 0
    assert regions.latency_savings(32, 9) < 0


def test_region_membership():
    assert regions.IR_SENSORS.contains(32, 7)
    assert not regions.IR_SENSORS.contains(128, 7)
    assert regions.SDR.contains(512, 10)
    assert not regions.SDR.contains(512, 16)


def test_region_summary_keys():
    summary = regions.region_summary(regions.SDR)
    assert summary["region"] == "SDR"
    for key in ("latency_savings_pct", "area_savings_pct", "efficiency_gain_pct"):
        low, high = summary[key]
        assert low <= high


def test_reference_point_summary():
    rtl = regions.reference_point_summary(regions.RTL2832U_POINT, "RTL-2832U")
    assert rtl["taps"] == 256
    assert rtl["latency_savings_pct"] > 80  # "90 % lower latency"
    assert rtl["area_savings_pct"] < 0      # "60 % larger"
    assert rtl["efficiency_gain_pct"] > 0   # "80 % better efficiency"


def test_render_grid_ascii_marks_binary_wins():
    grid = np.array([[50.0, -10.0]])
    lines = regions.render_grid_ascii(grid, taps_values=(32, 64), bits_values=(8,))
    assert "...." in lines[1]
    assert "50" in lines[1]


def test_empty_region_rejected():
    tiny = regions.ApplicationRegion("none", 5, 6, 2, 3)
    with pytest.raises(ConfigurationError):
        regions.region_summary(tiny)
