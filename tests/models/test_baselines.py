"""Table 2 dataset and fits."""

import pytest

from repro.errors import ConfigurationError
from repro.models import baselines


def test_dataset_has_five_adders_and_five_multipliers():
    assert len(baselines.entries("adder")) == 5
    assert len(baselines.entries("multiplier")) == 5


def test_arch_filtering():
    wp_adders = baselines.entries("adder", (baselines.WAVE_PIPELINED,))
    assert all(e.arch == "WP" for e in wp_adders)
    assert len(wp_adders) == 4
    with pytest.raises(ConfigurationError):
        baselines.entries("adder", ("XX",))
    with pytest.raises(ConfigurationError):
        baselines.entries("divider")


def test_fit_matches_manual_least_squares():
    points = [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]
    fit = baselines.fit(points, floor=0.0)
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(0.0)


def test_fit_requires_two_distinct_bit_widths():
    with pytest.raises(ConfigurationError):
        baselines.fit([(8, 100)], floor=0)
    with pytest.raises(ConfigurationError):
        baselines.fit([(8, 100), (8, 200)], floor=0)


def test_fit_floor_applies():
    fit = baselines.LinearFit(slope=10.0, intercept=-100.0, floor=50.0)
    assert fit(2) == 50.0
    assert fit(20) == 100.0


def test_multiplier_area_fit_excludes_bp_outlier():
    # The 17 kJJ BP design would drag the trend; the fit at 8 bits must sit
    # near the WP/SA designs (~4.6-6 kJJ), far below 17 kJJ.
    assert baselines.multiplier_binary_jj(8) < 8_000


def test_fit_values_anchor_headline_ratios():
    # These two ratios are the paper's 25-200x / 370x anchors (fig04).
    assert baselines.multiplier_binary_jj(16) / 46 == pytest.approx(205, abs=5)
    assert baselines.NAGAOKA_BP_MULTIPLIER.jj_count / 46 == pytest.approx(370, abs=1)


def test_latency_fits_increase_with_bits():
    assert baselines.multiplier_binary_latency_ps(16) > baselines.multiplier_binary_latency_ps(8)
    assert baselines.adder_binary_latency_ps(16) > baselines.adder_binary_latency_ps(4)


def test_bp_pipeline_period_is_48ghz():
    assert baselines.BP_PIPELINE_PERIOD_FS == pytest.approx(20_833, abs=1)


def test_entries_are_frozen():
    entry = baselines.TABLE2[0]
    with pytest.raises(AttributeError):
        entry.jj_count = 0
