"""Power models: Table 3 calibration and the Fig 21 envelope."""

import pytest

from repro.errors import ConfigurationError
from repro.models import power
from repro.units import to_mw, to_nw


def test_table3_multiplier_row():
    assert to_mw(power.multiplier_active_w()) == pytest.approx(9e-5, rel=0.05)
    assert to_mw(power.MULTIPLIER_PASSIVE_W) == pytest.approx(0.05)


def test_table3_balancer_row():
    assert to_mw(power.balancer_active_w()) == pytest.approx(17e-5, rel=0.05)
    assert to_mw(power.BALANCER_PASSIVE_W) == pytest.approx(0.1)


def test_table3_dpu_row_composes():
    active = power.dpu_active_w(32)
    passive = power.dpu_passive_w(32)
    assert to_mw(active) == pytest.approx(84e-4, rel=0.1)
    assert to_mw(passive) == pytest.approx(4.8, rel=0.05)
    assert active == pytest.approx(
        32 * power.multiplier_active_w() + 31 * power.balancer_active_w()
    )


def test_active_power_scales_with_activity():
    assert power.multiplier_active_w(1.0) == pytest.approx(
        2 * power.multiplier_active_w(0.5)
    )
    assert power.multiplier_active_w(0.0) == 0.0


def test_fig21_envelope():
    assert to_nw(power.bipolar_multiplier_active_w(-1, -1)) == pytest.approx(135)
    assert to_nw(power.bipolar_multiplier_active_w(1, -1)) == pytest.approx(68)
    assert to_nw(power.bipolar_multiplier_active_w(-1, 1)) == pytest.approx(68)
    assert to_nw(power.bipolar_multiplier_active_w(1, 1)) == pytest.approx(135)


def test_fig21_zero_stream_is_flat():
    values = [
        power.bipolar_multiplier_active_w(rl / 10, 0.0) for rl in range(-10, 11)
    ]
    assert max(values) - min(values) < 1e-12
    assert to_nw(values[0]) == pytest.approx(101.5)


def test_activity_fraction_bounds():
    assert power.bipolar_multiplier_activity(0.0, 0.0) == pytest.approx(0.5)
    assert 0.0 <= power.bipolar_multiplier_activity(0.3, -0.7) <= 1.0
    with pytest.raises(ConfigurationError):
        power.bipolar_multiplier_activity(2.0, 0.0)


def test_passive_fallback_per_jj():
    # Calibrated so 46 JJs -> 0.05 mW.
    assert to_mw(power.passive_power_w(46)) == pytest.approx(0.05)


def test_ersfq_removes_passive_power():
    assert power.ersfq_power_w(1e-6) == 1e-6


def test_table3_rows_structure():
    rows = power.table3_rows(32)
    assert [r.component for r in rows] == [
        "multiplier", "balancer", "dpu-32 w/o cooling",
    ]
    assert all(r.total_w == r.active_w + r.passive_w for r in rows)


def test_validation():
    with pytest.raises(ConfigurationError):
        power.multiplier_active_w(1.5)
    with pytest.raises(ConfigurationError):
        power.dpu_active_w(1)
    with pytest.raises(ConfigurationError):
        power.passive_power_w(-1)
    with pytest.raises(ConfigurationError):
        power.active_power_w(0, 1_000, 0.5)
