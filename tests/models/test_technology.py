"""Technology constants: the paper's stated anchors."""

import pytest

from repro.models import technology as tech
from repro.units import frequency_ghz


def test_paper_stated_delays():
    assert tech.T_INV_FS == 9_000    # 9 ps inverter (section 4.1)
    assert tech.T_BFF_FS == 12_000   # 12 ps BFF transition (section 4.2)
    assert tech.T_TFF2_FS == 20_000  # 20 ps TFF2 (section 5.4.2)


def test_inverter_rate_is_111ghz():
    assert frequency_ghz(tech.T_INV_FS) == pytest.approx(111.1, abs=0.1)


def test_merger_dead_time_is_its_intrinsic_delay():
    assert tech.T_MERGER_DEAD_FS == tech.T_MERGER_FS


def test_paper_stated_cell_jjs():
    assert tech.JJ_MERGER == 5  # Fig 5a
    assert tech.JJ_FA == 8      # section 2.2.1


def test_switching_energy_is_physical():
    # I_c * Phi_0 for ~100 uA: 1e-4 A * 2.07e-15 Wb ~ 2e-19 J.
    assert 1e-19 < tech.E_SWITCH_J < 5e-19


def test_passive_power_calibration():
    # 46 JJs at the per-JJ rate reproduce the Table 3 multiplier row.
    assert 46 * tech.P_PASSIVE_PER_JJ_W == pytest.approx(0.05e-3)


def test_fig21_envelope_constants():
    assert tech.P_MULT_ACTIVE_MIN_W == pytest.approx(68e-9)
    assert tech.P_MULT_ACTIVE_MAX_W == pytest.approx(135e-9)


def test_process_catalogue():
    assert len(tech.PROCESSES) == 3
    assert tech.MITLL_SFQ5EE in tech.PROCESSES
    for process in tech.PROCESSES:
        assert process.max_practical_jjs > 0
        assert process.name in process.describe()


def test_ersfq_area_factor():
    assert tech.ERSFQ_AREA_FACTOR == pytest.approx(1.4)
