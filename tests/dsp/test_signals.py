"""Signal synthesis."""

import numpy as np
import pytest

from repro.dsp.signals import paper_input, sine, superposition, time_axis
from repro.errors import ConfigurationError


def test_time_axis():
    t = time_axis(4, 1_000.0)
    assert np.allclose(t, [0, 0.001, 0.002, 0.003])
    with pytest.raises(ConfigurationError):
        time_axis(0, 1_000.0)
    with pytest.raises(ConfigurationError):
        time_axis(4, 0.0)


def test_sine_frequency_and_amplitude():
    fs = 8_000.0
    x = sine(1_000.0, 8_000, fs, amplitude=0.5)
    assert np.max(x) == pytest.approx(0.5, abs=1e-3)
    # Count zero crossings: 2 per cycle, 1000 cycles in 1 s.
    crossings = np.sum(np.diff(np.signbit(x)))
    assert crossings == pytest.approx(2_000, abs=2)


def test_sine_rejects_negative_frequency():
    with pytest.raises(ConfigurationError):
        sine(-1.0, 10, 100.0)


def test_superposition_normalised_to_unit_peak():
    x = superposition([1_000.0, 3_000.0], 2_000, 20_000.0)
    assert np.max(np.abs(x)) == pytest.approx(1.0)


def test_superposition_unnormalised():
    x = superposition([1_000.0], 2_000, 20_000.0, normalise=False, amplitudes=[2.0])
    assert np.max(np.abs(x)) == pytest.approx(2.0, abs=1e-3)


def test_superposition_validation():
    with pytest.raises(ConfigurationError):
        superposition([], 100, 1_000.0)
    with pytest.raises(ConfigurationError):
        superposition([1.0, 2.0], 100, 1_000.0, amplitudes=[1.0])


def test_paper_input_in_range():
    x = paper_input()
    assert x.size == 4_000
    assert np.max(np.abs(x)) <= 1.0


def test_paper_input_contains_all_four_tones():
    x = paper_input(n_samples=8_000)
    spectrum = np.abs(np.fft.rfft(x))
    freqs = np.fft.rfftfreq(x.size, d=1 / 20_000.0)
    for tone in (1_000, 7_000, 8_000, 9_000):
        bin_index = int(np.argmin(np.abs(freqs - tone)))
        assert spectrum[bin_index] > 0.2 * np.max(spectrum)
