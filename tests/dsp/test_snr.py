"""SNR and spectra."""

import numpy as np
import pytest

from repro.dsp.snr import snr_db, spectrum, tone_power_db
from repro.errors import ConfigurationError


def test_perfect_match_is_infinite():
    x = np.sin(np.linspace(0, 10, 100))
    assert snr_db(x, x.copy()) == float("inf")


def test_known_snr():
    rng = np.random.default_rng(0)
    signal = np.sin(np.linspace(0, 200, 20_000))
    noise = rng.normal(0, np.sqrt(0.5) / 10, signal.size)  # 20 dB down
    assert snr_db(signal, signal + noise) == pytest.approx(20.0, abs=0.3)


def test_skip_excludes_transient():
    signal = np.ones(100)
    measured = signal.copy()
    measured[:10] = 0  # start-up garbage
    assert snr_db(signal, measured, skip=10) == float("inf")
    assert snr_db(signal, measured) < 20


def test_snr_validation():
    with pytest.raises(ConfigurationError):
        snr_db(np.ones(5), np.ones(6))
    with pytest.raises(ConfigurationError):
        snr_db(np.zeros(5), np.ones(5))
    with pytest.raises(ConfigurationError):
        snr_db(np.ones(5), np.ones(5), skip=5)


def test_spectrum_peaks_at_tone():
    fs = 8_000.0
    t = np.arange(4_096) / fs
    x = np.sin(2 * np.pi * 1_000.0 * t)
    freqs, mag_db = spectrum(x, fs)
    peak_freq = freqs[int(np.argmax(mag_db))]
    assert peak_freq == pytest.approx(1_000.0, abs=5.0)
    assert np.max(mag_db) == pytest.approx(0.0)


def test_spectrum_of_silence():
    freqs, mag_db = spectrum(np.zeros(256), 1_000.0)
    assert np.all(mag_db == -200.0)


def test_tone_power_db():
    fs = 8_000.0
    t = np.arange(4_096) / fs
    x = np.sin(2 * np.pi * 1_000.0 * t) + 0.01 * np.sin(2 * np.pi * 3_000.0 * t)
    assert tone_power_db(x, fs, 1_000.0) == pytest.approx(0.0, abs=0.5)
    assert tone_power_db(x, fs, 3_000.0) < -30
    with pytest.raises(ConfigurationError):
        # 1000.3 Hz falls between bins (spacing ~1.95 Hz), so a sub-bin
        # bandwidth matches nothing.
        tone_power_db(x, fs, 1_000.3, bandwidth_hz=0.0001)


def test_spectrum_validation():
    with pytest.raises(ConfigurationError):
        spectrum(np.ones(1), 100.0)
    with pytest.raises(ConfigurationError):
        spectrum(np.ones(10), 0.0)
