"""Windowed-sinc FIR design."""

import numpy as np
import pytest

from repro.dsp.firdesign import design_lowpass, frequency_response, hamming_window
from repro.errors import ConfigurationError


def test_hamming_window_endpoints_and_symmetry():
    w = hamming_window(16)
    assert w[0] == pytest.approx(0.08, abs=1e-9)
    assert np.allclose(w, w[::-1])
    assert np.max(w) <= 1.0
    assert hamming_window(1).tolist() == [1.0]
    with pytest.raises(ConfigurationError):
        hamming_window(0)


def test_lowpass_unit_dc_gain():
    h = design_lowpass(16, 3_000.0, 20_000.0)
    assert np.sum(h) == pytest.approx(1.0)


def test_lowpass_is_linear_phase():
    h = design_lowpass(17, 3_000.0, 20_000.0)
    assert np.allclose(h, h[::-1])


def test_lowpass_passes_low_and_rejects_high():
    fs = 20_000.0
    h = design_lowpass(33, 3_000.0, fs)
    freqs, magnitude = frequency_response(h, fs)
    gain_at = lambda f: np.interp(f, freqs, magnitude)
    assert gain_at(500.0) == pytest.approx(1.0, abs=0.05)
    assert gain_at(8_000.0) < 0.05


def test_cutoff_is_minus_6db_point():
    fs = 20_000.0
    h = design_lowpass(65, 5_000.0, fs)
    freqs, magnitude = frequency_response(h, fs)
    assert np.interp(5_000.0, freqs, magnitude) == pytest.approx(0.5, abs=0.05)


def test_scale_parameter():
    h = design_lowpass(16, 3_000.0, 20_000.0, scale=0.5)
    assert np.sum(h) == pytest.approx(0.5)


def test_design_validation():
    with pytest.raises(ConfigurationError):
        design_lowpass(1, 3_000.0, 20_000.0)
    with pytest.raises(ConfigurationError):
        design_lowpass(16, 0.0, 20_000.0)
    with pytest.raises(ConfigurationError):
        design_lowpass(16, 11_000.0, 20_000.0)  # beyond Nyquist


def test_frequency_response_validation():
    with pytest.raises(ConfigurationError):
        frequency_response(np.zeros((2, 2)), 20_000.0)
