"""Fixed-point and unary quantisers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp.quantize import (
    quantisation_snr_db,
    quantise_fixed_point,
    quantise_unary_bipolar,
)
from repro.errors import ConfigurationError


@given(
    bits=st.integers(min_value=2, max_value=16),
    value=st.floats(min_value=-1.0, max_value=1.0),
)
def test_fixed_point_error_bounded(bits, value):
    scale = 1 << (bits - 1)
    got = float(quantise_fixed_point(np.array([value]), bits)[0])
    # One LSB, except at +1.0 which clips to the largest positive code.
    assert abs(got - value) <= 1.0 / scale + 1e-12


@given(
    bits=st.integers(min_value=2, max_value=16),
    value=st.floats(min_value=-1.0, max_value=1.0),
)
def test_unary_error_bounded(bits, value):
    n_max = 1 << bits
    got = float(quantise_unary_bipolar(np.array([value]), bits)[0])
    assert abs(got - value) <= 1.0 / n_max + 1e-12


def test_fixed_point_two_complement_asymmetry():
    assert quantise_fixed_point(np.array([1.0]), 8)[0] == pytest.approx(127 / 128)
    assert quantise_fixed_point(np.array([-1.0]), 8)[0] == -1.0


def test_unary_symmetric_endpoints():
    assert quantise_unary_bipolar(np.array([-1.0, 1.0]), 8).tolist() == [-1.0, 1.0]


def test_quantisation_snr_improves_with_bits():
    x = np.sin(np.linspace(0, 40, 5_000)) * 0.9
    assert quantisation_snr_db(x, 12) > quantisation_snr_db(x, 6) + 30


def test_quantisation_snr_unary_flag():
    x = np.sin(np.linspace(0, 40, 5_000)) * 0.9
    assert quantisation_snr_db(x, 8, unary=True) > quantisation_snr_db(x, 8) - 1


def test_bits_validation():
    with pytest.raises(ConfigurationError):
        quantise_fixed_point(np.zeros(3), 1)
    with pytest.raises(ConfigurationError):
        quantise_unary_bipolar(np.zeros(3), 25)
