"""The section 5.4.1 golden reference."""

import numpy as np
import pytest

from repro.dsp.golden import PAPER_CUTOFF_HZ, make_golden_reference


def test_golden_snr_matches_paper():
    golden = make_golden_reference()
    assert golden.golden_snr_db == pytest.approx(25.7, abs=0.5)


def test_components():
    golden = make_golden_reference()
    assert golden.x.size == 4_000
    assert golden.h.size == 16
    assert golden.y.size == golden.x.size
    assert golden.target.size == golden.x.size
    assert np.max(np.abs(golden.x)) <= 1.0


def test_filter_recovers_the_1khz_tone():
    golden = make_golden_reference()
    from repro.dsp.snr import tone_power_db

    region = golden.y[golden.skip:]
    assert tone_power_db(region, golden.sample_rate_hz, 1_000.0) == pytest.approx(0.0, abs=0.5)
    # High tones attenuated well below the 1 kHz peak.
    assert tone_power_db(region, golden.sample_rate_hz, 8_000.0) < -20


def test_target_is_a_pure_tone():
    golden = make_golden_reference()
    spectrum = np.abs(np.fft.rfft(golden.target))
    freqs = np.fft.rfftfreq(golden.target.size, d=1 / golden.sample_rate_hz)
    peak = freqs[int(np.argmax(spectrum))]
    assert peak == pytest.approx(1_000.0, abs=10.0)


def test_custom_parameters():
    golden = make_golden_reference(n_samples=1_000, taps=8, cutoff_hz=4_000.0)
    assert golden.h.size == 8
    assert golden.x.size == 1_000


def test_coefficients_fit_unary_range():
    golden = make_golden_reference(coefficient_scale=1.0)
    assert np.all(np.abs(golden.h) <= 1.0)
    assert PAPER_CUTOFF_HZ == 5_500.0
