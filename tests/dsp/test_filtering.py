"""Streaming FIR wrapper: chunking invariance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fir import UnaryFirFilter
from repro.dsp.filtering import StreamingFir, process_in_chunks
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def _fir(bits=10):
    return UnaryFirFilter(
        EpochSpec(bits), [0.1, 0.3, 0.3, 0.1], exact_counting=False
    )


def _signal(n=120):
    return np.sin(np.linspace(0, 6 * np.pi, n)) * 0.7


@settings(deadline=None, max_examples=20)
@given(chunk=st.integers(min_value=1, max_value=50))
def test_any_chunking_matches_batch(chunk):
    x = _signal()
    batch = _fir().process(x)
    streamed = process_in_chunks(_fir(), x, chunk)
    assert np.allclose(streamed, batch)


def test_sample_at_a_time():
    x = _signal(40)
    batch = _fir().process(x)
    streamer = StreamingFir(_fir())
    outputs = [streamer.push(float(v)) for v in x]
    assert np.allclose(outputs, batch)
    assert streamer.samples_processed == 40


def test_reset_clears_the_delay_line():
    streamer = StreamingFir(_fir())
    streamer.push_block(_signal(10))
    streamer.reset()
    fresh = StreamingFir(_fir())
    x = _signal(20)
    assert np.allclose(streamer.push_block(x), fresh.push_block(x))


def test_exact_counting_mode_streams_too():
    fir_a = UnaryFirFilter(EpochSpec(6), [0.2, 0.4, 0.2], exact_counting=True)
    fir_b = UnaryFirFilter(EpochSpec(6), [0.2, 0.4, 0.2], exact_counting=True)
    x = _signal(30)
    assert np.allclose(process_in_chunks(fir_a, x, 7), fir_b.process(x))


def test_error_injecting_filters_rejected():
    noisy = UnaryFirFilter(
        EpochSpec(8), [0.5, 0.5], pulse_loss_rate=0.1, exact_counting=False
    )
    with pytest.raises(ConfigurationError, match="error-free"):
        StreamingFir(noisy)


def test_chunk_validation():
    with pytest.raises(ConfigurationError):
        process_in_chunks(_fir(), _signal(10), 0)
    streamer = StreamingFir(_fir())
    with pytest.raises(ConfigurationError):
        streamer.push_block(np.zeros((2, 2)))
    assert streamer.push_block([]).size == 0
