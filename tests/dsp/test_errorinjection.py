"""Error-injection sweeps (the Fig 19 drivers)."""

import numpy as np
import pytest

from repro.dsp import errorinjection as ei
from repro.dsp.golden import make_golden_reference
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def golden():
    return make_golden_reference(n_samples=1_200)


RATES = (0.0, 0.1, 0.3)


def test_binary_sweep_monotone_degradation(golden):
    sweep = ei.sweep_binary_bit_flips(golden, 16, RATES, trials=3)
    assert sweep.mean_db[0] > sweep.mean_db[1] > sweep.mean_db[2]
    assert len(sweep.error_rates) == 3
    assert all(lo <= hi for lo, hi in zip(sweep.min_db, sweep.max_db))


def test_unary_pulse_loss_degrades_gently(golden):
    sweep = ei.sweep_unary_errors(golden, 16, RATES, "pulse_loss", trials=3)
    drop = sweep.mean_db[0] - sweep.mean_db[-1]
    assert 0.0 < drop < 8.0  # the paper's ~4 dB at 30 %


def test_unary_beats_binary_under_errors(golden):
    binary = ei.sweep_binary_bit_flips(golden, 16, RATES, trials=3)
    unary = ei.sweep_unary_errors(golden, 16, RATES, "pulse_loss", trials=3)
    assert unary.mean_db[-1] > binary.mean_db[-1] + 10


def test_rl_loss_is_catastrophic(golden):
    sweep = ei.sweep_unary_errors(golden, 16, (0.0, 0.05), "rl_loss", trials=3)
    assert sweep.mean_db[0] - sweep.mean_db[1] > 10


def test_unknown_mode_rejected(golden):
    with pytest.raises(ConfigurationError):
        ei.sweep_unary_errors(golden, 16, RATES, "gamma_rays")


def test_binary_distribution_shape(golden):
    samples = ei.binary_snr_distribution(golden, 16, 0.01, trials=10)
    assert samples.shape == (10,)
    assert np.all(np.isfinite(samples))


def test_spectra_under_error_keys(golden):
    outputs = ei.unary_spectra_under_error(golden, 12, (0.0, 0.25))
    assert set(outputs) == {0.0, 0.25}
    assert outputs[0.0].shape == golden.x.shape


def test_sweep_reproducible(golden):
    a = ei.sweep_unary_errors(golden, 12, (0.2,), "pulse_loss", trials=2, seed=5)
    b = ei.sweep_unary_errors(golden, 12, (0.2,), "pulse_loss", trials=2, seed=5)
    assert a.mean_db == b.mean_db
