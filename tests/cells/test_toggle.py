"""TFF and TFF2 toggling."""

from hypothesis import given, strategies as st

from repro.cells.toggle import Tff, Tff2
from repro.pulsesim import Circuit, Simulator


def _run_tff(n_pulses):
    circuit = Circuit()
    cell = circuit.add(Tff("t"))
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_train(cell, "a", [k * 10_000 for k in range(n_pulses)])
    sim.run()
    return probe


def _run_tff2(n_pulses):
    circuit = Circuit()
    cell = circuit.add(Tff2("t"))
    p1 = circuit.probe(cell, "q1")
    p2 = circuit.probe(cell, "q2")
    sim = Simulator(circuit)
    sim.schedule_train(cell, "a", [k * 10_000 for k in range(n_pulses)])
    sim.run()
    return p1, p2


@given(st.integers(min_value=0, max_value=64))
def test_tff_divides_by_two(n_pulses):
    assert _run_tff(n_pulses).count() == n_pulses // 2


@given(st.integers(min_value=0, max_value=64))
def test_tff2_splits_alternately(n_pulses):
    p1, p2 = _run_tff2(n_pulses)
    assert p1.count() == (n_pulses + 1) // 2  # q1 gets the first pulse
    assert p2.count() == n_pulses // 2
    assert p1.count() + p2.count() == n_pulses  # no pulse lost


def test_tff2_first_pulse_goes_to_q1():
    p1, p2 = _run_tff2(1)
    assert p1.count() == 1
    assert p2.count() == 0


def test_tff2_streams_interleave_in_time():
    p1, p2 = _run_tff2(6)
    merged = sorted((t, "q1") for t in p1.times) + sorted((t, "q2") for t in p2.times)
    merged.sort()
    assert [port for _, port in merged] == ["q1", "q2", "q1", "q2", "q1", "q2"]


def test_reset_restores_phase():
    circuit = Circuit()
    cell = circuit.add(Tff2("t"))
    p1 = circuit.probe(cell, "q1")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 0)
    sim.run()
    sim.reset()
    sim.schedule_input(cell, "a", 0)
    sim.run()
    assert p1.count() == 1  # phase restarted at q1
