"""Cell catalogue consistency with the behavioural classes (Table 1)."""

import pytest

from repro import cells
from repro.cells.library import CELL_SPECS, cell_spec


CLASS_FOR_NAME = {
    "jtl": cells.Jtl,
    "splitter": cells.Splitter,
    "merger": cells.Merger,
    "fa": cells.FirstArrival,
    "la": cells.LastArrival,
    "dff": cells.Dff,
    "dff2": cells.Dff2,
    "tff": cells.Tff,
    "tff2": cells.Tff2,
    "ndro": cells.Ndro,
    "inverter": cells.Inverter,
    "bff": cells.Bff,
    "mux": cells.Mux,
    "demux": cells.Demux,
    "and": cells.ClockedAnd,
    "or": cells.ClockedOr,
    "xor": cells.ClockedXor,
}


def test_every_catalogue_entry_has_a_class():
    assert set(CELL_SPECS) == set(CLASS_FOR_NAME)


@pytest.mark.parametrize("name", sorted(CELL_SPECS))
def test_jj_counts_agree(name):
    assert CLASS_FOR_NAME[name](name).jj_count == CELL_SPECS[name].jj_count


def test_paper_stated_jj_counts():
    assert cell_spec("merger").jj_count == 5   # Fig 5a
    assert cell_spec("fa").jj_count == 8       # section 2.2.1 ([51])


def test_unknown_cell_raises_with_known_list():
    with pytest.raises(KeyError, match="known cells"):
        cell_spec("squid")


def test_summaries_are_nonempty():
    assert all(spec.summary for spec in CELL_SPECS.values())
    assert all(spec.delay_fs > 0 for spec in CELL_SPECS.values())
