"""The B flip-flop primitive."""

from repro.cells.bff import Bff
from repro.pulsesim import Circuit, Simulator


def _run(events):
    """events: list of (port, time); returns dict of output pulse counts."""
    circuit = Circuit()
    cell = circuit.add(Bff("bff"))
    probes = {port: circuit.probe(cell, port) for port in cell.output_names}
    sim = Simulator(circuit)
    for port, time in events:
        sim.schedule_input(cell, port, time)
    sim.run()
    return cell, {port: probe.count() for port, probe in probes.items()}


def test_set_from_zero_emits_direct_output():
    cell, counts = _run([("s1", 0)])
    assert counts == {"q1": 1, "nq1": 0, "q2": 0, "nq2": 0}
    assert cell.state == 1


def test_set_when_already_one_is_absorbed():
    cell, counts = _run([("s1", 0), ("s2", 10_000)])
    assert counts["q1"] == 1
    assert counts["q2"] == 0
    assert cell.state == 1


def test_reset_from_one_emits_complementary_output():
    cell, counts = _run([("s1", 0), ("r2", 10_000)])
    assert counts["nq2"] == 1
    assert cell.state == 0


def test_reset_when_already_zero_is_absorbed():
    cell, counts = _run([("r1", 0)])
    assert sum(counts.values()) == 0
    assert cell.state == 0


def test_naive_split_wiring_double_acts():
    # Feeding one input pulse to both S1 and R2 as independent events makes
    # the loop set *and* reset (two control pulses per input) — the reason
    # the balancer models its routing unit as a single cell that performs
    # one state-dependent action per physical pulse (core.balancer).
    cell, counts = _run([("s1", 0), ("r2", 1)])
    assert counts["q1"] == 1
    assert counts["nq2"] == 1
    assert cell.state == 0


def test_reset_method_restores_zero():
    circuit = Circuit()
    cell = circuit.add(Bff("bff"))
    sim = Simulator(circuit)
    sim.schedule_input(cell, "s1", 0)
    sim.run()
    assert cell.state == 1
    cell.reset()
    assert cell.state == 0
