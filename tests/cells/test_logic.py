"""Clocked inverter and first-arrival gate."""

from hypothesis import given, strategies as st

from repro.cells.logic import FirstArrival, Inverter, LastArrival
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import uniform_stream_times


def _run_inverter(data_times, clock_times_list):
    circuit = Circuit()
    cell = circuit.add(Inverter("inv"))
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_train(cell, "a", data_times)
    sim.schedule_train(cell, "clk", clock_times_list)
    sim.run()
    return probe


@given(
    bits=st.integers(min_value=1, max_value=7),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_inverter_emits_complement_count(bits, fraction):
    """With the clock at the maximum rate, output count = n_max - n."""
    n_max = 1 << bits
    n = round(fraction * n_max)
    slot = 12_000
    data = uniform_stream_times(n, n_max, slot)
    # Clock samples each slot shortly after the data pulse would arrive.
    clock = [t + 1_000 for t in uniform_stream_times(n_max, n_max, slot)]
    probe = _run_inverter(data, clock)
    assert probe.count() == n_max - n


def test_inverter_emits_on_clock_without_data():
    probe = _run_inverter([], [0, 10_000, 20_000])
    assert probe.count() == 3


def test_inverter_data_suppresses_next_clock_only():
    probe = _run_inverter([5_000], [0, 10_000, 20_000])
    # Clock at 0 fires (nothing seen yet); 10k suppressed; 20k fires.
    assert probe.count() == 2


def test_inverter_same_time_data_wins():
    # Data priority 0 < clk priority 1: a data pulse landing with the
    # clock suppresses that clock tick.
    probe = _run_inverter([10_000], [10_000])
    assert probe.count() == 0


class TestLastArrival:
    def _run(self, a_times, b_times, reset_times=()):
        circuit = Circuit()
        cell = circuit.add(LastArrival("la"))
        probe = circuit.probe(cell, "q")
        sim = Simulator(circuit)
        sim.schedule_train(cell, "a", a_times)
        sim.schedule_train(cell, "b", b_times)
        sim.schedule_train(cell, "reset", reset_times)
        sim.run()
        return cell, probe

    def test_fires_at_the_later_pulse(self):
        cell, probe = self._run([10_000], [40_000])
        assert probe.times == [40_000 + cell.delay]

    @given(
        a=st.integers(min_value=0, max_value=100),
        b=st.integers(min_value=0, max_value=100),
    )
    def test_computes_race_logic_max(self, a, b):
        slot = 12_000
        cell, probe = self._run([a * slot], [b * slot])
        assert probe.count() == 1
        assert (probe.first() - cell.delay) // slot == max(a, b)

    def test_single_input_never_fires(self):
        _, probe = self._run([10_000], [])
        assert probe.count() == 0

    def test_fires_once_per_epoch_until_reset(self):
        _, probe = self._run([10_000, 50_000], [20_000, 60_000])
        assert probe.count() == 1
        _, probe = self._run([10_000, 50_000], [20_000, 60_000], reset_times=[30_000])
        assert probe.count() == 2


class TestFirstArrival:
    def _run(self, a_times, b_times, reset_times=()):
        circuit = Circuit()
        cell = circuit.add(FirstArrival("fa"))
        probe = circuit.probe(cell, "q")
        sim = Simulator(circuit)
        sim.schedule_train(cell, "a", a_times)
        sim.schedule_train(cell, "b", b_times)
        sim.schedule_train(cell, "reset", reset_times)
        sim.run()
        return cell, probe

    def test_first_pulse_wins(self):
        cell, probe = self._run([30_000], [20_000])
        assert probe.count() == 1
        assert probe.first() == 20_000 + cell.delay

    @given(
        a=st.integers(min_value=0, max_value=100),
        b=st.integers(min_value=0, max_value=100),
    )
    def test_computes_race_logic_min(self, a, b):
        slot = 12_000
        cell, probe = self._run([a * slot], [b * slot])
        assert probe.count() == 1
        assert (probe.first() - cell.delay) // slot == min(a, b)

    def test_rearms_after_reset(self):
        _, probe = self._run([10_000, 50_000], [], reset_times=[30_000])
        assert probe.count() == 2

    def test_only_first_pulse_per_epoch(self):
        _, probe = self._run([10_000, 20_000], [15_000])
        assert probe.count() == 1
