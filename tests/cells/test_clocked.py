"""Clocked Boolean gates (the binary RSFQ logic style)."""

import pytest
from hypothesis import given, strategies as st

from repro.cells.clocked import ClockedAnd, ClockedOr, ClockedXor
from repro.pulsesim import Circuit, Simulator

GATES = {
    ClockedAnd: lambda a, b: a and b,
    ClockedOr: lambda a, b: a or b,
    ClockedXor: lambda a, b: a != b,
}


def _run_cycle(gate_class, a, b):
    circuit = Circuit()
    gate = circuit.add(gate_class("g"))
    probe = circuit.probe(gate, "q")
    sim = Simulator(circuit)
    if a:
        sim.schedule_input(gate, "a", 0)
    if b:
        sim.schedule_input(gate, "b", 0)
    sim.schedule_input(gate, "clk", 10_000)
    sim.run()
    return probe.count()


@pytest.mark.parametrize("gate_class", GATES)
@pytest.mark.parametrize("a", (False, True))
@pytest.mark.parametrize("b", (False, True))
def test_truth_tables(gate_class, a, b):
    expected = 1 if GATES[gate_class](a, b) else 0
    assert _run_cycle(gate_class, a, b) == expected


def test_clock_clears_latches():
    circuit = Circuit()
    gate = circuit.add(ClockedAnd("g"))
    probe = circuit.probe(gate, "q")
    sim = Simulator(circuit)
    sim.schedule_input(gate, "a", 0)
    sim.schedule_input(gate, "b", 0)
    sim.schedule_input(gate, "clk", 10_000)  # fires
    sim.schedule_input(gate, "clk", 20_000)  # latches cleared -> silent
    sim.run()
    assert probe.count() == 1


@given(st.lists(st.sampled_from(["a", "b", "clk"]), max_size=12))
def test_multi_cycle_sequences_match_model(events):
    circuit = Circuit()
    gate = circuit.add(ClockedXor("g"))
    probe = circuit.probe(gate, "q")
    sim = Simulator(circuit)
    # Software model of the latch-and-evaluate behaviour.
    a = b = False
    expected = 0
    for i, port in enumerate(events):
        sim.schedule_input(gate, port, (i + 1) * 10_000)
        if port == "a":
            a = True
        elif port == "b":
            b = True
        else:
            expected += 1 if a != b else 0
            a = b = False
    sim.run()
    assert probe.count() == expected


def test_inputs_latch_until_clock():
    circuit = Circuit()
    gate = circuit.add(ClockedOr("g"))
    probe = circuit.probe(gate, "q")
    sim = Simulator(circuit)
    sim.schedule_input(gate, "a", 0)
    sim.schedule_input(gate, "clk", 90_000)  # long after the input
    sim.run()
    assert probe.count() == 1


def test_reset_clears_state():
    gate = ClockedAnd("g")
    gate._a = gate._b = True
    gate.reset()
    assert not gate._a and not gate._b
