"""RSFQ mux/demux routing."""

from repro.cells.mux import Demux, Mux
from repro.pulsesim import Circuit, Simulator


def test_demux_routes_by_selection():
    circuit = Circuit()
    cell = circuit.add(Demux("d"))
    p0 = circuit.probe(cell, "q0")
    p1 = circuit.probe(cell, "q1")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 1_000)          # default channel 0
    sim.schedule_input(cell, "sel1", 5_000)
    sim.schedule_input(cell, "a", 10_000)         # channel 1
    sim.schedule_input(cell, "sel0", 15_000)
    sim.schedule_input(cell, "a", 20_000)         # channel 0 again
    sim.run()
    assert p0.count() == 2
    assert p1.count() == 1


def test_mux_passes_only_selected_channel():
    circuit = Circuit()
    cell = circuit.add(Mux("m"))
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a0", 1_000)   # selected (default 0)
    sim.schedule_input(cell, "a1", 2_000)   # ignored
    sim.schedule_input(cell, "sel1", 5_000)
    sim.schedule_input(cell, "a1", 10_000)  # selected now
    sim.schedule_input(cell, "a0", 11_000)  # ignored
    sim.run()
    assert probe.count() == 2


def test_select_applies_before_simultaneous_data():
    circuit = Circuit()
    cell = circuit.add(Demux("d"))
    p1 = circuit.probe(cell, "q1")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 5_000)
    sim.schedule_input(cell, "sel1", 5_000)  # priority 0 beats data
    sim.run()
    assert p1.count() == 1


def test_reset_restores_channel_zero():
    circuit = Circuit()
    cell = circuit.add(Mux("m"))
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "sel1", 0)
    sim.run()
    sim.reset()
    sim.schedule_input(cell, "a0", 1_000)
    sim.run()
    assert probe.count() == 1
