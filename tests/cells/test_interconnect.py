"""JTL, splitter, merger semantics."""


from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.models import technology as tech
from repro.pulsesim import Circuit, Simulator


def _single_cell(cell):
    circuit = Circuit()
    circuit.add(cell)
    return circuit


def test_jtl_delays_each_pulse():
    cell = Jtl("j", delay=2_000)
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_train(cell, "a", [0, 10_000])
    sim.run()
    assert probe.times == [2_000, 12_000]


def test_splitter_duplicates_to_both_outputs():
    cell = Splitter("s", delay=3_000)
    circuit = _single_cell(cell)
    p1 = circuit.probe(cell, "q1")
    p2 = circuit.probe(cell, "q2")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 100)
    sim.run()
    assert p1.times == [3_100]
    assert p2.times == [3_100]


def test_merger_passes_well_spaced_pulses():
    cell = Merger("m")
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 0)
    sim.schedule_input(cell, "b", 50_000)
    sim.run()
    assert probe.count() == 2
    assert cell.collisions == 0


def test_merger_drops_pulse_within_dead_time():
    cell = Merger("m", dead_time=5_000)
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 0)
    sim.schedule_input(cell, "b", 4_999)
    sim.run()
    assert probe.count() == 1
    assert cell.collisions == 1


def test_merger_accepts_pulse_at_exactly_dead_time():
    cell = Merger("m", dead_time=5_000)
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 0)
    sim.schedule_input(cell, "b", 5_000)
    sim.run()
    assert probe.count() == 2


def test_merger_simultaneous_pulses_collide():
    cell = Merger("m")
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 1_000)
    sim.schedule_input(cell, "b", 1_000)
    sim.run()
    assert probe.count() == 1
    assert cell.collisions == 1


def test_merger_dead_time_window_slides():
    # Three pulses each 3 ps apart with a 5 ps dead time: the second is
    # absorbed, the third lands 6 ps after the last *accepted* pulse.
    cell = Merger("m", dead_time=5_000)
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    for t in (0, 3_000, 6_000):
        sim.schedule_input(cell, "a", t)
    sim.run()
    assert probe.count() == 2
    assert cell.collisions == 1


def test_ideal_merger_never_collides():
    cell = IdealMerger("m")
    circuit = _single_cell(cell)
    probe = circuit.probe(cell, "q")
    sim = Simulator(circuit)
    sim.schedule_input(cell, "a", 0)
    sim.schedule_input(cell, "b", 0)
    sim.run()
    assert probe.count() == 2


def test_jj_counts_match_catalogue():
    assert Jtl("j").jj_count == tech.JJ_JTL
    assert Splitter("s").jj_count == tech.JJ_SPLITTER
    assert Merger("m").jj_count == tech.JJ_MERGER == 5  # paper Fig 5a
