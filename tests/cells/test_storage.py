"""DFF, DFF2, NDRO semantics and tie-break priorities."""

from repro.cells.storage import Dff, Dff2, Ndro
from repro.pulsesim import Circuit, Simulator


def _wire(cell):
    circuit = Circuit()
    circuit.add(cell)
    return circuit, Simulator(circuit)


class TestDff:
    def test_clock_reads_and_clears(self):
        cell = Dff("d")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "d", 0)
        sim.schedule_train(cell, "clk", [10_000, 20_000])
        sim.run()
        assert probe.count() == 1  # second read finds it empty

    def test_clock_without_data_is_silent(self):
        cell = Dff("d")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "clk", 10_000)
        sim.run()
        assert probe.count() == 0

    def test_simultaneous_set_and_read_captures(self):
        cell = Dff("d")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "clk", 5_000)
        sim.schedule_input(cell, "d", 5_000)  # d has priority 0 < clk
        sim.run()
        assert probe.count() == 1

    def test_double_set_stores_single_token(self):
        cell = Dff("d")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_train(cell, "d", [0, 1_000])
        sim.schedule_train(cell, "clk", [10_000, 20_000])
        sim.run()
        assert probe.count() == 1


class TestDff2:
    def test_c1_reads_to_y1_and_c2_to_y2(self):
        cell = Dff2("d")
        circuit, sim = _wire(cell)
        p1 = circuit.probe(cell, "y1")
        p2 = circuit.probe(cell, "y2")
        sim.schedule_input(cell, "a", 0)
        sim.schedule_input(cell, "c1", 10_000)
        sim.schedule_input(cell, "a", 20_000)
        sim.schedule_input(cell, "c2", 30_000)
        sim.run()
        assert p1.count() == 1
        assert p2.count() == 1

    def test_read_is_destructive(self):
        cell = Dff2("d")
        circuit, sim = _wire(cell)
        p1 = circuit.probe(cell, "y1")
        p2 = circuit.probe(cell, "y2")
        sim.schedule_input(cell, "a", 0)
        sim.schedule_input(cell, "c1", 10_000)
        sim.schedule_input(cell, "c2", 20_000)  # already empty
        sim.run()
        assert p1.count() == 1
        assert p2.count() == 0


class TestNdro:
    def test_clock_reads_non_destructively(self):
        cell = Ndro("n")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "set", 0)
        sim.schedule_train(cell, "clk", [10_000, 20_000, 30_000])
        sim.run()
        assert probe.count() == 3  # state survives every read

    def test_reset_blocks_subsequent_reads(self):
        cell = Ndro("n")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "set", 0)
        sim.schedule_input(cell, "clk", 10_000)
        sim.schedule_input(cell, "reset", 15_000)
        sim.schedule_input(cell, "clk", 20_000)
        sim.run()
        assert probe.count() == 1

    def test_reset_beats_clock_when_simultaneous(self):
        # The Race-Logic multiplication convention: a reset landing in the
        # same slot as a stream pulse blocks that slot.
        cell = Ndro("n")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "set", 0)
        sim.schedule_input(cell, "clk", 10_000)
        sim.schedule_input(cell, "reset", 10_000)
        sim.run()
        assert probe.count() == 0

    def test_set_beats_clock_when_simultaneous(self):
        cell = Ndro("n")
        circuit, sim = _wire(cell)
        probe = circuit.probe(cell, "q")
        sim.schedule_input(cell, "clk", 10_000)
        sim.schedule_input(cell, "set", 10_000)
        sim.run()
        assert probe.count() == 1

    def test_read_counter(self):
        cell = Ndro("n")
        circuit, sim = _wire(cell)
        sim.schedule_train(cell, "clk", [0, 10, 20])
        sim.run()
        assert cell.reads == 3
        cell.reset()
        assert cell.reads == 0
