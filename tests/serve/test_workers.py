"""ExecutionTier: inline and actor modes, crash restart + retry."""

import asyncio
import os
import signal
import time

import pytest

from repro.parallel import WorkerError
from repro.serve.workers import ExecutionTier
from repro.trace import MetricsRegistry

_CONFIG = {"bipolar": False, "bits": 3, "length": 2, "slot_fs": 40_000}
_OPERANDS = [{"a_slots": [1, 2], "b_counts": [3, 4]}]


def test_inline_tier_executes_through_threads():
    async def main():
        tier = ExecutionTier(workers=0)
        try:
            return await tier.execute("dpu.dot", _CONFIG, _OPERANDS)
        finally:
            tier.close()

    results = asyncio.run(main())
    assert len(results) == 1 and isinstance(results[0]["count"], int)


def test_actor_tier_matches_inline_results():
    async def main():
        inline = ExecutionTier(workers=0)
        actors = ExecutionTier(workers=1)
        try:
            first = await inline.execute("dpu.dot", _CONFIG, _OPERANDS)
            second = await actors.execute("dpu.dot", _CONFIG, _OPERANDS)
            return first, second
        finally:
            inline.close()
            actors.close()

    first, second = asyncio.run(main())
    assert first == second


def test_dead_worker_is_restarted_and_the_batch_retried():
    async def main():
        metrics = MetricsRegistry()
        tier = ExecutionTier(workers=1, metrics=metrics)
        try:
            await tier.execute("dpu.dot", _CONFIG, _OPERANDS)  # boot + warm
            victim = tier._actors[0]._process
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            # The next batch hits the corpse, restarts, retries, succeeds.
            results = await tier.execute("dpu.dot", _CONFIG, _OPERANDS)
            restarts = metrics.counter("serve_worker_restarts_total").value
            return results, restarts
        finally:
            tier.close()

    results, restarts = asyncio.run(main())
    assert len(results) == 1 and isinstance(results[0]["count"], int)
    assert restarts == 1


def test_handler_errors_propagate_without_restart():
    async def main():
        metrics = MetricsRegistry()
        tier = ExecutionTier(workers=1, metrics=metrics)
        try:
            with pytest.raises(WorkerError):
                # length mismatch raises inside the worker's handler
                await tier.execute(
                    "dpu.dot", _CONFIG, [{"a_slots": [1], "b_counts": [1]}]
                )
            restarts = metrics.counter("serve_worker_restarts_total").value
            results = await tier.execute("dpu.dot", _CONFIG, _OPERANDS)
            return restarts, results
        finally:
            tier.close()

    restarts, results = asyncio.run(main())
    assert restarts == 0  # the process never died
    assert len(results) == 1


def test_warm_reaches_every_actor():
    async def main():
        tier = ExecutionTier(workers=2)
        try:
            await tier.warm("dpu.dot", _CONFIG)
            # After warming, execution must not pay compile time twice;
            # just prove both actors still answer.
            return await asyncio.gather(
                tier.execute("dpu.dot", _CONFIG, _OPERANDS),
                tier.execute("dpu.dot", _CONFIG, _OPERANDS),
            )
        finally:
            tier.close()

    first, second = asyncio.run(main())
    assert first == second
