"""ResponseCache: LRU behaviour and hit/miss accounting."""

from repro.serve.cache import ResponseCache


def test_round_trip_and_counters():
    cache = ResponseCache(max_entries=4)
    assert cache.get("k") is None
    cache.put("k", b"body")
    assert cache.get("k") == b"body"
    assert (cache.hits, cache.misses) == (1, 1)


def test_lru_evicts_oldest_untouched_entry():
    cache = ResponseCache(max_entries=2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    assert cache.get("a") == b"1"  # freshen a; b is now LRU
    cache.put("c", b"3")
    assert cache.get("b") is None
    assert cache.get("a") == b"1"
    assert cache.get("c") == b"3"
    assert len(cache) == 2


def test_put_refreshes_existing_key():
    cache = ResponseCache(max_entries=2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.put("a", b"1v2")  # refresh, not a new slot
    cache.put("c", b"3")
    assert cache.get("a") == b"1v2"
    assert cache.get("b") is None


def test_zero_capacity_disables_storage():
    cache = ResponseCache(max_entries=0)
    cache.put("a", b"1")
    assert cache.get("a") is None
    assert len(cache) == 0


def test_clear():
    cache = ResponseCache(max_entries=4)
    cache.put("a", b"1")
    cache.clear()
    assert cache.get("a") is None
