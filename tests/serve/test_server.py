"""ServeService + HTTP front end: routes, admission, deadlines, drain.

Policy tests drive ``ServeService.handle`` directly (transport-free);
endpoint tests go through real sockets via the testing harness.
"""

import asyncio
import json

import pytest

from repro.digest import cached_source_digest
from repro.serve import ServeConfig, ServeService, start_server_thread
from repro.serve.server import bound_port, start_http_server

_DPU = {
    "op": "dpu.dot",
    "config": {"bits": 3, "slot_fs": 40_000, "length": 2},
    "a_slots": [1, 2],
    "b_counts": [3, 4],
}


def _body(payload) -> bytes:
    return json.dumps(payload).encode()


# -- transport-free policy tests -------------------------------------------------
def test_handle_maps_malformed_input_to_400():
    async def main():
        service = ServeService(ServeConfig(port=0, workers=0))
        try:
            garbage = await service.handle("POST", "/v1/compute", b"{nope")
            bad_op = await service.handle(
                "POST", "/v1/compute", _body({"op": "nope"})
            )
            bad_operand = await service.handle(
                "POST", "/v1/compute", _body(dict(_DPU, a_slots=[1]))
            )
            return garbage[0], bad_op[0], bad_operand[0]
        finally:
            service.close()

    assert asyncio.run(main()) == (400, 400, 400)


def test_unknown_route_and_wrong_method():
    async def main():
        service = ServeService(ServeConfig(port=0, workers=0))
        try:
            missing = await service.handle("GET", "/v2/zap", b"")
            wrong = await service.handle("GET", "/v1/compute", b"")
            return missing[0], wrong[0]
        finally:
            service.close()

    assert asyncio.run(main()) == (404, 405)


def test_admission_ceiling_returns_429_with_retry_after():
    async def main():
        config = ServeConfig(
            port=0, workers=0, max_pending=1, max_batch=8, max_wait_us=50_000
        )
        service = ServeService(config)
        gate = asyncio.Event()
        real_execute = service.tier.execute

        async def gated_execute(op, cfg, operands):
            await gate.wait()
            return await real_execute(op, cfg, operands)

        service.batcher._execute = gated_execute
        try:
            first = asyncio.ensure_future(
                service.handle("POST", "/v1/compute", _body(_DPU))
            )
            while service.in_flight == 0:
                await asyncio.sleep(0)
            rejected = await service.handle(
                "POST", "/v1/compute", _body(dict(_DPU, a_slots=[2, 2]))
            )
            gate.set()
            accepted = await first
            return rejected, accepted
        finally:
            service.close()

    rejected, accepted = asyncio.run(main())
    assert rejected[0] == 429
    assert "Retry-After" in rejected[3]
    assert accepted[0] == 200


def test_deadline_expiring_in_queue_returns_504():
    async def main():
        config = ServeConfig(
            port=0, workers=0, max_batch=64, max_wait_us=60_000
        )
        service = ServeService(config)
        try:
            # 1 ms budget against a 60 ms batch window: evicted at flush.
            response = await service.handle(
                "POST", "/v1/compute", _body(dict(_DPU, deadline_ms=1))
            )
            snapshot = service.metrics.to_dict()
            return response, snapshot
        finally:
            service.close()

    response, snapshot = asyncio.run(main())
    assert response[0] == 504
    assert snapshot["counters"]["serve_deadline_evictions_total"] == 1


def test_generous_deadline_still_succeeds():
    async def main():
        config = ServeConfig(port=0, workers=0, max_batch=4, max_wait_us=500)
        service = ServeService(config)
        try:
            return await service.handle(
                "POST", "/v1/compute", _body(dict(_DPU, deadline_ms=30_000))
            )
        finally:
            service.close()

    assert asyncio.run(main())[0] == 200


def test_draining_rejects_new_work_but_finishes_old():
    async def main():
        config = ServeConfig(
            port=0, workers=0, max_batch=8, max_wait_us=50_000
        )
        service = ServeService(config)
        gate = asyncio.Event()
        real_execute = service.tier.execute

        async def gated_execute(op, cfg, operands):
            await gate.wait()
            return await real_execute(op, cfg, operands)

        service.batcher._execute = gated_execute
        try:
            old = asyncio.ensure_future(
                service.handle("POST", "/v1/compute", _body(_DPU))
            )
            while service.in_flight == 0:
                await asyncio.sleep(0)
            service.begin_drain()
            new = await service.handle(
                "POST", "/v1/compute", _body(dict(_DPU, a_slots=[2, 2]))
            )
            health = await service.handle("GET", "/healthz", b"")
            gate.set()
            finished = await old
            await service.drained()
            return new, health, finished, service.in_flight
        finally:
            service.close()

    new, health, finished, in_flight = asyncio.run(main())
    assert new[0] == 503
    assert json.loads(health[2])["status"] == "draining"
    assert finished[0] == 200
    assert in_flight == 0


def test_cache_hits_bypass_the_batcher():
    async def main():
        config = ServeConfig(port=0, workers=0, max_batch=8, max_wait_us=500)
        service = ServeService(config)
        try:
            cold = await service.handle("POST", "/v1/compute", _body(_DPU))
            dispatched_after_cold = service.metrics.counter(
                "serve_batches_total"
            ).value
            warm = await service.handle("POST", "/v1/compute", _body(_DPU))
            dispatched_after_warm = service.metrics.counter(
                "serve_batches_total"
            ).value
            return cold, warm, dispatched_after_cold, dispatched_after_warm
        finally:
            service.close()

    cold, warm, after_cold, after_warm = asyncio.run(main())
    assert cold[0] == warm[0] == 200
    assert cold[2] == warm[2]  # byte-identical
    assert warm[3]["X-Cache"] == "hit"
    assert after_warm == after_cold  # no new dispatch for the hit


def test_stats_shape_and_source_digest():
    async def main():
        service = ServeService(ServeConfig(port=0, workers=0))
        try:
            await service.handle("POST", "/v1/compute", _body(_DPU))
            await service.handle("POST", "/v1/compute", _body(_DPU))
            return json.loads((await service.handle("GET", "/stats", b""))[2])
        finally:
            service.close()

    stats = asyncio.run(main())
    assert stats["source_digest"] == cached_source_digest()
    assert stats["cache"] == {"entries": 1, "hits": 1, "misses": 1}
    assert stats["latency"]["all"]["count"] == 2
    assert stats["latency"]["cached"]["count"] == 1
    assert stats["latency"]["uncached"]["p50_ms"] is not None
    assert stats["in_flight"] == 0 and stats["draining"] is False


# -- socket-level tests ----------------------------------------------------------
def test_http_round_trip_metrics_and_keep_alive():
    with start_server_thread(
        ServeConfig(port=0, workers=0, max_batch=4, max_wait_us=500)
    ) as server:
        status, payload = server.post_json("/v1/compute", _DPU)
        assert status == 200 and payload["ok"] is True
        status, health = server.get_json("/healthz")
        assert (status, health["status"]) == (200, "serving")
        status, headers, body = server.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_request_latency_ms_bucket" in text
        assert 'le="+Inf"' in text


def test_http_parse_errors_close_cleanly():
    import socket

    with start_server_thread(ServeConfig(port=0, workers=0)) as server:
        raw = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        try:
            raw.sendall(b"GARBAGE-WITHOUT-SPACES\r\n\r\n")
            raw.settimeout(5)
            assert raw.recv(1024) == b""  # server just closes
        finally:
            raw.close()
        # ... and the server still serves afterwards.
        status, _ = server.get_json("/healthz")
        assert status == 200


def test_ephemeral_port_binding_reports_real_port():
    async def main():
        service = ServeService(ServeConfig(port=0, workers=0))
        server = await start_http_server(service, "127.0.0.1", 0)
        try:
            return bound_port(server)
        finally:
            server.close()
            await server.wait_closed()
            service.close()

    assert asyncio.run(main()) > 0


def test_stop_is_idempotent():
    server = start_server_thread(ServeConfig(port=0, workers=0))
    server.stop()
    server.stop()


@pytest.mark.parametrize(
    "payload, expected_status",
    [
        ({"op": "pe.mac", "config": {"bits": 4, "slot_fs": 40_000},
          "values": [0.5, 0.5, 0.5]}, 200),
        ({"op": "pe.matmul", "config": {"bits": 4, "slot_fs": 40_000},
          "a": [[0.5]], "b": [[0.5]]}, 200),
        ({"op": "fir.unary",
          "config": {"bits": 5, "slot_fs": 40_000,
                     "coefficients": [0.5, -0.5]},
          "samples": [0.25, -0.25]}, 200),
    ],
)
def test_model_ops_over_http(payload, expected_status):
    with start_server_thread(ServeConfig(port=0, workers=0)) as server:
        status, body = server.post_json("/v1/compute", payload)
        assert status == expected_status
        assert body["ok"] is True
