"""MicroBatcher edge cases: flush races, deadlines, failure fan-out.

These tests drive the batcher directly with a recording execute hook, so
every dispatch (its size and its operands) is observable.
"""

import asyncio

import pytest

from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.protocol import parse_request


def _request(a=1, b=1, length=2, bits=4):
    return parse_request(
        {
            "op": "dpu.dot",
            "config": {"bits": bits, "slot_fs": 40_000, "length": length},
            "a_slots": [a] * length,
            "b_counts": [b] * length,
        }
    )


class _Recorder:
    """An execute hook that answers with lane indices and logs dispatches."""

    def __init__(self, gate=None, fail=False):
        self.dispatches = []
        self.gate = gate
        self.fail = fail

    async def __call__(self, op, config, operands_list):
        self.dispatches.append(list(operands_list))
        if self.gate is not None:
            await self.gate.wait()
        if self.fail:
            raise RuntimeError("engine exploded")
        return [{"count": index} for index in range(len(operands_list))]


def test_size_trigger_flushes_exactly_at_max_batch():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=3, max_wait_us=10_000_000)
        results = await asyncio.gather(
            *(batcher.submit(_request(a=i)) for i in range(3))
        )
        return recorder.dispatches, results

    dispatches, results = asyncio.run(main())
    # One dispatch of 3 lanes, long before the (10 s) timer.
    assert [len(d) for d in dispatches] == [3]
    assert [r["count"] for r in results] == [0, 1, 2]


def test_timer_trigger_flushes_partial_groups():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, max_wait_us=1_000)
        results = await asyncio.gather(
            *(batcher.submit(_request(a=i)) for i in range(2))
        )
        return recorder.dispatches, results

    dispatches, results = asyncio.run(main())
    assert [len(d) for d in dispatches] == [2]
    assert [r["count"] for r in results] == [0, 1]


def test_timer_racing_a_size_flush_cannot_double_dispatch():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=2, max_wait_us=500)
        first = asyncio.ensure_future(batcher.submit(_request(a=1)))
        await asyncio.sleep(0)
        # The size trigger fires here; then we *also* invoke the timer
        # callback by hand, simulating the loop delivering a stale timer.
        second = asyncio.ensure_future(batcher.submit(_request(a=2)))
        await asyncio.sleep(0)
        key = _request().batch_key()
        batcher._flush(key)  # stale trigger: group already popped
        batcher._flush(key)
        await asyncio.gather(first, second)
        await asyncio.sleep(0.01)  # let any stray timer fire
        return recorder.dispatches

    dispatches = asyncio.run(main())
    assert [len(d) for d in dispatches] == [2]


def test_arrival_during_in_flight_flush_starts_a_new_group():
    async def main():
        gate = asyncio.Event()
        recorder = _Recorder(gate=gate)
        batcher = MicroBatcher(recorder, max_batch=2, max_wait_us=1_000)
        blocked = [
            asyncio.ensure_future(batcher.submit(_request(a=i)))
            for i in range(2)
        ]
        # Wait until that group's dispatch is in flight (blocked on gate).
        while not recorder.dispatches:
            await asyncio.sleep(0)
        late = asyncio.ensure_future(batcher.submit(_request(a=9)))
        await asyncio.sleep(0.01)
        assert not late.done()  # queued in a NEW group, not the old one
        gate.set()
        await asyncio.gather(*blocked, late)
        return recorder.dispatches

    dispatches = asyncio.run(main())
    assert [len(d) for d in dispatches] == [2, 1]
    assert dispatches[1][0]["a_slots"] == [9, 9]


def test_deadline_eviction_happens_before_lanes_are_allocated():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, max_wait_us=30_000)
        loop = asyncio.get_running_loop()
        doomed = asyncio.ensure_future(
            batcher.submit(_request(a=1), deadline_at=loop.time() + 0.001)
        )
        healthy = asyncio.ensure_future(
            batcher.submit(_request(a=2), deadline_at=loop.time() + 30.0)
        )
        with pytest.raises(DeadlineExceeded):
            await doomed
        result = await healthy
        return recorder.dispatches, result

    dispatches, result = asyncio.run(main())
    # The expired request never occupied a lane: the dispatch has one row.
    assert [len(d) for d in dispatches] == [1]
    assert dispatches[0][0]["a_slots"] == [2, 2]
    assert result == {"count": 0}
    # Eviction is visible in the metrics the service scrapes.


def test_all_expired_group_dispatches_nothing():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, max_wait_us=5_000)
        loop = asyncio.get_running_loop()
        doomed = batcher.submit(
            _request(a=1), deadline_at=loop.time() - 1.0
        )
        with pytest.raises(DeadlineExceeded):
            await doomed
        await asyncio.sleep(0.02)
        return recorder.dispatches

    assert asyncio.run(main()) == []


def test_execute_failure_fans_out_to_every_waiter():
    async def main():
        recorder = _Recorder(fail=True)
        batcher = MicroBatcher(recorder, max_batch=2, max_wait_us=1_000)
        futures = [
            asyncio.ensure_future(batcher.submit(_request(a=i)))
            for i in range(2)
        ]
        done = await asyncio.gather(*futures, return_exceptions=True)
        return done

    outcomes = asyncio.run(main())
    assert len(outcomes) == 2
    assert all(isinstance(item, RuntimeError) for item in outcomes)


def test_coalesce_false_dispatches_immediately_as_group_of_one():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, max_wait_us=10_000_000)
        result = await batcher.submit(_request(a=5), coalesce=False)
        return recorder.dispatches, result

    dispatches, result = asyncio.run(main())
    # No 10-second timer wait: the solo path dispatched straight away.
    assert [len(d) for d in dispatches] == [1]
    assert result == {"count": 0}


def test_max_batch_one_never_coalesces():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=1, max_wait_us=10_000_000)
        results = await asyncio.gather(
            *(batcher.submit(_request(a=i)) for i in range(3))
        )
        return recorder.dispatches, results

    dispatches, _results = asyncio.run(main())
    assert [len(d) for d in dispatches] == [1, 1, 1]


def test_flush_all_drains_open_groups():
    async def main():
        recorder = _Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, max_wait_us=10_000_000)
        pending = [
            asyncio.ensure_future(batcher.submit(_request(a=i)))
            for i in range(2)
        ]
        await asyncio.sleep(0)
        assert batcher.pending == 2
        batcher.flush_all()
        await asyncio.gather(*pending)
        return batcher.pending, recorder.dispatches

    pending, dispatches = asyncio.run(main())
    assert pending == 0
    assert [len(d) for d in dispatches] == [2]
