"""The serving differential: coalesced == solo == scalar, byte for byte.

Acceptance property from the issue: a coalesced batch of N distinct
requests must produce responses **byte-identical** to N sequential
single-request runs.  Three independent witnesses:

* a coalescing server (max_batch high, wide window) under concurrent load,
* a non-coalescing server (max_batch=1) taking the same requests serially,
* direct scalar ``DotProductUnit.run_counts`` ground truth.
"""

import random
from concurrent.futures import ThreadPoolExecutor

from repro.core.dpu import DotProductUnit
from repro.encoding.epoch import EpochSpec
from repro.serve import ServeConfig, start_server_thread

_BITS, _LENGTH = 3, 2
_CONFIG = {"bits": _BITS, "slot_fs": 40_000, "length": _LENGTH}


def _requests(count, seed=20220711):
    rng = random.Random(seed)
    n_max = 1 << _BITS
    return [
        {
            "op": "dpu.dot",
            "config": dict(_CONFIG),
            "a_slots": [rng.randrange(n_max + 1) for _ in range(_LENGTH)],
            "b_counts": [rng.randrange(n_max + 1) for _ in range(_LENGTH)],
        }
        for _ in range(count)
    ]


def test_coalesced_batch_is_byte_identical_to_sequential_singles():
    requests = _requests(12)

    # Witness 1: concurrent clients against a coalescing server.  The
    # cache is disabled so every request truly executes.
    coalescing = ServeConfig(
        port=0, max_batch=16, max_wait_us=50_000, workers=0, cache_entries=0
    )
    with start_server_thread(coalescing) as server:
        with ThreadPoolExecutor(len(requests)) as pool:
            batched_bodies = list(
                pool.map(
                    lambda payload: server.request(
                        "POST", "/v1/compute", payload
                    )[2],
                    requests,
                )
            )
        snapshot = server.service.metrics.to_dict()
    # The point of the wide window: the 12 requests really did coalesce.
    assert snapshot["counters"]["serve_batches_total"] < len(requests)
    assert snapshot["histograms"]["serve_batch_lanes"]["max"] > 1

    # Witness 2: the same requests, one at a time, on a max_batch=1 server.
    solo = ServeConfig(
        port=0, max_batch=1, max_wait_us=0, workers=0, cache_entries=0
    )
    with start_server_thread(solo) as server:
        solo_bodies = [
            server.request("POST", "/v1/compute", payload)[2]
            for payload in requests
        ]

    assert batched_bodies == solo_bodies  # byte-identical, per request

    # Witness 3: scalar ground truth straight from the structural DPU.
    unit = DotProductUnit(EpochSpec(bits=_BITS, slot_fs=40_000), _LENGTH)
    for payload, body in zip(requests, solo_bodies):
        expected = unit.run_counts(payload["a_slots"], payload["b_counts"])
        assert (
            body
            == b'{"ok":true,"op":"dpu.dot","result":{"count":%d}}' % expected
        )


def test_cached_response_is_the_same_byte_string_as_the_cold_one():
    request = _requests(1)[0]
    config = ServeConfig(port=0, max_batch=4, max_wait_us=1_000, workers=0)
    with start_server_thread(config) as server:
        _, cold_headers, cold_body = server.request(
            "POST", "/v1/compute", request
        )
        _, warm_headers, warm_body = server.request(
            "POST", "/v1/compute", request
        )
    assert cold_headers["x-cache"] == "miss"
    assert warm_headers["x-cache"] == "hit"
    assert cold_body == warm_body


def test_worker_tier_serves_the_same_bytes_as_inline():
    requests = _requests(6, seed=99)
    inline = ServeConfig(
        port=0, max_batch=8, max_wait_us=20_000, workers=0, cache_entries=0
    )
    actors = ServeConfig(
        port=0, max_batch=8, max_wait_us=20_000, workers=1, cache_entries=0
    )
    bodies = {}
    for label, config in (("inline", inline), ("actors", actors)):
        with start_server_thread(config) as server:
            with ThreadPoolExecutor(len(requests)) as pool:
                bodies[label] = list(
                    pool.map(
                        lambda payload: server.request(
                            "POST", "/v1/compute", payload
                        )[2],
                        requests,
                    )
                )
    assert bodies["inline"] == bodies["actors"]
