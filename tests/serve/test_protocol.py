"""Request parsing, validation limits, and the two derived keys."""

import pytest

from repro.digest import canonical_json
from repro.serve.protocol import (
    BATCHABLE_OPS,
    MAX_LENGTH,
    ProtocolError,
    parse_request,
)


def _dpu_payload(**overrides):
    payload = {
        "op": "dpu.dot",
        "config": {"bits": 4, "slot_fs": 40_000, "length": 2},
        "a_slots": [3, 16],
        "b_counts": [7, 0],
    }
    payload.update(overrides)
    return payload


def test_dpu_dot_parses_and_canonicalises():
    request = parse_request(_dpu_payload())
    assert request.op == "dpu.dot"
    assert request.config == {
        "bipolar": False,
        "bits": 4,
        "length": 2,
        "slot_fs": 40_000,
    }
    assert request.operands == {"a_slots": [3, 16], "b_counts": [7, 0]}
    assert request.deadline_ms is None


def test_dpu_dot_is_the_batchable_op():
    assert "dpu.dot" in BATCHABLE_OPS
    request = parse_request(_dpu_payload())
    other_operands = parse_request(
        _dpu_payload(a_slots=[0, 0], b_counts=[1, 1])
    )
    # Same config -> same batch group, regardless of operands.
    assert request.batch_key() == other_operands.batch_key()
    different_config = parse_request(
        _dpu_payload(config={"bits": 5, "slot_fs": 40_000, "length": 2},
                     a_slots=[3, 16], b_counts=[7, 0])
    )
    assert request.batch_key() != different_config.batch_key()


def test_model_ops_never_share_a_batch_group():
    payload = {
        "op": "pe.mac",
        "config": {"bits": 4, "slot_fs": 40_000},
        "values": [0.5, 0.5, 0.5],
    }
    first = parse_request(payload)
    second = parse_request(payload)
    assert first.batch_key() != second.batch_key()


def test_cache_key_ignores_deadline_but_not_operands():
    base = parse_request(_dpu_payload())
    with_deadline = parse_request(_dpu_payload(deadline_ms=50))
    assert base.cache_key("d") == with_deadline.cache_key("d")
    other = parse_request(_dpu_payload(a_slots=[4, 16]))
    assert base.cache_key("d") != other.cache_key("d")
    # ... and the source digest is part of the address.
    assert base.cache_key("d1") != base.cache_key("d2")


def test_key_material_is_canonical_json():
    request = parse_request(_dpu_payload())
    assert canonical_json(request.config) in request.batch_key()


@pytest.mark.parametrize(
    "mutation",
    [
        {"op": "nope"},
        {"op": 7},
        {"config": []},
        {"config": {"bits": 0, "slot_fs": 40_000, "length": 2}},
        {"config": {"bits": 99, "slot_fs": 40_000, "length": 2}},
        {"config": {"bits": 4, "slot_fs": 40_000, "length": 0}},
        {"config": {"bits": 4, "slot_fs": 40_000, "length": MAX_LENGTH + 1}},
        {"a_slots": [1]},  # wrong arity
        {"a_slots": [1, 99]},  # out of range (> n_max)
        {"a_slots": [1, -1]},
        {"a_slots": [1, 1.5]},  # not an integer
        {"a_slots": [1, True]},  # bool is not an operand
        {"b_counts": "nope"},
        {"deadline_ms": 0},
        {"deadline_ms": -5},
        {"deadline_ms": "soon"},
    ],
)
def test_dpu_dot_rejects_malformed_payloads(mutation):
    with pytest.raises(ProtocolError):
        parse_request(_dpu_payload(**mutation))


def test_rejects_non_object_bodies_and_unknown_ops():
    with pytest.raises(ProtocolError):
        parse_request([1, 2, 3])
    with pytest.raises(ProtocolError, match="supported"):
        parse_request({"op": "dpu.transmogrify"})


def test_fir_parses_both_variants():
    for op in ("fir.unary", "fir.binary"):
        request = parse_request(
            {
                "op": op,
                "config": {
                    "bits": 6,
                    "slot_fs": 40_000,
                    "coefficients": [0.5, -0.25],
                },
                "samples": [0.1, -0.2, 0.3],
            }
        )
        assert request.op == op
        assert request.config["coefficients"] == [0.5, -0.25]
        assert request.operands["samples"] == [0.1, -0.2, 0.3]


def test_fir_rejects_out_of_range_samples_and_taps():
    with pytest.raises(ProtocolError):
        parse_request(
            {
                "op": "fir.unary",
                "config": {
                    "bits": 6,
                    "slot_fs": 40_000,
                    "coefficients": [1.5],
                },
                "samples": [0.1],
            }
        )
    with pytest.raises(ProtocolError):
        parse_request(
            {
                "op": "fir.unary",
                "config": {
                    "bits": 6,
                    "slot_fs": 40_000,
                    "coefficients": [0.5],
                },
                "samples": [2.0],
            }
        )


def test_pe_matmul_validates_shapes():
    ok = parse_request(
        {
            "op": "pe.matmul",
            "config": {"bits": 4, "slot_fs": 40_000},
            "a": [[0.5, 0.25]],
            "b": [[0.5], [0.25]],
        }
    )
    assert ok.operands["a"] == [[0.5, 0.25]]
    with pytest.raises(ProtocolError, match="inner dimensions"):
        parse_request(
            {
                "op": "pe.matmul",
                "config": {"bits": 4, "slot_fs": 40_000},
                "a": [[0.5, 0.25]],
                "b": [[0.5]],
            }
        )
    with pytest.raises(ProtocolError, match="equal length"):
        parse_request(
            {
                "op": "pe.matmul",
                "config": {"bits": 4, "slot_fs": 40_000},
                "a": [[0.5], [0.25, 0.5]],
                "b": [[0.5]],
            }
        )
