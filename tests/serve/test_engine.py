"""ComputeEngine: results match the core models, circuits memoise."""

import numpy as np
import pytest

from repro.core.dpu import DotProductUnit
from repro.core.fir import BinaryFirFilter, UnaryFirFilter
from repro.core.pe import PEArray, PEModel
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.serve.engine import ComputeEngine

_DPU_CONFIG = {"bipolar": False, "bits": 3, "length": 2, "slot_fs": 40_000}


def test_dpu_group_matches_direct_batch_run():
    engine = ComputeEngine()
    operands = [
        {"a_slots": [1, 2], "b_counts": [3, 4]},
        {"a_slots": [8, 0], "b_counts": [8, 8]},
        {"a_slots": [5, 5], "b_counts": [1, 7]},
    ]
    results = engine.execute_group("dpu.dot", _DPU_CONFIG, operands)
    unit = DotProductUnit(EpochSpec(bits=3, slot_fs=40_000), length=2)
    expected = [
        unit.run_counts(item["a_slots"], item["b_counts"])
        for item in operands
    ]
    assert [r["count"] for r in results] == expected
    assert all(isinstance(r["count"], int) for r in results)


def test_dpu_circuit_is_compiled_once_per_config():
    engine = ComputeEngine(max_circuits=2)
    engine.execute_group(
        "dpu.dot", _DPU_CONFIG, [{"a_slots": [1, 1], "b_counts": [1, 1]}]
    )
    unit = engine._dpu(_DPU_CONFIG)
    engine.execute_group(
        "dpu.dot", _DPU_CONFIG, [{"a_slots": [2, 2], "b_counts": [2, 2]}]
    )
    assert engine._dpu(_DPU_CONFIG) is unit  # same compiled instance
    # Two more configs evict the oldest (LRU capacity 2).
    other = dict(_DPU_CONFIG, bits=4)
    third = dict(_DPU_CONFIG, bits=5)
    engine._dpu(other)
    engine._dpu(third)
    assert engine._dpu(_DPU_CONFIG) is not unit  # was evicted, recompiled


def test_warm_precompiles():
    engine = ComputeEngine()
    assert engine.warm("dpu.dot", _DPU_CONFIG) is True
    assert len(engine._dpus) == 1
    assert engine.warm("pe.mac", {"bits": 4, "slot_fs": 40_000}) is True


def test_fir_ops_match_the_filters():
    engine = ComputeEngine()
    samples = [0.1, -0.4, 0.9, 0.0]
    coefficients = [0.5, -0.25, 0.125]
    unary_config = {
        "bits": 6, "coefficients": coefficients, "slot_fs": 40_000,
    }
    [result] = engine.execute_group(
        "fir.unary", unary_config, [{"samples": samples}]
    )
    epoch = EpochSpec(bits=6, slot_fs=40_000)
    expected = UnaryFirFilter(epoch, coefficients, seed=0).process(samples)
    assert result["outputs"] == [float(v) for v in expected]

    [result] = engine.execute_group(
        "fir.binary", unary_config, [{"samples": samples}]
    )
    expected = BinaryFirFilter(6, coefficients, seed=0).process(samples)
    assert result["outputs"] == [float(v) for v in expected]


def test_pe_ops_match_the_models():
    engine = ComputeEngine()
    config = {"bits": 4, "slot_fs": 40_000}
    epoch = EpochSpec(bits=4, slot_fs=40_000)
    [result] = engine.execute_group(
        "pe.mac", config, [{"values": [0.5, 0.75, 0.25]}]
    )
    assert result["value"] == PEModel(epoch).mac(0.5, 0.75, 0.25)

    a = [[0.5, 0.25], [1.0, 0.0]]
    b = [[0.5, 1.0], [0.25, 0.5]]
    [result] = engine.execute_group("pe.matmul", config, [{"a": a, "b": b}])
    expected = PEArray(epoch, rows=2, cols=2).matmul(
        np.asarray(a), np.asarray(b)
    )
    assert result["values"] == [[float(v) for v in row] for row in expected]


def test_empty_group_and_unknown_op():
    engine = ComputeEngine()
    assert engine.execute_group("dpu.dot", _DPU_CONFIG, []) == []
    with pytest.raises(ConfigurationError):
        engine.execute_group("quantum.leap", {}, [{}])
