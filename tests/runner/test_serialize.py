"""Result serialisation must preserve the rendered report byte-for-byte."""

import json

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentResult, format_result
from repro.runner.serialize import result_from_dict, result_to_dict, to_jsonable

FAST_EXPERIMENTS = sorted(set(EXPERIMENTS) - {"fig19"})


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_round_trip_preserves_rendering(experiment_id):
    result = run_experiment(experiment_id)
    payload = json.loads(json.dumps(result_to_dict(result)))
    assert format_result(result_from_dict(payload)) == format_result(result)


def test_round_trip_preserves_fig19_rendering():
    from repro.experiments import fig19_accuracy

    result = fig19_accuracy.run(trials=1)
    payload = json.loads(json.dumps(result_to_dict(result)))
    assert format_result(result_from_dict(payload)) == format_result(result)


def test_numpy_scalars_become_json_types():
    converted = to_jsonable(
        {"f": np.float64(1.5), "i": np.int64(7), "b": np.bool_(True),
         "a": np.arange(3), "t": (np.float32(2.0), "s")}
    )
    assert json.loads(json.dumps(converted)) == {
        "f": 1.5, "i": 7, "b": True, "a": [0, 1, 2], "t": [2.0, "s"]
    }


def test_claims_survive_round_trip():
    result = ExperimentResult("t", "title", ["a"])
    result.add_row(1)
    result.add_claim("check", "1", "2", bool(np.bool_(False)))
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.claims_held == 0
    assert len(rebuilt.claims) == 1
    assert rebuilt.claims[0].description == "check"
