"""run_suite: fan-out, cache integration, deterministic aggregation."""

import types

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentResult, format_result
from repro.runner import ResultCache, run_suite

# Cheap but representative: two sweep-capable figures plus a
# simulator-backed experiment and a pure-table one.
SUBSET = ["fig14", "fig16", "fig02", "table2"]


def test_unknown_id_raises_before_any_work():
    with pytest.raises(ConfigurationError, match="unknown experiment"):
        run_suite(["fig99"])


def test_outcomes_are_registry_ordered():
    report = run_suite(["fig12", "table1"])
    assert list(report.outcomes) == ["table1", "fig12"]


def test_parallel_run_matches_serial_byte_for_byte():
    serial = run_suite(SUBSET, jobs=1)
    parallel = run_suite(SUBSET, jobs=2)
    for experiment_id in SUBSET:
        assert format_result(parallel.outcomes[experiment_id].result) == \
            format_result(serial.outcomes[experiment_id].result)


def test_simulation_stats_are_captured():
    report = run_suite(["fig02"])
    stats = report.outcomes["fig02"].stats
    assert stats.events_processed > 0
    assert stats.pulses_emitted > 0


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache", digest="f" * 64)
    cold = run_suite(["table2", "fig12"], cache=cache)
    assert cold.cache_misses == 2 and cold.cache_hits == 0
    warm = run_suite(["table2", "fig12"], cache=cache)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    for experiment_id in ("table2", "fig12"):
        assert format_result(warm.outcomes[experiment_id].result) == \
            format_result(cold.outcomes[experiment_id].result)
        assert warm.outcomes[experiment_id].cache_status == "hit"


def test_no_cache_reports_off():
    report = run_suite(["table2"])
    assert report.outcomes["table2"].cache_status == "off"
    assert report.cache_dir is None


def test_failures_counts_differing_claims():
    report = run_suite(["table2"])
    assert report.failures == 0


def test_duplicate_ids_collapse_to_one_outcome():
    report = run_suite(["table2", "table2"])
    assert list(report.outcomes) == ["table2"]


def test_batch_falls_back_without_run_points_batch():
    """batch=True on a sweep module lacking the hook runs normally."""
    serial = run_suite(["fig14"])
    batched = run_suite(["fig14"], batch=True)
    assert batched.batch is True and serial.batch is False
    assert format_result(batched.outcomes["fig14"].result) == \
        format_result(serial.outcomes["fig14"].result)


def test_batch_coalesces_sweep_into_one_unit(monkeypatch):
    from repro.experiments import registry

    coalesced = []

    def assemble(partials):
        result = ExperimentResult("fake", "fake sweep", ["points"])
        result.add_row(len(partials))
        return result

    fake = types.SimpleNamespace(
        sweep_points=lambda: ["a", "b", "c"],
        run_point=lambda point: {"p": point},
        run_points_batch=lambda points: (
            coalesced.append(list(points)),
            [{"p": p} for p in points],
        )[1],
        assemble=assemble,
    )
    monkeypatch.setitem(registry.EXPERIMENTS, "fake", lambda: assemble([]))
    monkeypatch.setitem(registry.SWEEPS, "fake", fake)
    report = run_suite(["fake"], jobs=1, batch=True)
    # One call carrying every sweep point, not one call per point.
    assert coalesced == [["a", "b", "c"]]
    assert report.outcomes["fake"].result.rows == [(3,)]
