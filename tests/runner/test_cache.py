"""The content-addressed result cache: hits, misses, invalidation."""

from repro.experiments.registry import run_experiment
from repro.experiments.report import format_result
from repro.pulsesim.simulator import SimulationStats
from repro.runner.cache import ResultCache, source_digest


def _fixed_cache(tmp_path, digest="d" * 64):
    return ResultCache(tmp_path / "cache", digest=digest)


def test_miss_on_empty_cache(tmp_path):
    cache = _fixed_cache(tmp_path)
    assert cache.load("table2") is None


def test_store_then_load_round_trips(tmp_path):
    cache = _fixed_cache(tmp_path)
    result = run_experiment("table2")
    stats = SimulationStats(events_processed=5, pulses_emitted=3, end_time=9)
    cache.store("table2", result, stats, 0.25)
    entry = cache.load("table2")
    assert entry is not None
    assert format_result(entry.result) == format_result(result)
    assert entry.stats == stats
    assert entry.compute_time_s == 0.25


def test_key_depends_on_source_digest(tmp_path):
    before = ResultCache(tmp_path, digest="a" * 64)
    after = ResultCache(tmp_path, digest="b" * 64)
    assert before.key("fig18") != after.key("fig18")
    assert before.path("fig18") != after.path("fig18")


def test_source_edit_invalidates(tmp_path):
    """A cached entry is unreachable once the source tree changes."""
    cache = ResultCache(tmp_path, digest="a" * 64)
    cache.store("table2", run_experiment("table2"), SimulationStats(), 0.0)
    edited = ResultCache(tmp_path, digest="b" * 64)
    assert cache.load("table2") is not None
    assert edited.load("table2") is None


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = _fixed_cache(tmp_path)
    cache.store("table2", run_experiment("table2"), SimulationStats(), 0.0)
    cache.path("table2").write_text("{not json")
    assert cache.load("table2") is None


def test_source_digest_tracks_file_content(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    first = source_digest(tree)
    assert first == source_digest(tree)  # stable
    (tree / "a.py").write_text("x = 2\n")
    assert source_digest(tree) != first


def test_source_digest_tracks_new_files(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    first = source_digest(tree)
    (tree / "b.py").write_text("")
    assert source_digest(tree) != first


def test_default_digest_covers_the_repro_package():
    digest = source_digest()
    assert len(digest) == 64
    assert digest == source_digest()  # deterministic within a run
