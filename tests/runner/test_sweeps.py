"""Sweep-point decomposition: picklable units, order-independent assembly."""

import pickle

import pytest

from repro.experiments.registry import EXPERIMENTS, SWEEPS
from repro.experiments.report import format_result
from repro.runner.worker import WorkUnit, execute_unit

SWEEP_IDS = sorted(SWEEPS)


@pytest.mark.parametrize("experiment_id", SWEEP_IDS)
def test_sweep_modules_are_registered_experiments(experiment_id):
    assert experiment_id in EXPERIMENTS


@pytest.mark.parametrize("experiment_id", SWEEP_IDS)
def test_points_and_partials_pickle(experiment_id):
    module = SWEEPS[experiment_id]
    points = module.sweep_points()
    assert points, f"{experiment_id} exposes no sweep points"
    assert pickle.loads(pickle.dumps(points)) == points
    partial = module.run_point(points[0])
    pickle.loads(pickle.dumps(partial))


@pytest.mark.parametrize("experiment_id", ["fig14", "fig16", "fig18"])
def test_out_of_order_computation_assembles_identically(experiment_id):
    """Workers may finish in any order; index-sorted assembly fixes it."""
    module = SWEEPS[experiment_id]
    points = module.sweep_points()
    reversed_partials = [module.run_point(p) for p in reversed(points)]
    result = module.assemble(list(reversed(reversed_partials)))
    assert format_result(result) == format_result(module.run())


def test_fig19_point_kinds_cover_every_study():
    points = SWEEPS["fig19"].sweep_points(trials=1)
    kinds = [p[0] for p in points]
    assert kinds.count("sweep") == 4
    assert kinds.count("quant") == 2
    assert "distribution" in kinds
    assert "spectra" in kinds
    assert kinds.count("structural") == 6  # one per error rate


def test_fig19_batched_points_match_per_point_path():
    """run_points_batch must be partial-for-partial identical to run_point
    (the runner caches results across the two modes)."""
    module = SWEEPS["fig19"]
    points = [p for p in module.sweep_points(trials=1) if p[0] == "structural"]
    assert module.run_points_batch(points) == [module.run_point(p) for p in points]


def test_fig19_unknown_point_rejected():
    with pytest.raises(ValueError, match="unknown fig19 sweep point"):
        SWEEPS["fig19"].run_point(("bogus", "", 0))


def test_execute_unit_runs_a_sweep_point():
    outcome = execute_unit(WorkUnit("fig14", 0, SWEEPS["fig14"].sweep_points()[0]))
    assert outcome.experiment_id == "fig14"
    assert outcome.point_index == 0
    assert outcome.payload["bits"] == 4
    assert outcome.duration_s >= 0


def test_execute_unit_runs_a_whole_experiment():
    outcome = execute_unit(WorkUnit("table2"))
    assert outcome.point_index is None
    assert format_result(outcome.payload).startswith("== table2")
