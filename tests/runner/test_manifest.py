"""The JSON run manifest: schema, totals, and file output."""

import json

from repro.runner import ResultCache, build_manifest, run_suite, write_manifest
from repro.runner.manifest import MANIFEST_SCHEMA


def test_manifest_schema_and_totals(tmp_path):
    cache = ResultCache(tmp_path / "cache", digest="e" * 64)
    report = run_suite(["table2", "fig12"], jobs=1, cache=cache)
    manifest = build_manifest(report, ["table2", "fig12"])

    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["jobs"] == 1
    assert manifest["wall_time_s"] > 0
    assert manifest["cache"]["misses"] == 2
    assert manifest["cache"]["source_digest"] == "e" * 64
    assert manifest["requested"] == ["table2", "fig12"]
    assert set(manifest["experiments"]) == {"table2", "fig12"}

    for entry in manifest["experiments"].values():
        assert entry["cache"] == "miss"
        assert entry["claims_held"] <= entry["claims_total"]
        assert {"events_processed", "pulses_emitted"} <= set(entry["stats"])
    totals = manifest["totals"]
    assert totals["experiments"] == 2
    assert totals["failures"] == totals["claims_total"] - totals["claims_held"]
    assert totals["failures"] == 0


def test_manifest_records_cache_hits(tmp_path):
    cache = ResultCache(tmp_path / "cache", digest="e" * 64)
    run_suite(["table2"], cache=cache)
    warm = build_manifest(run_suite(["table2"], cache=cache))
    assert warm["experiments"]["table2"]["cache"] == "hit"
    assert warm["cache"]["hits"] == 1


def test_write_manifest_emits_valid_json(tmp_path):
    report = run_suite(["table2"])
    path = write_manifest(tmp_path / "nested" / "manifest.json",
                          build_manifest(report))
    loaded = json.loads(path.read_text())
    assert loaded["totals"]["experiments"] == 1
    assert path.read_text().endswith("\n")


def test_manifest_carries_metrics_schema3(tmp_path):
    """Schema 3: per-experiment metrics (+ fault counters), queue depth."""
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.report import ExperimentResult
    from repro.pulsesim.faults import DropChannel
    from repro.pulsesim.netlist import Circuit
    from repro.pulsesim.simulator import Simulator

    def _faulty():
        circuit = Circuit("faulty")
        channel = circuit.add(DropChannel("d", drop_rate=1.0))
        sim = Simulator(circuit)
        sim.schedule_train(channel, "a", [0, 1_000])
        sim.run()
        return ExperimentResult("table2", "fault smoke", ["x"])

    original = EXPERIMENTS["table2"]
    EXPERIMENTS["table2"] = _faulty
    try:
        manifest = build_manifest(run_suite(["table2"]))
    finally:
        EXPERIMENTS["table2"] = original

    entry = manifest["experiments"]["table2"]
    assert entry["stats"]["max_queue_depth"] >= 1
    assert entry["metrics"]["counters"]["faults.drop.pulses_seen"] == 2
    assert entry["metrics"]["counters"]["faults.drop.pulses_dropped"] == 2
    json.dumps(manifest)  # metrics must stay JSON-serialisable


def test_sweep_manifest_merges_point_metrics(tmp_path):
    """A split sweep reports merged metrics plus the per-point breakdown."""
    report = run_suite(["fig16"], jobs=2)
    manifest = build_manifest(report)
    entry = manifest["experiments"]["fig16"]
    assert "metrics" in entry
    assert "metrics_points" in entry
    assert len(entry["metrics_points"]) == 5  # one per swept length


def test_cached_rerun_restores_metrics(tmp_path):
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.report import ExperimentResult
    from repro.trace.metrics import current_registry

    def _metered():
        current_registry().counter("custom.count").inc(7)
        return ExperimentResult("table2", "metric smoke", ["x"])

    cache = ResultCache(tmp_path / "cache", digest="e" * 64)
    original = EXPERIMENTS["table2"]
    EXPERIMENTS["table2"] = _metered
    try:
        cold = build_manifest(run_suite(["table2"], cache=cache))
        warm = build_manifest(run_suite(["table2"], cache=cache))
    finally:
        EXPERIMENTS["table2"] = original
    assert cold["experiments"]["table2"]["metrics"]["counters"][
        "custom.count"] == 7
    assert warm["experiments"]["table2"]["cache"] == "hit"
    assert warm["experiments"]["table2"]["metrics"] == (
        cold["experiments"]["table2"]["metrics"]
    )


def test_jobs_auto_is_resolved_and_recorded():
    import os

    import pytest

    from repro.errors import ConfigurationError

    report = run_suite(["table2"], jobs="auto")
    manifest = build_manifest(report)
    assert manifest["jobs"] == (os.cpu_count() or 1)
    assert manifest["jobs_requested"] == "auto"

    numeric = build_manifest(run_suite(["table2"], jobs="2"))
    assert numeric["jobs"] == 2 and numeric["jobs_requested"] == "2"

    with pytest.raises(ConfigurationError):
        run_suite(["table2"], jobs="several")
