"""The JSON run manifest: schema, totals, and file output."""

import json

from repro.runner import ResultCache, build_manifest, run_suite, write_manifest
from repro.runner.manifest import MANIFEST_SCHEMA


def test_manifest_schema_and_totals(tmp_path):
    cache = ResultCache(tmp_path / "cache", digest="e" * 64)
    report = run_suite(["table2", "fig12"], jobs=1, cache=cache)
    manifest = build_manifest(report, ["table2", "fig12"])

    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["jobs"] == 1
    assert manifest["wall_time_s"] > 0
    assert manifest["cache"]["misses"] == 2
    assert manifest["cache"]["source_digest"] == "e" * 64
    assert manifest["requested"] == ["table2", "fig12"]
    assert set(manifest["experiments"]) == {"table2", "fig12"}

    for entry in manifest["experiments"].values():
        assert entry["cache"] == "miss"
        assert entry["claims_held"] <= entry["claims_total"]
        assert {"events_processed", "pulses_emitted"} <= set(entry["stats"])
    totals = manifest["totals"]
    assert totals["experiments"] == 2
    assert totals["failures"] == totals["claims_total"] - totals["claims_held"]
    assert totals["failures"] == 0


def test_manifest_records_cache_hits(tmp_path):
    cache = ResultCache(tmp_path / "cache", digest="e" * 64)
    run_suite(["table2"], cache=cache)
    warm = build_manifest(run_suite(["table2"], cache=cache))
    assert warm["experiments"]["table2"]["cache"] == "hit"
    assert warm["cache"]["hits"] == 1


def test_write_manifest_emits_valid_json(tmp_path):
    report = run_suite(["table2"])
    path = write_manifest(tmp_path / "nested" / "manifest.json",
                          build_manifest(report))
    loaded = json.loads(path.read_text())
    assert loaded["totals"]["experiments"] == 1
    assert path.read_text().endswith("\n")
