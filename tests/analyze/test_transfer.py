"""Spot checks of per-cell transfer functions against cell semantics."""

from repro.analyze.domain import (
    INF,
    NONE,
    PulseBounds,
    single_pulse_bounds,
    stimulus_bounds,
)
from repro.analyze.transfer import (
    epoch_latency_fs,
    epoch_relative_transfer,
    transfer,
)
from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.cells.logic import Inverter
from repro.cells.storage import Ndro
from repro.cells.toggle import Tff, Tff2
from repro.core.buffer import RlBuffer


def test_jtl_shifts_by_cell_delay():
    jtl = Jtl("j", delay=7)
    out = transfer(jtl, {"a": stimulus_bounds([0, 100])})
    assert out["q"] == PulseBounds(2, 2, 7, 107, 100)


def test_splitter_duplicates_stream():
    sp = Splitter("s", delay=3)
    out = transfer(sp, {"a": single_pulse_bounds(10)})
    assert out["q1"] == out["q2"]
    assert out["q1"].t_min == 10 + 3


def test_merger_counts_add_and_dead_time_spaces_output():
    m = IdealMerger("m", delay=0)
    out = transfer(m, {"a": single_pulse_bounds(0),
                       "b": single_pulse_bounds(500)})
    assert (out["q"].n_lo, out["q"].n_hi) == (0, 2)
    assert out["q"].gap == 500  # disjoint windows keep their separation

    lossy = Merger("m2", delay=0, dead_time=1_000)
    out = transfer(lossy, {"a": stimulus_bounds([0, 100]), "b": NONE})
    # Collisions possible: only the first arrival is guaranteed through,
    # and whatever does emerge is spaced at least a dead time apart.
    assert out["q"].n_lo == 1
    assert out["q"].n_hi == 2
    assert out["q"].gap == 1_000


def test_tff_halves_counts_and_doubles_gap():
    tff = Tff("t", delay=0)
    out = transfer(tff, {"a": stimulus_bounds([0, 100, 200, 300])})
    assert (out["q"].n_lo, out["q"].n_hi) == (2, 2)
    assert out["q"].gap == 200


def test_tff2_alternates_starting_at_q1():
    tff2 = Tff2("t2", delay=0)
    out = transfer(tff2, {"a": stimulus_bounds([0, 100, 200])})
    assert (out["q1"].n_lo, out["q1"].n_hi) == (2, 2)
    assert (out["q2"].n_lo, out["q2"].n_hi) == (1, 1)


def test_ndro_gates_clock_by_set_state():
    ndro = Ndro("n", delay=0)
    clk = stimulus_bounds([0, 100, 200])
    # Armed: at most one emission per clock, timed like the clock.
    out = transfer(ndro, {"set": single_pulse_bounds(0), "clk": clk})
    assert (out["q"].n_lo, out["q"].n_hi) == (0, 3)
    assert (out["q"].t_min, out["q"].t_max) == (0, 200)
    # Never set: provably silent.
    assert transfer(ndro, {"set": NONE, "clk": clk})["q"].is_none


def test_inverter_suppression_lowers_floor_only():
    inv = Inverter("i", delay=0)
    clk = stimulus_bounds([0, 100, 200])
    out = transfer(inv, {"a": single_pulse_bounds(0), "clk": clk})
    assert (out["q"].n_lo, out["q"].n_hi) == (2, 3)


def test_unknown_cell_degrades_to_top_not_crash():
    class Exotic:
        name = "x"
        input_names = ("a",)
        output_names = ("q",)

    out = transfer(Exotic(), {"a": single_pulse_bounds(5)})
    assert out["q"].n_hi == INF
    assert out["q"].t_min == 5


def test_epoch_relative_transfer_reanchors_rl_storage():
    rl = RlBuffer("rl", epoch_fs=1_000)
    assert epoch_latency_fs(rl) == 1_000
    stream = single_pulse_bounds(50)
    real = transfer(rl, {"in": stream})["out"]
    rebased = epoch_relative_transfer(rl, {"in": stream})["out"]
    assert real.t_min == 1_050  # replayed one epoch later, in real time
    assert rebased.t_min == 50  # same slot of the *next* epoch
    assert epoch_latency_fs(Jtl("j")) == 0
