"""Algebraic invariants of the PulseBounds abstract domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analyze.domain import (
    INF,
    NONE,
    TOP,
    PulseBounds,
    bounds_to_dict,
    contains,
    describe,
    join,
    sat_add,
    single_pulse_bounds,
    stimulus_bounds,
    superpose,
    superpose_all,
    widen,
)


def _bounds():
    """Arbitrary well-formed PulseBounds values (INF-aware)."""

    @st.composite
    def build(draw):
        n_hi = draw(st.sampled_from([0, 1, 2, 5, 100, INF]))
        if n_hi == 0:
            return NONE
        n_lo = draw(st.integers(0, min(n_hi, 100)))
        t_min = draw(st.sampled_from([0, 1, 12_000, 10**6]))
        t_max = draw(st.sampled_from([t_min, t_min + 12_000, INF]))
        gap = draw(st.sampled_from([0, 1, 12_000, INF]))
        return PulseBounds(n_lo, n_hi, t_min, t_max, gap)

    return build()


class TestConstruction:
    def test_fields_and_tuple_identity(self):
        b = PulseBounds(1, 2, 3, 4, 5)
        assert (b.n_lo, b.n_hi, b.t_min, b.t_max, b.gap) == (1, 2, 3, 4, 5)
        assert tuple(b) == (1, 2, 3, 4, 5)
        assert b == PulseBounds(1, 2, 3, 4, 5)
        assert hash(b) == hash((1, 2, 3, 4, 5))

    def test_malformed_count_interval_rejected(self):
        with pytest.raises(ValueError, match="count interval"):
            PulseBounds(3, 2, 0, 0, 0)
        with pytest.raises(ValueError, match="count interval"):
            PulseBounds(-1, 2, 0, 0, 0)

    def test_malformed_window_rejected_only_when_live(self):
        with pytest.raises(ValueError, match="time window"):
            PulseBounds(0, 1, 10, 5, 0)
        # An empty stream's window is vacuous.
        assert PulseBounds(0, 0, 10, 5, 0).is_none

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            PulseBounds(0, 1, 0, 0, -1)

    def test_repr_mentions_fields(self):
        assert "n_lo=1" in repr(PulseBounds(1, 2, 3, 4, 5))


class TestQueries:
    def test_none_and_top(self):
        assert NONE.is_none
        assert not TOP.is_none
        assert TOP.contains_count(10**9)
        assert TOP.contains_time(0) and TOP.contains_time(10**12)

    def test_shift_preserves_counts_and_gap(self):
        b = PulseBounds(1, 3, 100, 200, 50)
        s = b.shift(10)
        assert (s.n_lo, s.n_hi, s.gap) == (1, 3, 50)
        assert (s.t_min, s.t_max) == (110, 210)
        assert b.shift(0) is b
        assert NONE.shift(123) is NONE

    def test_shift_clamps_at_inf(self):
        b = PulseBounds(0, 1, 0, INF, 0)
        assert b.shift(10).t_max == INF

    def test_scale_and_with_count(self):
        b = PulseBounds(4, 9, 0, 10, 5)
        halved = b.scale_count(2, 2)
        assert (halved.n_lo, halved.n_hi) == (2, 4)
        assert b.with_count(0, 0).is_none
        assert b.with_count(2, 20).n_hi == 20


class TestOperators:
    @given(_bounds(), _bounds())
    def test_join_is_an_upper_bound(self, a, b):
        j = join(a, b)
        assert contains(j, a) and contains(j, b)

    @given(_bounds(), _bounds())
    def test_superpose_counts_add(self, a, b):
        s = superpose(a, b)
        assert s.n_hi == sat_add(a.n_hi, b.n_hi)
        if not (a.is_none or b.is_none):
            assert s.n_lo == sat_add(a.n_lo, b.n_lo)
            assert s.t_min == min(a.t_min, b.t_min)
            assert s.t_max == max(a.t_max, b.t_max)

    def test_superpose_identity_is_none(self):
        b = PulseBounds(1, 2, 5, 9, 4)
        assert superpose(NONE, b) == b
        assert superpose(b, NONE) == b

    def test_superpose_disjoint_windows_keep_cross_gap(self):
        early = PulseBounds(1, 1, 0, 10, INF)
        late = PulseBounds(1, 1, 100, 110, INF)
        assert superpose(early, late).gap == 90

    def test_superpose_overlapping_windows_lose_spacing(self):
        a = PulseBounds(1, 2, 0, 100, 50)
        b = PulseBounds(1, 2, 50, 150, 60)
        assert superpose(a, b).gap == 0

    def test_superpose_all(self):
        streams = [single_pulse_bounds(t) for t in (0, 100, 200)]
        total = superpose_all(streams)
        assert (total.n_lo, total.n_hi) == (0, 3)
        assert (total.t_min, total.t_max) == (0, 200)

    @given(_bounds(), _bounds())
    def test_widen_over_approximates(self, old, new):
        w = widen(old, new)
        if not new.is_none and not old.is_none:
            assert contains(w, old) and contains(w, new)

    def test_widen_reaches_fixpoint_per_field(self):
        old = PulseBounds(1, 2, 0, 100, 10)
        grown = PulseBounds(1, 3, 0, 150, 10)
        once = widen(old, grown)
        assert once.n_hi == INF and once.t_max == INF
        # A second growth step in the same fields is absorbed.
        assert widen(once, PulseBounds(1, 5, 0, 10**9, 10)) == once


class TestStimulus:
    def test_stimulus_bounds_exact(self):
        b = stimulus_bounds([300, 0, 100])
        assert (b.n_lo, b.n_hi) == (3, 3)
        assert (b.t_min, b.t_max) == (0, 300)
        assert b.gap == 100
        assert stimulus_bounds([]).is_none

    def test_single_pulse(self):
        b = single_pulse_bounds(42)
        assert (b.n_lo, b.n_hi, b.t_min, b.t_max, b.gap) == (0, 1, 42, 42, INF)


class TestRendering:
    def test_describe(self):
        assert describe(NONE) == "none"
        text = describe(PulseBounds(1, INF, 0, INF, 3))
        assert "n=[1,inf]" in text and "gap>=3" in text

    def test_bounds_to_dict_encodes_inf_as_none(self):
        d = bounds_to_dict(PulseBounds(1, INF, 0, INF, INF))
        assert d == {"n_lo": 1, "n_hi": None, "t_min": 0,
                     "t_max": None, "gap": None}
