"""Shipped-block acceptance: static proofs hold, and simulation stays
inside the analyzer's bounds on every registry entry."""

import pytest

from repro.analyze.api import analyze_circuit
from repro.analyze.blocks import (
    SHIPPED_BLOCKS,
    analyze_all_blocks,
    analyze_shipped_block,
)
from repro.lint.blocks import build_shipped_block
from repro.pulsesim import Simulator


@pytest.mark.parametrize("name", sorted(SHIPPED_BLOCKS))
def test_shipped_block_proofs_hold(name):
    """Epoch and collision safety proven without running the simulator."""
    analysis = analyze_shipped_block(name)
    report = analysis.report
    assert report.ok, report.format_text(verbose=True)
    assert not report.by_check("epoch-overflow")
    stats = report.stats
    # Every checked merger is either proven collision-free or carries an
    # explicit (possibly waived) collision warning — never silence.
    collisions = len(report.by_check("merger-collision")) + sum(
        1 for f in report.waived if f.check == "merger-collision"
    )
    assert stats["mergers_proved"] + collisions == stats["mergers_checked"]
    assert stats["queue_depth_bound"] is not None
    assert stats["switching_events_hi"] is not None
    # Fixpoint effort stays trivially bounded on real netlists.
    assert stats["fixpoint_iterations"] <= 3 * len(
        analysis.fixpoint.circuit.elements)


@pytest.mark.parametrize("name", sorted(SHIPPED_BLOCKS))
def test_simulation_stays_inside_static_bounds(name):
    """Soundness on the shipped netlists: one pulse per entry at t = 0,
    simulated for real, must land inside the stimulus-mode bounds."""
    built = build_shipped_block(name)
    circuit = built.circuit
    from repro.pulsesim.probe import PulseRecorder

    probes = {
        (element.name, port): circuit.probe(
            element, port,
            probe=PulseRecorder(f"soundness.{element.name}.{port}"))
        for element, port in built.observed_outputs
    }
    stimulus = {(e, p): [0] for e, p in built.entry_points}
    analysis = analyze_circuit(
        circuit, built.entry_points, built.observed_outputs,
        stimulus=stimulus,
    )
    sim = Simulator(circuit, kernel="reference")
    for element, port in built.entry_points:
        sim.schedule_input(element, port, 0)
    stats = sim.run()

    for element, port in built.observed_outputs:
        bounds = analysis.output_bounds(element, port)
        times = list(probes[(element.name, port)].times)
        assert bounds.contains_count(len(times)), (
            f"{element.name}.{port}: {len(times)} pulses vs {bounds}"
        )
        for t in times:
            assert bounds.contains_time(t), (
                f"{element.name}.{port}: pulse at {t} vs {bounds}"
            )
        for earlier, later in zip(times, times[1:]):
            assert bounds.admits_spacing(later - earlier)
    assert stats.max_queue_depth <= analysis.queue_depth_bound


def test_analyze_all_blocks_covers_registry_in_order():
    analyses = analyze_all_blocks()
    assert len(analyses) == len(SHIPPED_BLOCKS)
    assert all(a.report.ok for a in analyses)
