"""Derived checks: overflow witnesses, collisions, dead paths, and the
queue/energy bounds cross-checked against a real simulation."""

from repro.analyze.api import AnalyzeConfig, analyze_circuit
from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
from repro.encoding.epoch import EpochSpec
from repro.lint.api import LintConfig, lint_circuit
from repro.lint.report import Severity
from repro.models.power import measured_switching_events
from repro.pulsesim import Circuit, Simulator
from repro.trace.session import TraceSession


def _epoch():
    return EpochSpec(bits=2, slot_fs=100)  # 400 fs budget


def _overlong_chain():
    """Entry -> jtl -> (1000 fs wire) -> jtl -> observed: blows a 400 fs
    epoch on the last hop only."""
    circuit = Circuit("overlong")
    head = circuit.add(Jtl("head", delay=10))
    tail = circuit.add(Jtl("tail", delay=10))
    circuit.connect(head, "q", tail, "a", delay=1_000)
    return circuit, head, tail


class TestEpochOverflow:
    def test_seeded_fault_caught_with_witness_chain(self):
        circuit, head, tail = _overlong_chain()
        analysis = analyze_circuit(
            circuit, [(head, "a")], [(tail, "q")],
            config=AnalyzeConfig(epoch=_epoch()),
        )
        report = analysis.report
        assert not report.ok
        [finding] = report.by_check("epoch-overflow")
        assert finding.severity is Severity.ERROR
        assert finding.element == "tail" and finding.port == "q"
        # Witness reads stimulus-first and ends at the flagged emission.
        assert "stimulus" in finding.witness[0]
        assert finding.witness[-1].startswith("tail.q")
        assert report.stats["epoch_slack_fs"] == 400 - 1_020

    def test_linter_agrees_on_the_same_fault(self):
        circuit, head, tail = _overlong_chain()
        lint = lint_circuit(
            circuit, [(head, "a")], [(tail, "q")],
            config=LintConfig(epoch=_epoch()),
        )
        assert any(d.rule == "epoch-overflow" for d in lint.diagnostics)

    def test_within_budget_is_clean_with_positive_slack(self):
        circuit = Circuit("short")
        head = circuit.add(Jtl("head", delay=10))
        analysis = analyze_circuit(
            circuit, [(head, "a")], [(head, "q")],
            config=AnalyzeConfig(epoch=_epoch()),
        )
        assert analysis.report.ok
        assert analysis.report.stats["epoch_slack_fs"] == 390


class TestMergerCollision:
    def _fan_in(self, dead_time, skew):
        circuit = Circuit("fanin")
        a = circuit.add(Jtl("a", delay=10))
        b = circuit.add(Jtl("b", delay=10 + skew))
        m = circuit.add(Merger("m", delay=10, dead_time=dead_time))
        circuit.connect(a, "q", m, "a", delay=0)
        circuit.connect(b, "q", m, "b", delay=0)
        return circuit, a, b, m

    def test_disjoint_windows_prove_freedom(self):
        circuit, a, b, m = self._fan_in(dead_time=50, skew=500)
        analysis = analyze_circuit(
            circuit, [(a, "a"), (b, "a")], [(m, "q")])
        assert not analysis.report.by_check("merger-collision")
        assert analysis.report.stats["mergers_proved"] == 1

    def test_overlapping_windows_flagged_with_both_streams(self):
        circuit, a, b, m = self._fan_in(dead_time=50, skew=0)
        analysis = analyze_circuit(
            circuit, [(a, "a"), (b, "a")], [(m, "q")])
        [finding] = analysis.report.by_check("merger-collision")
        assert finding.severity is Severity.WARNING
        assert len(finding.witness) == 2  # one line per live input
        assert analysis.report.stats["mergers_proved"] == 0

    def test_waiver_moves_finding_aside(self):
        circuit, a, b, m = self._fan_in(dead_time=50, skew=0)
        analysis = analyze_circuit(
            circuit, [(a, "a"), (b, "a")], [(m, "q")],
            config=AnalyzeConfig(waive=frozenset({"merger-collision"})),
        )
        assert not analysis.report.findings
        assert len(analysis.report.waived) == 1


class TestDeadPath:
    def test_requires_stimulus_mode(self):
        circuit = Circuit("dead")
        a = circuit.add(Jtl("a", delay=10))
        b = circuit.add(Jtl("b", delay=10))
        circuit.connect(a, "q", b, "a", delay=0)
        # Proof mode: liveness not judged.
        proof = analyze_circuit(circuit, [(a, "a")], [(b, "q")])
        assert not proof.report.by_check("dead-path")
        # Stimulus mode with a silent entry: both the wired input and the
        # observed output are provably dead.
        analysis = analyze_circuit(
            circuit, [(a, "a")], [(b, "q")],
            stimulus={(a, "a"): []},
        )
        dead = analysis.report.by_check("dead-path")
        assert {(f.element, f.port) for f in dead} == {("b", "a"), ("b", "q")}


class TestDynamicBracketing:
    """Static bounds must contain what one simulation actually does."""

    def _tree(self):
        circuit = Circuit("tree")
        root = circuit.add(Splitter("root", delay=10))
        left = circuit.add(Jtl("left", delay=10))
        right = circuit.add(Jtl("right", delay=10))
        m = circuit.add(IdealMerger("m", delay=10))
        circuit.connect(root, "q1", left, "a", delay=100)
        circuit.connect(root, "q2", right, "a", delay=200)
        circuit.connect(left, "q", m, "a", delay=0)
        circuit.connect(right, "q", m, "b", delay=0)
        circuit.probe(m, "q")
        return circuit, root

    def test_queue_bound_dominates_simulated_peak(self):
        circuit, root = self._tree()
        times = [0, 1_000, 2_000]
        analysis = analyze_circuit(
            circuit, stimulus={(root, "a"): times})
        sim = Simulator(circuit, kernel="reference")
        sim.schedule_train(root, "a", times)
        stats = sim.run()
        assert analysis.queue_depth_bound >= stats.max_queue_depth

    def test_energy_envelope_brackets_measured_activity(self):
        circuit, root = self._tree()
        times = [0, 1_000, 2_000]
        analysis = analyze_circuit(
            circuit, stimulus={(root, "a"): times})
        lo, hi = analysis.switching_events
        session = TraceSession(circuit)
        sim = Simulator(circuit, kernel="reference", trace=session)
        sim.schedule_train(root, "a", times)
        sim.run()
        measured = measured_switching_events(session, circuit)
        assert lo <= measured <= hi
