"""The repro.verify static-soundness oracle: registered, holds on honest
transfers, and has teeth against a deliberately unsound one."""

from repro.analyze import transfer as transfermod
from repro.analyze.domain import NONE
from repro.verify.generator import example_rng, generate_spec, profile
from repro.verify.oracles import ORACLES, oracle_static_soundness
from repro.verify.spec import CellSpec, NetlistSpec, WireSpec


def _jtl_spec():
    # Entry splitter (pool slots 0-1) feeding a Jtl chain; the tail's
    # output and the entry's q2 stay unconsumed, hence probed.
    return NetlistSpec(
        cells=(
            CellSpec("Jtl", (WireSpec(0),)),
            CellSpec("Jtl", (WireSpec(2, delay=1_000),)),
        ),
        stimulus=(0, 5_000, 10_000),
    )


def test_oracle_is_registered_in_the_matrix():
    assert ORACLES["static-soundness"] is oracle_static_soundness
    # Canonical order puts the two most expensive oracles last: the
    # soundness sweep, then the process-spawning shard differential.
    assert list(ORACLES).index("static-soundness") == len(ORACLES) - 2
    assert list(ORACLES).index("shard-differential") == len(ORACLES) - 1


def test_holds_on_generated_and_handwritten_specs():
    spec = generate_spec(example_rng(0, 0), profile("smoke"))
    assert oracle_static_soundness(spec).ok
    result = oracle_static_soundness(_jtl_spec())
    assert result.ok and result.applicable


def test_catches_an_unsound_transfer_function(monkeypatch):
    # A Jtl "transfer" claiming the output stays silent is a soundness
    # lie; the simulated pulses escape the bounds and the oracle trips.
    def unsound_jtl(element, inputs):
        return {"q": NONE}

    monkeypatch.setitem(transfermod.TRANSFER, "Jtl", unsound_jtl)
    result = oracle_static_soundness(_jtl_spec())
    assert not result.ok
    assert "outside" in result.detail
