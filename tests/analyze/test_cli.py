"""usfq-analyze CLI: output shapes, exit codes, fail-on policy."""

import json

import pytest

from repro.analyze.cli import main


def test_list_blocks(capsys):
    assert main(["--list-blocks"]) == 0
    out = capsys.readouterr().out
    assert "dpu" in out and "cgra-fabric" in out


def test_text_report_single_block(capsys):
    assert main(["dpu"]) == 0
    out = capsys.readouterr().out
    assert "== dpu:dpu ==" in out
    assert "epoch_slack_fs" in out
    assert "analyzed 1 block(s)" in out


def test_json_all_blocks(capsys):
    assert main(["--all-blocks", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert len(document["targets"]) == 10
    for target in document["targets"]:
        assert "bounds" not in target
        assert target["stats"]["queue_depth_bound"] is not None


def test_json_bounds_table(capsys):
    assert main(["pnm", "--json", "--bounds"]) == 0
    document = json.loads(capsys.readouterr().out)
    rows = document["targets"][0]["bounds"]
    assert rows and {"element", "port", "dir", "bounds"} <= set(rows[0])


def test_output_file(tmp_path, capsys):
    path = tmp_path / "nested" / "dpu.json"
    assert main(["dpu", "--output", str(path)]) == 0
    assert capsys.readouterr().out == ""
    document = json.loads(path.read_text())
    assert document["targets"][0]["target"] == "dpu:dpu"


def test_fail_on_severity_policy():
    # balancer carries merger-collision warnings: clean at the default
    # error threshold, failing once warnings gate.
    assert main(["balancer"]) == 0
    assert main(["balancer", "--fail-on", "warning"]) == 1
    assert main(["balancer", "--fail-on", "never"]) == 0


def test_unknown_block_and_empty_invocation_are_usage_errors(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["no-such-block"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit):
        main([])
