"""Fixpoint engine: DAG exactness, widening termination, plan caching."""

import pytest

from repro.analyze.domain import INF, single_pulse_bounds
from repro.analyze.engine import MAX_VISITS, fixpoint
from repro.cells.interconnect import IdealMerger, Jtl, Splitter
from repro.lint.graph import CircuitGraph
from repro.pulsesim import Circuit


def _chain(length=3, delay=10, wire_delay=5):
    circuit = Circuit("chain")
    cells = [circuit.add(Jtl(f"j{i}", delay=delay)) for i in range(length)]
    for a, b in zip(cells, cells[1:]):
        circuit.connect(a, "q", b, "a", delay=wire_delay)
    return circuit, cells


def _entry(cells):
    return {(id(cells[0]), "a"): single_pulse_bounds(0)}


def test_dag_converges_in_one_pass_with_exact_bounds():
    circuit, cells = _chain(4)
    graph = CircuitGraph(circuit, [(cells[0], "a")])
    fx = fixpoint(circuit, graph, _entry(cells))
    # Topological seeding: exactly one evaluation per element.
    assert fx.iterations == 4
    assert not fx.widened
    # Exact propagation: each hop adds cell delay + wire delay.
    for hop, cell in enumerate(cells):
        out = fx.output_bounds(cell, "q")
        assert (out.n_lo, out.n_hi) == (0, 1)
        assert out.t_min == out.t_max == (hop + 1) * 10 + hop * 5


def test_undriven_subgraph_stays_none():
    circuit, cells = _chain(3)
    orphan = circuit.add(Jtl("orphan"))
    graph = CircuitGraph(circuit, [(cells[0], "a")])
    fx = fixpoint(circuit, graph, _entry(cells))
    assert fx.output_bounds(orphan, "q").is_none
    assert fx.input_bounds(orphan, "a").is_none


def test_feedback_loop_widens_and_terminates():
    # splitter -> merger -> splitter: a combinational pulse racetrack.
    circuit = Circuit("loop")
    merger = circuit.add(IdealMerger("m", delay=10))
    split = circuit.add(Splitter("s", delay=10))
    circuit.connect(merger, "q", split, "a", delay=5)
    circuit.connect(split, "q1", merger, "b", delay=5)
    graph = CircuitGraph(circuit, [(merger, "a")])
    fx = fixpoint(circuit, graph,
                  {(id(merger), "a"): single_pulse_bounds(0)})
    assert fx.widened  # the loop forced widening
    out = fx.output_bounds(split, "q2")
    assert out.n_hi == INF  # soundly unbounded: the loop recirculates
    total = sum(
        1 for _ in circuit.elements
    ) * MAX_VISITS
    assert fx.iterations <= total


def test_plan_cache_reused_and_invalidated_by_mutation():
    circuit, cells = _chain(2)
    graph = CircuitGraph(circuit, [(cells[0], "a")])
    fixpoint(circuit, graph, _entry(cells))
    cached = circuit._pulseflow_plan
    fixpoint(circuit, graph, _entry(cells))
    assert circuit._pulseflow_plan is cached  # same topology, same plan

    tail = circuit.add(Jtl("tail", delay=10))
    circuit.connect(cells[-1], "q", tail, "a", delay=5)
    graph = CircuitGraph(circuit, [(cells[0], "a")])
    fx = fixpoint(circuit, graph, _entry(cells))
    assert circuit._pulseflow_plan is not cached  # version bump rebuilt it
    assert fx.output_bounds(tail, "q").t_max == 40


def test_entry_superposes_with_wired_drive():
    circuit = Circuit("mix")
    head, tail = circuit.add(Jtl("h", delay=10)), circuit.add(Jtl("t", delay=10))
    circuit.connect(head, "q", tail, "a", delay=0)
    graph = CircuitGraph(circuit, [(head, "a"), (tail, "a")])
    fx = fixpoint(circuit, graph, {
        (id(head), "a"): single_pulse_bounds(0),
        (id(tail), "a"): single_pulse_bounds(0),
    })
    at_tail = fx.input_bounds(tail, "a")
    assert (at_tail.n_lo, at_tail.n_hi) == (0, 2)  # stimulus + wired
    assert (at_tail.t_min, at_tail.t_max) == (0, 10)


def test_nonconvergence_backstop_raises():
    # Force pathological revisits by disabling widening entirely.
    circuit = Circuit("loop")
    merger = circuit.add(IdealMerger("m", delay=10))
    split = circuit.add(Splitter("s", delay=10))
    circuit.connect(merger, "q", split, "a", delay=5)
    circuit.connect(split, "q1", merger, "b", delay=5)
    graph = CircuitGraph(circuit, [(merger, "a")])
    from repro.errors import SimulationError

    with pytest.raises(SimulationError, match="failed to converge"):
        fixpoint(circuit, graph,
                 {(id(merger), "a"): single_pulse_bounds(0)},
                 widen_after=10 * MAX_VISITS)
