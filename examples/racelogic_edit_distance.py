#!/usr/bin/env python3
"""Dynamic programming in Race Logic: edit distance in a wavefront of pulses.

Race Logic's killer app (Madhavan et al., the paper's ref [29]) is dynamic
programming: a DP recurrence of `min` and `+constant` maps to a grid of
8-JJ first-arrival gates and delay chains, and the answer is simply *when*
the final pulse arrives.  This example computes Levenshtein edit distance
two ways:

* functionally, with `repro.core.racelogic_ops` slot algebra (min /
  add-constant) driving the classic DP recurrence, and
* structurally for the final reduction, racing candidate pulses through a
  first-arrival tree on the pulse simulator.

It then contrasts the JJ budget with a binary comparator-based DP cell.

Run:  python examples/racelogic_edit_distance.py
"""

from repro.core.racelogic_ops import RaceLogicAlu, add_constant, min_slots
from repro.encoding.epoch import EpochSpec
from repro.models import baselines


def edit_distance_race_logic(a: str, b: str, n_max: int = 64):
    """Levenshtein distance where every cell value is an arrival slot.

    dp[i][j] = min( dp[i-1][j] + 1,           # deletion: delay 1 slot
                    dp[i][j-1] + 1,           # insertion: delay 1 slot
                    dp[i-1][j-1] + cost )     # substitution or match
    Each `+ k` is a k-slot delay chain, each `min` an FA gate.
    """
    rows, cols = len(a) + 1, len(b) + 1
    dp = [[0] * cols for _ in range(rows)]
    fa_gates = 0
    for i in range(rows):
        dp[i][0] = add_constant(0, i, n_max)
    for j in range(cols):
        dp[0][j] = add_constant(0, j, n_max)
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            delete = add_constant(dp[i - 1][j], 1, n_max)
            insert = add_constant(dp[i][j - 1], 1, n_max)
            substitute = add_constant(dp[i - 1][j - 1], cost, n_max)
            dp[i][j] = min_slots(min_slots(delete, insert), substitute)
            fa_gates += 2  # two 2-input FA gates per cell
    return dp[-1][-1], fa_gates


def structural_min_race(slots, bits=6):
    """Race the candidate slots through FA gates on the pulse simulator."""
    epoch = EpochSpec(bits=bits)
    alu = RaceLogicAlu(epoch, "min")
    winner = slots[0]
    for slot in slots[1:]:
        winner = alu.run_slots(winner, slot)
    return winner


def reference_edit_distance(a: str, b: str) -> int:
    rows, cols = len(a) + 1, len(b) + 1
    dp = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dp[i][0] = i
    for j in range(cols):
        dp[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dp[i][j] = min(dp[i - 1][j] + 1, dp[i][j - 1] + 1, dp[i - 1][j - 1] + cost)
    return dp[-1][-1]


def main() -> None:
    pairs = [
        ("kitten", "sitting"),
        ("superconductor", "semiconductor"),
        ("sfq", "sfq"),
        ("race", "logic"),
    ]
    print("edit distance as a pulse race (min = FA gate, +1 = one-slot delay)\n")
    total_gates = 0
    for a, b in pairs:
        rl_distance, fa_gates = edit_distance_race_logic(a, b)
        reference = reference_edit_distance(a, b)
        total_gates += fa_gates
        status = "ok" if rl_distance == reference else "MISMATCH"
        print(f"  {a!r:18} vs {b!r:16} -> arrival slot {rl_distance} "
              f"(expected {reference}) [{status}]")

    # Structural finale: race the four distances for the overall minimum.
    distances = [edit_distance_race_logic(a, b)[0] for a, b in pairs]
    winner = structural_min_race(distances)
    print(f"\nclosest pair distance, raced structurally: {winner} "
          f"(expected {min(distances)})")

    fa_jj = 8
    binary_min = baselines.adder_binary_jj(8)  # comparator-class binary cell
    print(f"\narea: each DP cell needs 2 FA gates = {2 * fa_jj} JJs + delay JTLs")
    print(f"      a binary 8-bit min/add cell sits on the adder trend "
          f"(~{binary_min:,.0f} JJs) - the >90 % savings the paper cites")
    print(f"      total FA gates for the sweep above: {total_gates} "
          f"({total_gates * fa_jj:,} JJs)")


if __name__ == "__main__":
    main()
