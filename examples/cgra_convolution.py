#!/usr/bin/env python3
"""Image convolution on a U-SFQ processing-element array (section 5.2).

Maps a 2-D blur kernel onto the Fig 13b spatial array: one 126-JJ PE per
output pixel, each temporally accumulating its window's multiply-
accumulates through the integrator.  Compares against float convolution
and reports the area story (the array fits where a single binary PE
would not).

Run:  python examples/cgra_convolution.py
"""

import numpy as np

from repro import EpochSpec, PEArray
from repro.core.racelogic_ops import max_pool2d_slots, max_pool_jj
from repro.encoding.racelogic import RaceLogicCodec
from repro.models import area


def synthetic_image(size: int = 10) -> np.ndarray:
    """A bright diagonal bar on a dim background (values in [0, 0.5])."""
    image = np.full((size, size), 0.05)
    for i in range(size):
        image[i, max(0, i - 1) : min(size, i + 2)] = 0.45
    return image


def float_conv2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    kh, kw = kernel.shape
    oh, ow = image.shape[0] - kh + 1, image.shape[1] - kw + 1
    out = np.zeros((oh, ow))
    for i in range(oh):
        for j in range(ow):
            out[i, j] = np.sum(image[i : i + kh, j : j + kw] * kernel)
    return out


def render(matrix: np.ndarray) -> str:
    levels = " .:-=+*#%@"
    peak = np.max(matrix) or 1.0
    rows = []
    for row in matrix:
        rows.append("".join(levels[min(9, int(v / peak * 9))] for v in row))
    return "\n".join(rows)


def main() -> None:
    image = synthetic_image(10)
    kernel = np.full((3, 3), 1 / 9)  # box blur

    array = PEArray(EpochSpec(bits=8), rows=8, cols=8)
    unary = array.conv2d(image, kernel)
    reference = float_conv2d(image, kernel)
    rmse = float(np.sqrt(np.mean((unary - reference) ** 2)))

    print("input (10x10):")
    print(render(image))
    print("\nU-SFQ PE-array blur (8x8 outputs, 8-bit epochs):")
    print(render(unary))
    print(f"\nRMSE vs float convolution: {rmse:.4f}")

    # CNN follow-up stage: max pooling is free in Race Logic — the PEs
    # already emit RL pulses, and "max" is just the last pulse of each
    # window (one 8-JJ LA gate per reduction).
    epoch = EpochSpec(bits=8)
    race = RaceLogicCodec(epoch)
    slots = [[race.slot_for_unipolar(min(1.0, v)) for v in row] for row in unary]
    pooled_slots = max_pool2d_slots(slots, window=2)
    pooled = np.array(
        [[race.unipolar_of_slot(s) for s in row] for row in pooled_slots]
    )
    print("\nRace-Logic 2x2 max pooling of the PE outputs (LA gates):")
    print(render(pooled))
    pool_cost = pooled.size * max_pool_jj(2)
    print(f"pooling hardware: {pooled.size} windows x {max_pool_jj(2)} JJs "
          f"= {pool_cost} JJs")

    binary_pe = area.pe_binary_jj(8)
    print(f"\narea: {array.n_pes} unary PEs x 126 JJs = {array.jj_count:,} JJs")
    print(f"      one binary 8-bit PE alone = {binary_pe:,.0f} JJs")
    print(f"      -> the whole 64-PE array costs "
          f"{array.jj_count / binary_pe:.1f}x a single binary PE")


if __name__ == "__main__":
    main()
