#!/usr/bin/env python3
"""Quickstart: encode, compute, and decode with U-SFQ pulses.

Walks the paper's core idea end to end at pulse level:

1. encode one operand as a *pulse stream* (value = pulse rate) and the
   other as a *Race-Logic* pulse (value = arrival slot),
2. multiply them with a single NDRO cell (the Fig 3c multiplier),
3. add streams with a balancer counting network (Fig 6d),
4. decode by counting pulses.

Run:  python examples/quickstart.py
"""

from repro import (
    BipolarMultiplier,
    CountingNetwork,
    EpochSpec,
    PulseStreamCodec,
    RaceLogicCodec,
    UnipolarMultiplier,
)
from repro.pulsesim.schedule import uniform_stream_times


def main() -> None:
    epoch = EpochSpec(bits=6)  # 64 time slots, 12 ps each
    streams = PulseStreamCodec(epoch)
    race = RaceLogicCodec(epoch)
    print(f"computing epoch: {epoch}")
    print(f"one pulse weighs 1/{epoch.n_max} = {streams.pulse_weight:.4f}\n")

    # --- multiplication: stream x Race Logic through one NDRO ----------------
    a, b = 0.5, 0.75
    mult = UnipolarMultiplier(epoch)
    product = mult.multiply(a, b)
    print(f"unipolar multiply:  {a} x {b} = {product}  (exact {a * b})")
    print(f"  multiplier area: {mult.jj_count} JJs, independent of resolution")

    # The same operands, encoded explicitly:
    n_a = streams.count_for_unipolar(a)
    slot_b = race.slot_for_unipolar(b)
    count = mult.run_counts(n_a, slot_b)
    print(f"  encoded: {n_a} pulses x slot {slot_b} -> {count} output pulses\n")

    # --- signed multiplication: the XNOR-style bipolar multiplier ------------
    bip = BipolarMultiplier(epoch)
    for x, y in ((-0.5, 0.5), (-1.0, -1.0), (0.25, -0.75)):
        print(f"bipolar multiply:   {x:+} x {y:+} = {bip.multiply(x, y):+.4f}"
              f"  (exact {x * y:+.4f})")
    print(f"  bipolar multiplier area: {bip.jj_count} JJs "
          "(the paper's 46-JJ block)\n")

    # --- addition: a 4:1 balancer counting network ----------------------------
    values = [0.25, 0.5, 0.75, 0.125]
    network = CountingNetwork(4)
    times = [
        uniform_stream_times(streams.count_for_unipolar(v), epoch.n_max, epoch.slot_fs)
        for v in values
    ]
    out_count = network.run(times)
    decoded = out_count / epoch.n_max
    print(f"counting-network add: mean({values}) = {decoded}"
          f"  (exact {sum(values) / 4})")
    print(f"  4:1 network: 3 balancers, {network.jj_count} JJs; "
          "simultaneous pulses survive (unlike a merger)")


if __name__ == "__main__":
    main()
