#!/usr/bin/env python3
"""Design-space exploration: should *your* FIR be unary or binary?

Interactive use of the Fig 18/20 cost models: give a tap count and bit
resolution (or sweep the defaults) and get the latency / area / efficiency
comparison plus a recommendation, echoing the paper's conclusion that
U-SFQ wins for low-resolution, high-tap, area-constrained designs.

Run:  python examples/design_space_explorer.py [taps bits]
"""

import sys

from repro.models import area, efficiency, latency, regions
from repro.units import to_us


def compare(taps: int, bits: int) -> None:
    unary_lat = latency.fir_unary_latency_fs(bits)
    binary_lat = latency.fir_binary_latency_fs(taps, bits)
    unary_jj = area.fir_unary_jj(taps, bits)
    binary_jj = area.fir_binary_jj(taps, bits)
    unary_eff = efficiency.fir_unary_efficiency(taps, bits)
    binary_eff = efficiency.fir_binary_efficiency(taps, bits)

    print(f"\nFIR @ {taps} taps, {bits} bits")
    print(f"  latency    : unary {to_us(unary_lat):9.4f} us  "
          f"binary {to_us(binary_lat):9.4f} us")
    print(f"  area       : unary {unary_jj:9,} JJ  binary {binary_jj:9,.0f} JJ")
    print(f"  efficiency : unary {unary_eff:9.1f} kOPs/JJ  "
          f"binary {binary_eff:9.1f} kOPs/JJ")

    wins = sum(
        (unary_lat < binary_lat, unary_jj < binary_jj, unary_eff > binary_eff)
    )
    verdict = "U-SFQ" if wins >= 2 else "binary SFQ"
    print(f"  verdict    : {verdict} ({wins}/3 metrics favour unary)")

    for region in (regions.IR_SENSORS, regions.SDR):
        if region.contains(taps, bits):
            print(f"  application: inside the paper's {region.name} region")


def main() -> None:
    if len(sys.argv) == 3:
        compare(int(sys.argv[1]), int(sys.argv[2]))
        return

    print("sweeping representative designs (pass 'taps bits' to query one):")
    for taps, bits, label in (
        (32, 6, "IR-sensor class"),
        (32, 12, "high-precision small filter"),
        (256, 8, "RTL-2832U-class SDR"),
        (512, 12, "RSP-class SDR"),
    ):
        print(f"\n--- {label} ---", end="")
        compare(taps, bits)

    print("\nlatency-savings map (positive % = unary faster; .... = binary wins):")
    grid = regions.savings_grid("latency")
    for line in regions.render_grid_ascii(grid):
        print(" ", line)


if __name__ == "__main__":
    main()
