#!/usr/bin/env python3
"""Tone recovery with the U-SFQ FIR accelerator (the paper's section 5.4.1).

Builds the evaluation workload — a 1 kHz tone buried under 7/8/9 kHz
interference — designs the 16-tap low-pass, runs it through the unary FIR
and the fixed-point binary baseline, and then injects errors to show the
paper's headline resilience result: at a 30 % error rate the binary filter
collapses while the unary filter loses only a few dB.

Run:  python examples/fir_audio_recovery.py
"""

import numpy as np

from repro import BinaryFirFilter, EpochSpec, UnaryFirFilter
from repro.dsp.golden import make_golden_reference
from repro.dsp.snr import snr_db, tone_power_db

BITS = 16


def measure(golden, output) -> float:
    return snr_db(golden.target, output, skip=golden.skip)


def main() -> None:
    golden = make_golden_reference()
    print("workload: 1 kHz + 7/8/9 kHz superposition, 16-tap low-pass")
    print(f"float-filter output SNR: {golden.golden_snr_db:.1f} dB "
          "(paper: 25.7 dB)\n")

    unary = UnaryFirFilter(EpochSpec(BITS), golden.h, exact_counting=False)
    binary = BinaryFirFilter(BITS, golden.h)
    print(f"clean {BITS}-bit unary FIR : {measure(golden, unary.process(golden.x)):.1f} dB")
    print(f"clean {BITS}-bit binary FIR: {measure(golden, binary.process(golden.x)):.1f} dB\n")

    print("error rate   binary (bit flips)   unary (pulse loss)")
    for rate in (0.01, 0.1, 0.3):
        b = BinaryFirFilter(BITS, golden.h, bit_flip_rate=rate, seed=1)
        u = UnaryFirFilter(
            EpochSpec(BITS), golden.h,
            pulse_loss_rate=rate, exact_counting=False, seed=1,
        )
        print(f"{rate:>10.0%}   {measure(golden, b.process(golden.x)):>15.1f} dB"
              f"   {measure(golden, u.process(golden.x)):>15.1f} dB")

    # Spectral view: even at 50 % pulse loss the tone survives.
    lossy = UnaryFirFilter(
        EpochSpec(BITS), golden.h, pulse_loss_rate=0.5,
        exact_counting=False, seed=2,
    )
    out = lossy.process(golden.x)[golden.skip:]
    tone = tone_power_db(out, golden.sample_rate_hz, 1_000.0)
    interference = tone_power_db(out, golden.sample_rate_hz, 8_000.0)
    print(f"\nat 50 % pulse loss: 1 kHz tone {tone:.1f} dB vs "
          f"8 kHz residue {interference:.1f} dB")
    print("every pulse carries the same 1/2^16 weight - no pulse is an MSB")

    print(f"\naccelerator cost at {BITS} bits, 16 taps: "
          f"{unary.jj_count:,} JJs (unary) vs {binary.jj_count:,.0f} JJs (binary)")


if __name__ == "__main__":
    main()
