#!/usr/bin/env python3
"""A tiny neural network on U-SFQ dot-product units (section 5.3).

The DPU is "the building block for artificial neural networks"; this
example runs a 2-layer MLP classifier entirely on bipolar DPUs — weights
live in the coefficient bank's domain ([-1, 1] streams), activations
travel as Race-Logic pulses.  The task is a classic non-linear toy
problem (two interleaved half-moons) learned offline with plain numpy;
inference runs at U-SFQ precision and is compared against float inference.

Run:  python examples/dpu_neural_network.py
"""

import numpy as np

from repro import DpuModel, EpochSpec

HIDDEN = 8
BITS = 8
RNG = np.random.default_rng(0)


def make_moons(n: int):
    """Two interleaved half circles, lightly noisy."""
    angles = RNG.uniform(0, np.pi, n)
    upper = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    lower = np.stack([1 - np.cos(angles), -np.sin(angles) + 0.35], axis=1)
    x = np.concatenate([upper, lower]) * 0.5
    x += RNG.normal(0, 0.03, x.shape)
    x = np.clip(x, -1.0, 1.0)  # keep activations unary-representable
    y = np.concatenate([np.zeros(n), np.ones(n)])
    shuffle = RNG.permutation(2 * n)
    return x[shuffle], y[shuffle]


def train_float_mlp(x, y, epochs=3_000, lr=0.5):
    """Minimal backprop for a 2-HIDDEN-1 tanh MLP (offline, float)."""
    w1 = RNG.normal(0, 0.5, (2, HIDDEN))
    b1 = np.zeros(HIDDEN)
    w2 = RNG.normal(0, 0.5, HIDDEN)
    b2 = 0.0
    for _ in range(epochs):
        hidden = np.tanh(x @ w1 + b1)
        logits = hidden @ w2 + b2
        prob = 1 / (1 + np.exp(-logits))
        grad_logits = (prob - y) / len(y)
        w2 -= lr * hidden.T @ grad_logits
        b2 -= lr * np.sum(grad_logits)
        grad_hidden = np.outer(grad_logits, w2) * (1 - hidden**2)
        w1 -= lr * x.T @ grad_hidden
        b1 -= lr * np.sum(grad_hidden, axis=0)
    return w1, b1, w2, b2


def dpu_inference(x, w1, b1, w2, b2):
    """Run the MLP with every dot product on a bipolar DPU.

    Each DPU lane pairs one activation (Race Logic) with one weight
    (pulse stream); the bias rides on a constant +1 lane.  DPU outputs are
    sums scaled by 1/L, undone before the activation function.
    """
    epoch = EpochSpec(bits=BITS)
    layer1 = DpuModel(epoch, 4, bipolar=True)   # [x0, x1, bias, pad]
    layer2 = DpuModel(epoch, 16, bipolar=True)  # HIDDEN + bias + pads

    # Scale weights into the representable range; undo after the DPU.
    scale1 = max(1.0, np.max(np.abs(np.concatenate([w1.ravel(), b1]))))
    scale2 = max(1.0, np.max(np.abs(np.concatenate([w2, [b2]]))))

    predictions = []
    for sample in x:
        hidden = []
        for j in range(HIDDEN):
            weights = [w1[0, j] / scale1, w1[1, j] / scale1, b1[j] / scale1, 0.0]
            values = [sample[0], sample[1], 1.0, 0.0]
            total = layer1.dot(values, weights) * 4 * scale1
            hidden.append(np.tanh(total))
        weights = list(w2 / scale2) + [b2 / scale2] + [0.0] * (16 - HIDDEN - 1)
        values = hidden + [1.0] + [0.0] * (16 - HIDDEN - 1)
        logit = layer2.dot(values, weights) * 16 * scale2
        predictions.append(1.0 if logit > 0 else 0.0)
    return np.asarray(predictions), layer1, layer2


def main() -> None:
    x, y = make_moons(80)
    w1, b1, w2, b2 = train_float_mlp(x, y)

    hidden = np.tanh(x @ w1 + b1)
    float_pred = (hidden @ w2 + b2 > 0).astype(float)
    float_acc = np.mean(float_pred == y)

    dpu_pred, layer1, layer2 = dpu_inference(x, w1, b1, w2, b2)
    dpu_acc = np.mean(dpu_pred == y)
    agreement = np.mean(dpu_pred == float_pred)

    print(f"two-moons MLP (2-{HIDDEN}-1), {len(y)} samples, {BITS}-bit unary inference")
    print(f"float accuracy:        {float_acc:.1%}")
    print(f"U-SFQ DPU accuracy:    {dpu_acc:.1%}")
    print(f"prediction agreement:  {agreement:.1%}")

    per_neuron = layer1.jj_count
    output_layer = layer2.jj_count
    total = HIDDEN * per_neuron + output_layer
    print(f"\nhardware: {HIDDEN} x 4-lane DPUs ({per_neuron} JJs each) + one "
          f"16-lane DPU ({output_layer} JJs) = {total:,} JJs total")
    print("a single binary 8-bit MAC already costs ~10,000 JJs (Table 2 fits)")


if __name__ == "__main__":
    main()
