#!/usr/bin/env python3
"""Tutorial: build your own SFQ cell and circuit on the pulse simulator.

For downstream users extending the library: define a behavioural cell
(subclass :class:`repro.pulsesim.Element`), wire it into a circuit with
library cells, simulate, probe, inject faults, and export the netlist —
the complete extension workflow in one script.

The custom cell here is a *pulse gater*: it passes its data stream only
while an enable window is open (enable pulse opens, disable closes) — a
building block the library itself doesn't ship.

Run:  python examples/pulse_sim_tutorial.py
"""

import json

from repro.cells import Merger, Splitter
from repro.pulsesim import Circuit, JitterChannel, Simulator
from repro.pulsesim.element import Element, PortSpec
from repro.pulsesim.export import cell_census, netlist_description, to_dot
from repro.units import ps, to_ps


# --- step 1: a custom behavioural cell -------------------------------------------
class PulseGater(Element):
    """Passes ``data`` pulses while the enable window is open.

    Declaring ``enable``/``disable`` at priority 0 makes control win over
    data when pulses coincide — the same tie-break idiom the library's
    NDRO uses for the Race-Logic multiply convention.
    """

    INPUTS = (
        PortSpec("enable", priority=0),
        PortSpec("disable", priority=0),
        PortSpec("data", priority=1),
    )
    OUTPUTS = ("q",)
    jj_count = 11  # an NDRO-class SQUID

    def __init__(self, name, delay=ps(5)):
        super().__init__(name)
        self.delay = delay
        self.open = False
        self.blocked = 0

    def handle(self, sim, port, time):
        if port == "enable":
            self.open = True
        elif port == "disable":
            self.open = False
        elif self.open:
            self.emit(sim, "q", time + self.delay)
        else:
            self.blocked += 1

    def reset(self):
        self.open = False
        self.blocked = 0


def main() -> None:
    # --- step 2: wire a circuit from custom + library cells ---------------------
    circuit = Circuit("tutorial")
    source_fan = circuit.add(Splitter("fan", delay=0))
    gater = circuit.add(PulseGater("gate"))
    shadow = circuit.add(PulseGater("shadow"))  # complementary window
    merged = circuit.add(Merger("merge"))
    circuit.connect(source_fan, "q1", gater, "data")
    circuit.connect(source_fan, "q2", shadow, "data")
    circuit.connect(gater, "q", merged, "a")
    circuit.connect(shadow, "q", merged, "b")
    gated_probe = circuit.probe(gater, "q")
    merged_probe = circuit.probe(merged, "q")

    # --- step 3: stimulate and run -----------------------------------------------
    sim = Simulator(circuit)
    data_times = [ps(20 * k) for k in range(1, 11)]  # 10 pulses, 20 ps apart
    sim.schedule_train(source_fan, "a", data_times)
    sim.schedule_input(gater, "enable", ps(50))
    sim.schedule_input(gater, "disable", ps(130))
    sim.schedule_input(shadow, "enable", ps(130))
    stats = sim.run()

    print("step 3 - simulate:")
    print(f"  events processed: {stats.events_processed}, "
          f"pulses emitted: {stats.pulses_emitted}")
    print(f"  gated window passed {gated_probe.count()} of {len(data_times)} "
          f"pulses at {[to_ps(t) for t in gated_probe.times]} ps")
    print(f"  merged (gate + complementary shadow): {merged_probe.count()} pulses")

    # --- step 4: inject a physical fault -----------------------------------------
    sim.reset()
    jitter = circuit.add(JitterChannel("jitter", std_fs=ps(3), seed=1))
    circuit.connect(jitter, "q", source_fan, "a")
    sim.schedule_train(jitter, "a", data_times)
    sim.schedule_input(gater, "enable", ps(50))
    sim.schedule_input(gater, "disable", ps(130))
    sim.run()
    print("\nstep 4 - fault injection:")
    print(f"  with 3 ps jitter the window passed {gated_probe.count()} pulses "
          f"(max displacement {to_ps(jitter.max_displacement_fs):.1f} ps)")

    # --- step 5: inspect and export the netlist ----------------------------------
    description = netlist_description(circuit)
    print("\nstep 5 - export:")
    print(f"  census: {cell_census(circuit)}")
    print(f"  {description['cell_count']} cells, {description['wire_count']} wires, "
          f"{description['jj_count']} JJs")
    print(f"  JSON: {len(json.dumps(description))} bytes; "
          f"DOT: {len(to_dot(circuit).splitlines())} lines "
          "(render with graphviz: dot -Tpng)")


if __name__ == "__main__":
    main()
