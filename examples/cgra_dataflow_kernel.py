#!/usr/bin/env python3
"""Map a dataflow kernel onto the U-SFQ CGRA fabric (section 5.2).

Builds a small polynomial-evaluation kernel (Horner form of
``a*x^2 + b*x + c``) as a dataflow DAG, places it on a 2x2 fabric of
126-JJ PEs with the greedy mapper, executes it epoch-accurately, and
prints the latency/area report against the float reference — the CGRA
workflow around the paper's processing element.

Run:  python examples/cgra_dataflow_kernel.py
"""

from repro.cgra import Fabric, Kernel, execute, map_kernel
from repro.cgra.fabric import equivalent_binary_fabric_jj
from repro.encoding.epoch import EpochSpec


def build_horner() -> Kernel:
    """y = (a*x + b)*x + c, entirely from PE-native mul/add/mac ops."""
    k = Kernel("horner")
    k.input("x")
    k.const("a", 0.5)
    k.const("b", 0.25)
    k.const("c", 0.125)
    k.node("t1", "mac", ["x", "a", "b"])      # a*x + b
    k.node("y", "mac", ["x", "t1", "c"], output=True)  # t1*x + c
    return k


def main() -> None:
    kernel = build_horner()
    fabric = Fabric(rows=2, cols=2, epoch=EpochSpec(bits=10))
    print(fabric.describe())

    mapping = map_kernel(kernel, fabric)
    print(f"\nplacement ({mapping.pes_used} PEs):")
    for name, site in mapping.placement.items():
        print(f"  {name:<4} -> PE({site.row}, {site.col})")
    print(f"buffered interconnect hops: "
          f"{mapping.total_wire_hops(kernel, fabric)}")

    print("\nexecution over a sweep of x:")
    print("  x      U-SFQ y   float y")
    worst = 0.0
    for i in range(6):
        x = i / 5.0
        report = execute(kernel, fabric, mapping, {"x": x})
        got = report.outputs["y"]
        want = report.reference["y"]
        worst = max(worst, abs(got - want))
        print(f"  {x:.1f}    {got:.4f}    {want:.4f}")
    print(f"worst-case error: {worst:.4f} (10-bit epochs)")

    report = execute(kernel, fabric, mapping, {"x": 0.6})
    print(f"\n{report.render()}")
    binary = equivalent_binary_fabric_jj(report.pes_used, 10)
    print(f"the same two PEs in binary SFQ: ~{binary:,.0f} JJs "
          f"({binary / report.total_jj:.0f}x)")


if __name__ == "__main__":
    main()
