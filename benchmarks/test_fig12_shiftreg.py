"""Fig 12: shift-register area across the four designs."""

from _util import run_and_check
from repro.experiments import fig12_shiftreg


def test_fig12_shiftreg(benchmark):
    run_and_check(benchmark, fig12_shiftreg.run)
