"""Microbenchmarks of the library's hot paths.

Not tied to a specific paper figure; these track the cost of the pulse
simulator kernel, the structural building blocks, and the vectorised FIR —
the knobs that determine how large a U-SFQ design this reproduction can
simulate.
"""

import numpy as np

from repro.core.counting import CountingNetwork
from repro.core.dpu import DpuModel
from repro.core.fir import UnaryFirFilter
from repro.core.multiplier import UnipolarMultiplier
from repro.dsp.firdesign import design_lowpass
from repro.encoding.epoch import EpochSpec
from repro.pulsesim.schedule import uniform_stream_times


def test_pulse_level_multiplier_epoch(benchmark):
    """One full 8-bit epoch through the structural NDRO multiplier."""
    mult = UnipolarMultiplier(EpochSpec(bits=8))

    def run():
        return mult.run_counts(128, 200)

    assert benchmark(run) == 100


def test_counting_network_16to1(benchmark):
    """A 16:1 balancer tree digesting 6-bit streams."""
    network = CountingNetwork(16)
    times = [uniform_stream_times(n, 64, 12_000) for n in range(3, 64, 4)]

    def run():
        return network.run(times)

    assert benchmark(run) > 0


def test_dpu_functional_batch(benchmark):
    """Vectorised 64-lane DPU over a 1k-sample batch."""
    model = DpuModel(EpochSpec(bits=10), 64, bipolar=True)
    rng = np.random.default_rng(0)
    slots = rng.integers(0, 1024, size=(1_000, 64))
    counts = rng.integers(0, 1024, size=(1_000, 64))

    def run():
        return model.output_counts_batch(slots, counts)

    out = benchmark(run)
    assert out.shape == (1_000,)


def test_pulse_kernel_scale_12bit_epoch(benchmark):
    """~8k-event epochs: the kernel-throughput guard for larger designs."""
    mult = UnipolarMultiplier(EpochSpec(bits=12))

    def run():
        return mult.run_counts(4_096, 2_048)

    assert benchmark(run) == 2_048


def test_unary_fir_256taps_throughput(benchmark):
    """256-tap, 12-bit unary FIR over 2000 samples (the SDR-scale config)."""
    h = design_lowpass(256, 3_000.0, 20_000.0)
    fir = UnaryFirFilter(EpochSpec(bits=12), h, exact_counting=False)
    x = np.sin(np.linspace(0, 100, 2_000)) * 0.8

    def run():
        return fir.process(x)

    out = benchmark(run)
    assert out.shape == x.shape
