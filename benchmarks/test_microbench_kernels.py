"""Microbenchmarks of the library's hot paths.

Not tied to a specific paper figure; these track the cost of the pulse
simulator kernel, the structural building blocks, and the vectorised FIR —
the knobs that determine how large a U-SFQ design this reproduction can
simulate.
"""

import numpy as np

from repro.cells.interconnect import IdealMerger, Jtl
from repro.core.counting import CountingNetwork
from repro.core.dpu import DpuModel
from repro.core.fir import UnaryFirFilter
from repro.core.multiplier import UnipolarMultiplier
from repro.dsp.firdesign import design_lowpass
from repro.encoding.epoch import EpochSpec
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import uniform_stream_times


#: The stream-fabric scenario: slot-aligned JTL pipelines feeding a merger
#: reduction tree, every lane driven by a dense (~50% duty) uniform pulse
#: stream on the same slot grid.  This is the paper's stream-compute
#: regime — SIMD-like lanes sharing one epoch clock — and the workload the
#: sealed kernel is built for (heavy same-time contention).  The same
#: netlist+stimulus runs under both kernels so the regression gate can
#: compare them ratio-wise, independent of the host machine's speed.
_FABRIC_LANES = 32
_FABRIC_DEPTH = 4
_FABRIC_TRAINS = [
    uniform_stream_times(2_000, 4_096, 12_000)
    for _ in range(_FABRIC_LANES)
]


def _build_stream_fabric():
    """The fabric netlist: JTL chains into an IdealMerger reduction tree.

    Returns ``(circuit, heads, probe)``; shared with the batch-kernel
    benchmarks in ``test_batch_kernel.py`` so the scalar and vectorized
    kernels are measured on the same topology.
    """
    circuit = Circuit(f"fabric{_FABRIC_LANES}x{_FABRIC_DEPTH}")
    heads = []
    tails = []
    for lane in range(_FABRIC_LANES):
        stage = circuit.add(Jtl(f"l{lane}_0"))
        heads.append(stage)
        for depth in range(1, _FABRIC_DEPTH):
            nxt = circuit.add(Jtl(f"l{lane}_{depth}"))
            circuit.connect(stage, "q", nxt, "a", delay=500)
            stage = nxt
        tails.append((stage, "q"))
    level = 0
    while len(tails) > 1:
        merged = []
        for pair in range(0, len(tails), 2):
            merger = circuit.add(IdealMerger(f"m{level}_{pair // 2}"))
            circuit.connect(*tails[pair], merger, "a", delay=500)
            circuit.connect(*tails[pair + 1], merger, "b", delay=500)
            merged.append((merger, "q"))
        tails = merged
        level += 1
    probe = circuit.probe(*tails[0])
    return circuit, heads, probe


def _run_stream_fabric(kernel, direct=False):
    """Build the fabric fresh (compile cost counts too) and run one epoch.

    ``direct=True`` bypasses the public ``run()`` dispatcher and calls the
    kernel's ``_run`` hot loop straight — the yardstick for the tracing-off
    overhead gate.
    """
    circuit, heads, probe = _build_stream_fabric()
    sim = Simulator(circuit, kernel=kernel)
    for head, times in zip(heads, _FABRIC_TRAINS):
        sim.schedule_train(head, "a", times)
    stats = sim._run() if direct else sim.run()
    return stats.events_processed, len(probe.times)


def test_stream_fabric_reference_kernel(benchmark):
    """The dense stream fabric under the reference heap loop (the yardstick)."""
    events, merged = benchmark(_run_stream_fabric, "reference")
    assert merged == _FABRIC_LANES * len(_FABRIC_TRAINS[0])
    assert events > 200_000


def test_stream_fabric_sealed_kernel(benchmark):
    """Same fabric under the sealed kernel; the gate checks the speedup ratio."""
    events, merged = benchmark(_run_stream_fabric, "sealed")
    assert merged == _FABRIC_LANES * len(_FABRIC_TRAINS[0])
    assert events > 200_000
    # Events per run: check_regression.py's batch-throughput gate divides
    # this by the median to get aggregate events/s for the scalar kernel.
    benchmark.extra_info["events"] = events


def test_stream_fabric_sealed_hotloop(benchmark):
    """Same fabric, calling the sealed ``_run`` loop directly.

    Tracks the raw hot loop — ``test_stream_fabric_sealed_kernel`` minus
    the public ``run()``'s is-a-trace-session-installed dispatch — in the
    baseline history.  The hard ≤2% bound on that dispatch is asserted by
    ``check_regression.py --max-trace-overhead``, which re-measures the
    two paths interleaved in one process (sequential benchmark blocks sit
    in different host-load windows, too noisy for a 2% comparison).
    """
    events, merged = benchmark(_run_stream_fabric, "sealed", True)
    assert merged == _FABRIC_LANES * len(_FABRIC_TRAINS[0])
    assert events > 200_000


def test_pulse_level_multiplier_epoch(benchmark):
    """One full 8-bit epoch through the structural NDRO multiplier."""
    mult = UnipolarMultiplier(EpochSpec(bits=8))

    def run():
        return mult.run_counts(128, 200)

    assert benchmark(run) == 100


def test_counting_network_16to1(benchmark):
    """A 16:1 balancer tree digesting 6-bit streams."""
    network = CountingNetwork(16)
    times = [uniform_stream_times(n, 64, 12_000) for n in range(3, 64, 4)]

    def run():
        return network.run(times)

    assert benchmark(run) > 0


def test_dpu_functional_batch(benchmark):
    """Vectorised 64-lane DPU over a 1k-sample batch."""
    model = DpuModel(EpochSpec(bits=10), 64, bipolar=True)
    rng = np.random.default_rng(0)
    slots = rng.integers(0, 1024, size=(1_000, 64))
    counts = rng.integers(0, 1024, size=(1_000, 64))

    def run():
        return model.output_counts_batch(slots, counts)

    out = benchmark(run)
    assert out.shape == (1_000,)


def test_pulse_kernel_scale_12bit_epoch(benchmark):
    """~8k-event epochs: the kernel-throughput guard for larger designs."""
    mult = UnipolarMultiplier(EpochSpec(bits=12))

    def run():
        return mult.run_counts(4_096, 2_048)

    assert benchmark(run) == 2_048


def test_unary_fir_256taps_throughput(benchmark):
    """256-tap, 12-bit unary FIR over 2000 samples (the SDR-scale config)."""
    h = design_lowpass(256, 3_000.0, 20_000.0)
    fir = UnaryFirFilter(EpochSpec(bits=12), h, exact_counting=False)
    x = np.sin(np.linspace(0, 100, 2_000)) * 0.8

    def run():
        return fir.process(x)

    out = benchmark(run)
    assert out.shape == x.shape
