"""Fig 19: FIR accuracy under error injection (the heaviest experiment)."""

from _util import run_and_check
from repro.experiments import fig19_accuracy


def test_fig19_accuracy(benchmark):
    run_and_check(benchmark, lambda: fig19_accuracy.run(trials=3))
