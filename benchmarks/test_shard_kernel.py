"""Multi-fabric sharding benchmarks and the parallel-speedup floor.

The shard engine exists to put idle host cores behind one queue-saturated
circuit: the partitioner cuts the fabric into K shards joined by temporal
NoC links, and each shard's sealed kernel runs in its own worker process
under conservative window synchronization.  These benchmarks drive a
wide column fabric (8 deep JTL columns into a merger reduction tree)
monolithically and at K in {1, 2, 4, 8} with one worker process per
shard, so ``check_regression.py`` can derive the wall-clock speedup from
the run JSON (``--min-shard-speedup``, default 2.5x at K=4).

The gate is CPU-aware: every benchmark records ``os.cpu_count()`` in
``extra_info["cpus"]``, and the checker only enforces the floor for K
values the recording host could actually run in parallel — a 1-CPU
container still *runs* everything (correctness and sync overhead are
still tracked), it just cannot demonstrate speedup.

The NoC link here is deliberately high-latency / deep-FIFO
(``_LINK``): lookahead is the latency the partition *proves*, and a
250 ps link buys ~65 sync windows per epoch instead of ~650, which is
the knob docs/performance.md's cost model is about.
"""

import os

from repro.cells.interconnect import IdealMerger, Jtl
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.schedule import uniform_stream_times
from repro.shard import LinkSpec, ShardSimulator, build_noc_circuit, plan_partition

_COLUMNS = 8
_DEPTH = 64
_PULSES = 3_000
_N_MAX = 4_096
_SLOT_FS = 4_000
_SHARD_COUNTS = (1, 2, 4, 8)

#: High-lookahead link: 250 ps minimum latency per hop keeps the window
#: count low, and the 192-flit FIFO absorbs the ~46 flits a saturated
#: column keeps in flight across one cut.
_LINK = LinkSpec(serialization_fs=1_000, hop_latency_fs=249_000, fifo_depth=192)

_TRAINS = [
    uniform_stream_times(_PULSES, _N_MAX, _SLOT_FS, start=137 * column)
    for column in range(_COLUMNS)
]


def _build_wide_fabric():
    """8 deep JTL columns feeding an IdealMerger reduction tree."""
    circuit = Circuit(f"wide{_COLUMNS}x{_DEPTH}")
    heads = []
    tails = []
    for column in range(_COLUMNS):
        stage = circuit.add(Jtl(f"col{column}_0"))
        heads.append(stage)
        for depth in range(1, _DEPTH):
            nxt = circuit.add(Jtl(f"col{column}_{depth}"))
            circuit.connect(stage, "q", nxt, "a", delay=500)
            stage = nxt
        tails.append((stage, "q"))
    level = 0
    while len(tails) > 1:
        merged = []
        for pair in range(0, len(tails), 2):
            merger = circuit.add(IdealMerger(f"m{level}_{pair // 2}"))
            circuit.connect(*tails[pair], merger, "a", delay=500)
            circuit.connect(*tails[pair + 1], merger, "b", delay=500)
            merged.append((merger, "q"))
        tails = merged
        level += 1
    probe = circuit.probe(*tails[0])
    return circuit, heads, probe


def _plan(num_shards):
    circuit, heads, _probe = _build_wide_fabric()
    return plan_partition(
        circuit, num_shards, link=_LINK,
        entry_points=[(head, "a") for head in heads],
    )


def _run_sharded(num_shards):
    plan = _plan(num_shards)
    circuit, heads, _probe = _build_wide_fabric()
    with ShardSimulator(circuit, plan, jobs=num_shards) as sharded:
        for head, times in zip(heads, _TRAINS):
            sharded.schedule_train(head.name, "a", times)
        stats = sharded.run()
        return stats, sharded.windows


def _run_mono():
    """The yardstick: the K=4 NoC-augmented circuit, whole, sealed kernel.

    The NoC links stay in — the sharded lanes run the *identical*
    workload, so the only variable is where the event loop executes.
    """
    plan = _plan(4)
    circuit, heads, _probe = _build_wide_fabric()
    noc_circuit = build_noc_circuit(circuit, plan)
    sim = Simulator(noc_circuit, kernel="sealed")
    for head, times in zip(heads, _TRAINS):
        sim.schedule_train(noc_circuit[head.name], "a", times)
    return sim.run()


def test_wide_fabric_shard_mono(benchmark):
    """The K=4 NoC-augmented fabric run whole by the sealed kernel."""
    stats = benchmark.pedantic(_run_mono, rounds=1, iterations=1)
    assert stats.events_processed > 1_000_000
    benchmark.extra_info["events"] = stats.events_processed
    benchmark.extra_info["cpus"] = os.cpu_count() or 1


def _shard_benchmark(benchmark, num_shards):
    stats, windows = benchmark.pedantic(
        _run_sharded, args=(num_shards,), rounds=1, iterations=1
    )
    assert stats.events_processed > 1_000_000
    benchmark.extra_info["events"] = stats.events_processed
    benchmark.extra_info["cpus"] = os.cpu_count() or 1
    benchmark.extra_info["shards"] = num_shards
    benchmark.extra_info["windows"] = windows
    return stats


def test_wide_fabric_shard_k1(benchmark):
    """K=1 sanity lane: one shard, no cuts, one window."""
    _shard_benchmark(benchmark, 1)


def test_wide_fabric_shard_k2(benchmark):
    _shard_benchmark(benchmark, 2)


def test_wide_fabric_shard_k4(benchmark):
    """The headline lane: 4 worker processes, gated at >= 2.5x."""
    _shard_benchmark(benchmark, 4)


def test_wide_fabric_shard_k8(benchmark):
    _shard_benchmark(benchmark, 8)
