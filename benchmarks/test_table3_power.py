"""Table 3: DPU power breakdown (32 multipliers/adders)."""

from _util import run_and_check
from repro.experiments import table3


def test_table3_power(benchmark):
    run_and_check(benchmark, table3.run)
