"""Fig 7: structural balancer waveforms."""

from _util import run_and_check
from repro.experiments import fig07_balancer


def test_fig07_balancer(benchmark):
    run_and_check(benchmark, fig07_balancer.run)
