"""Fig 16: DPU area crossover between unary and binary."""

from _util import run_and_check
from repro.experiments import fig16_dpu


def test_fig16_dpu(benchmark):
    run_and_check(benchmark, fig16_dpu.run)
