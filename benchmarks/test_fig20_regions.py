"""Fig 20: (taps x bits) savings regions with application overlays."""

from _util import run_and_check
from repro.experiments import fig20_regions


def test_fig20_regions(benchmark):
    run_and_check(benchmark, fig20_regions.run)
