"""Table 2: the binary baseline dataset and its fits."""

from _util import run_and_check
from repro.experiments import table2


def test_table2_baselines(benchmark):
    run_and_check(benchmark, table2.run)
