"""Serving-layer benchmarks: the coalescing-throughput floor.

The serving claim mirrors the batch-kernel claim one layer up: at high
concurrency, a micro-batching server (``max_batch`` lanes per dispatch)
must sustain a multiple of the throughput of the *same server* with
coalescing disabled (``max_batch=1``), because N concurrent dot products
ride one ``BatchSimulator`` dispatch instead of N.

Each benchmark boots a real HTTP server in-process with **one** worker
process (both configs get the same single executor, so the ratio
measures coalescing, not parallelism; an inline tier would let the
simulation hold the GIL and starve request arrival, shrinking batches),
fires one closed-loop volley of distinct DPU requests at concurrency
``_CONCURRENCY``, and records requests/run in ``extra_info``.
``check_regression.py`` derives requests/s for the
``*_serve_coalesced`` / ``*_serve_solo`` pair and enforces
``--min-serve-speedup`` (CI floor 4x — deliberately below the ~10-18x a
quiet machine shows, see ``results/serve/``, so noisy runners do not
flake; the committed evidence carries the headline number).

The in-test assertion holds the same line: coalesced must beat solo by
``_IN_TEST_FLOOR``.  A third (ungated, tracked-by-baseline) benchmark
measures the warm-cache path: the full request set again, every request
a content-addressed hit.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import ServeConfig, start_server_thread
from loadgen import build_requests

_CONCURRENCY = 64
_REQUESTS = 64
_BITS = 5
_LENGTH = 8
_BIPOLAR = True
_IN_TEST_FLOOR = 3.0  # CI-safe; results/serve records the real ratio

_RESULTS = {}


def _payloads():
    return build_requests(
        _REQUESTS, bits=_BITS, length=_LENGTH, bipolar=_BIPOLAR,
        seed=20220711,
    )


def _volley(server, payloads):
    """Every payload once, closed-loop, _CONCURRENCY client threads."""
    with ThreadPoolExecutor(min(_CONCURRENCY, len(payloads))) as pool:
        statuses = list(
            pool.map(
                lambda payload: server.request(
                    "POST", "/v1/compute", payload, timeout=300.0
                )[0],
                payloads,
            )
        )
    assert statuses == [200] * len(payloads)


def _bench_config(max_batch):
    # The 20 ms window covers the arrival spread of 64 closed-loop client
    # threads (TCP connect + GIL churn smear them over tens of ms); the
    # solo server ignores it (max_batch=1 dispatches immediately).
    return ServeConfig(
        port=0,
        max_batch=max_batch,
        max_wait_us=20_000,
        workers=1,
        cache_entries=0,  # every request must execute
        max_pending=4 * _CONCURRENCY,
    )


def _run_server_benchmark(benchmark, max_batch):
    payloads = _payloads()
    with start_server_thread(_bench_config(max_batch)) as server:
        # Warm-up volley: compile the circuit outside the timed region
        # (the serving claim is about steady state, not cold boot).
        _volley(server, payloads[: max(2, _CONCURRENCY // 8)])
        benchmark(_volley, server, payloads)
        snapshot = server.service.metrics.to_dict()
    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["concurrency"] = _CONCURRENCY
    return snapshot


def test_dpu_bipolar_serve_coalesced(benchmark):
    """64 concurrent requests onto a max_batch=64 micro-batching server."""
    snapshot = _run_server_benchmark(benchmark, max_batch=_CONCURRENCY)
    # Coalescing really happened: fewer dispatches than requests.
    lanes = snapshot["histograms"]["serve_batch_lanes"]
    assert lanes["max"] > 1
    _RESULTS["coalesced"] = benchmark.stats.stats.median


def test_dpu_bipolar_serve_solo(benchmark):
    """The same volley onto the same server shape with max_batch=1."""
    snapshot = _run_server_benchmark(benchmark, max_batch=1)
    lanes = snapshot["histograms"]["serve_batch_lanes"]
    assert lanes["max"] == 1  # nothing coalesced
    _RESULTS["solo"] = benchmark.stats.stats.median


def test_dpu_bipolar_serve_warm_cache(benchmark):
    """The full request set as pure cache hits (tracked, not paired)."""
    payloads = _payloads()
    config = _bench_config(max_batch=_CONCURRENCY)
    config.cache_entries = 4096
    with start_server_thread(config) as server:
        _volley(server, payloads)  # populate the cache
        benchmark(_volley, server, payloads)
        hits = server.service.metrics.to_dict()["counters"][
            "serve_cache_hits_total"
        ]
    assert hits >= len(payloads)
    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["concurrency"] = _CONCURRENCY


def test_serve_coalescing_floor():
    """The headline ratio, asserted within this run (host speed cancels)."""
    if "coalesced" not in _RESULTS or "solo" not in _RESULTS:
        pytest.skip("benchmark medians unavailable (ran standalone?)")
    ratio = _RESULTS["solo"] / _RESULTS["coalesced"]
    assert ratio >= _IN_TEST_FLOOR, (
        f"coalescing server only {ratio:.1f}x the max_batch=1 server "
        f"(floor {_IN_TEST_FLOOR}x)"
    )
