"""Fig 3: U-SFQ encodings and the worked multiplication examples."""

from _util import run_and_check
from repro.experiments import fig03_encoding


def test_fig03_encoding(benchmark):
    run_and_check(benchmark, fig03_encoding.run)
