"""Integration benchmark: a CNN-flavoured kernel on the CGRA fabric.

Maps a 3-tap dot product with bias (the inner loop of a convolution) onto
a 3x3 fabric of U-SFQ PEs and sweeps inputs, checking quantised outputs
against the float reference and reporting the latency/area budget — the
Fig 13b story, end to end.
"""

from repro.cgra import Fabric, Kernel, execute, map_kernel
from repro.encoding.epoch import EpochSpec


def _dot3_kernel() -> Kernel:
    k = Kernel("dot3")
    for name in ("x0", "x1", "x2"):
        k.input(name)
    k.const("w0", 0.25)
    k.const("w1", 0.5)
    k.const("w2", 0.25)
    k.const("bias", 0.05)
    k.node("p0", "mac", ["x0", "w0", "bias"])   # w0*x0 + bias
    k.node("p1", "mac", ["x1", "w1", "p0"])     # + w1*x1
    k.node("out", "mac", ["x2", "w2", "p1"], output=True)
    return k


def test_cgra_dot_product_kernel(benchmark):
    kernel = _dot3_kernel()
    fabric = Fabric(3, 3, EpochSpec(bits=10))
    mapping = map_kernel(kernel, fabric)

    cases = [
        {"x0": 0.2, "x1": 0.4, "x2": 0.6},
        {"x0": 0.0, "x1": 1.0, "x2": 0.0},
        {"x0": 0.9, "x1": 0.9, "x2": 0.9},
    ]

    def run():
        return [execute(kernel, fabric, mapping, case) for case in cases]

    reports = benchmark(run)
    worst = max(r.max_abs_error for r in reports)
    print(
        f"\n{fabric.describe()}"
        f"\ndot3 kernel: {reports[0].latency_epochs} epochs, "
        f"{reports[0].total_jj:,} JJs, worst error {worst:.4f}"
    )
    assert worst < 0.01
    assert reports[0].pes_used == 3
    # A chained MAC pipeline: one epoch per stage.
    assert reports[0].latency_epochs == 3
