"""Table 1: the RSFQ gate library, behaviourally verified."""

from _util import run_and_check
from repro.experiments import table1


def test_table1_cells(benchmark):
    run_and_check(benchmark, table1.run)
