"""Batch-kernel throughput benchmarks and the fleet-scale speedup floor.

The batch kernel exists for Monte-Carlo fleets: thousands of independent
epochs of one circuit executed as lanes of a single NumPy
structure-of-arrays program.  These benchmarks drive the same stream
fabric as ``test_microbench_kernels.py`` with 1024 lanes of per-lane
varied stimulus, track aggregate throughput in the baseline history, and
assert the headline property in-test: at batch >= 1024 the batch kernel
must sustain at least 50x the aggregate events/s of the scalar sealed
kernel on this fabric.  ``check_regression.py`` re-derives the same floor
from the benchmark JSON (``extra_info["events"]`` / median), so the gate
also holds across the committed baseline.
"""

from time import perf_counter

import numpy as np

from repro.pulsesim import BatchSimulator, Simulator
from repro.pulsesim.schedule import uniform_stream_times_batch
from test_microbench_kernels import _FABRIC_LANES, _build_stream_fabric

_BATCH = 1024
_SPEEDUP_FLOOR = 50.0
_N_MAX = 4_096
_SLOT_FS = 12_000


def _lane_counts(head_index, batch=_BATCH):
    """Deterministic per-lane pulse counts in [64, 192): every lane is a
    different epoch, every head a different operand distribution."""
    lanes = np.arange(batch, dtype=np.int64)
    return 64 + (lanes * 7919 + head_index * 104_729) % 128


def _run_stream_fabric_batch(batch=_BATCH):
    """One batch run of the fabric: fresh build (compile cost counts),
    per-lane-varied uniform streams on every head."""
    circuit, heads, _probe = _build_stream_fabric()
    sim = BatchSimulator(circuit, batch=batch, max_events=1_000_000_000)
    for index, head in enumerate(heads):
        times, lanes = uniform_stream_times_batch(
            _lane_counts(index, batch), _N_MAX, _SLOT_FS
        )
        sim.schedule_flat(head, "a", times, lanes)
    return sim.run()


def _run_one_lane_sealed(lane=0):
    """The scalar yardstick: lane 0's exact workload under the sealed kernel."""
    circuit, heads, _probe = _build_stream_fabric()
    sim = Simulator(circuit, kernel="sealed")
    for index, head in enumerate(heads):
        times, lanes = uniform_stream_times_batch(_lane_counts(index), _N_MAX, _SLOT_FS)
        sim.schedule_train(head, "a", np.sort(times[lanes == lane]).tolist())
    return sim.run()


def test_stream_fabric_batch_kernel(benchmark):
    """1024-lane batch run of the stream fabric (analytic fast path)."""
    stats = benchmark(_run_stream_fabric_batch)
    assert stats.batch == _BATCH
    assert stats.mode == "analytic"
    assert stats.events_total > 10_000_000
    # Aggregate lane-events per run, for check_regression.py's
    # batch-throughput gate (events / median = aggregate events/s).
    benchmark.extra_info["events"] = stats.events_total


def test_batch_event_mode_stays_vectorized(benchmark):
    """The masked event loop at 1024 lanes (forced via until=...).

    Far slower than the analytic path — that is the point of tracking it:
    this is the general-case fallback every stateful circuit takes.  A
    shorter stimulus keeps the heap drain affordable in CI.
    """

    def run():
        circuit, heads, _probe = _build_stream_fabric()
        sim = BatchSimulator(circuit, batch=_BATCH, max_events=1_000_000_000)
        for index, head in enumerate(heads):
            counts = 1 + _lane_counts(index) % 8  # 1..8 pulses per lane
            times, lanes = uniform_stream_times_batch(counts, _N_MAX, _SLOT_FS)
            sim.schedule_flat(head, "a", times, lanes)
        return sim.run(until=_N_MAX * _SLOT_FS)

    stats = benchmark(run)
    assert stats.mode == "event"
    assert stats.events_total > 100_000


def test_batch_speedup_floor_at_1024_lanes():
    """The headline claim: >= 50x aggregate events/s over the sealed kernel.

    Both sides run the same fabric; the scalar side runs lane 0's exact
    workload, the batch side runs all 1024 lanes.  Best-of-3 on each side
    damps scheduler noise; the floor leaves a wide margin over the
    measured ratio (hundreds on a warm host).
    """
    scalar_s = float("inf")
    for _ in range(3):
        start = perf_counter()
        scalar_stats = _run_one_lane_sealed()
        scalar_s = min(scalar_s, perf_counter() - start)
    batch_s = float("inf")
    for _ in range(3):
        start = perf_counter()
        batch_stats = _run_stream_fabric_batch()
        batch_s = min(batch_s, perf_counter() - start)

    # Same per-lane workload on both sides, so lane-event totals line up.
    assert int(batch_stats.events[0]) == scalar_stats.events_processed

    scalar_rate = scalar_stats.events_processed / scalar_s
    batch_rate = batch_stats.events_total / batch_s
    speedup = batch_rate / scalar_rate
    print(
        f"\naggregate throughput: sealed {scalar_rate:,.0f} events/s, "
        f"batch({_BATCH}) {batch_rate:,.0f} events/s -> {speedup:.0f}x"
    )
    assert speedup >= _SPEEDUP_FLOOR, (
        f"batch kernel only {speedup:.1f}x the sealed kernel's aggregate "
        f"events/s at batch={_BATCH} (floor {_SPEEDUP_FLOOR}x)"
    )
    assert _FABRIC_LANES == len(_build_stream_fabric()[1])
