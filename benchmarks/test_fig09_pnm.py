"""Fig 9: pulse-number multiplier counts and rate uniformity."""

from _util import run_and_check
from repro.experiments import fig09_pnm


def test_fig09_pnm(benchmark):
    run_and_check(benchmark, fig09_pnm.run)
