"""Fig 5: merger collisions and the collision-free stagger."""

from _util import run_and_check
from repro.experiments import fig05_merger


def test_fig05_merger(benchmark):
    run_and_check(benchmark, fig05_merger.run)
