"""Integration benchmark: wave-pipelined structural DPU streaming.

Runs an 8-lane pulse-level DPU for several back-to-back epochs (operands
change every epoch; balancer toggle state carries over) and checks the
per-epoch output counts against the stateful cascade reference — the
DPU-scale counterpart of the structural-FIR integration bench.
"""

import random

from repro.core.dpu import DotProductUnit
from repro.core.multiplier import unipolar_product_count
from repro.encoding.epoch import EpochSpec


def _stateful_reference(epoch, frames_a, frames_b, lanes):
    levels = lanes.bit_length() - 1
    states = [[0] * (lanes >> (level + 1)) for level in range(levels)]
    outputs = []
    for a_slots, b_counts in zip(frames_a, frames_b):
        counts = [
            unipolar_product_count(b_counts[i], a_slots[i], epoch.n_max)
            for i in range(lanes)
        ]
        for level in range(levels):
            merged = []
            for node in range(len(counts) // 2):
                total = counts[2 * node] + counts[2 * node + 1]
                merged.append((total + (1 - states[level][node])) // 2)
                states[level][node] ^= total & 1
            counts = merged
        outputs.append(counts[0])
    return outputs


def test_structural_dpu_streaming(benchmark):
    lanes = 8
    epoch = EpochSpec(bits=4)
    dpu = DotProductUnit(epoch, lanes)
    rng = random.Random(7)
    frames_a = [[rng.randint(0, 16) for _ in range(lanes)] for _ in range(6)]
    frames_b = [[rng.randint(0, 16) for _ in range(lanes)] for _ in range(6)]

    def run():
        return dpu.run_epochs(frames_a, frames_b)

    got = benchmark(run)
    want = _stateful_reference(epoch, frames_a, frames_b, lanes)
    print(f"\n6 epochs through an 8-lane structural DPU "
          f"({dpu.jj_count:,} JJs): {got}")
    assert got == want
