"""Integration benchmark: the fully structural FIR at pulse level.

Streams samples through the complete netlist — coefficient bank readout,
memory-cell delay line, per-tap NDRO multipliers, balancer counting
network — and asserts pulse-exact agreement with the stateful reference
model.  This is the closest analogue of the paper's own released
"small DPU netlist" testbench, exercised epoch after epoch.
"""

import random

from repro.core.fir_structural import StructuralUnaryFir
from repro.encoding.epoch import EpochSpec


def test_structural_fir_streaming(benchmark):
    epoch = EpochSpec(bits=5)
    fir = StructuralUnaryFir(epoch, [9, 3, 14, 1, 7, 7, 2, 0])
    rng = random.Random(42)
    slots = [rng.randint(0, epoch.n_max) for _ in range(12)]

    def run():
        return fir.process_slots(slots)

    got = benchmark(run)
    want = fir.reference_counts(slots)
    print(f"\n12 epochs through an 8-tap 5-bit structural FIR "
          f"({fir.jj_count:,} JJs incl. memory): {got}")
    assert got == want
