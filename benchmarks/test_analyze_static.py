"""Static analysis vs. a simulated epoch: the ``usfq-analyze`` speed claim.

The analyzer's value proposition is that it proves epoch-overflow and
merger-collision safety *without* running the simulator.  This module
pins that down on the shipped DPU block (the paper's full datapath,
Fig. 16): one proof-mode ``analyze_circuit`` call is compared against
simulating one dense worst-case epoch of the *same netlist* — every
entry port driven in all 256 slots — under the reference kernel with a
trace session attached.

The traced reference simulation is the comparator because it is the
semantic ground truth the analyzer's bounds are checked against by the
repro.verify soundness oracle: observing per-port pulse counts and
arrival windows dynamically *requires* tracing.  The faster sealed /
untraced configurations are measured and reported too (see
``results/analyze/benchmark.json``) so the ratio is transparent across
every kernel configuration, but the asserted claim is against the
observing reference run.

``test_static_vs_simulated_speedup`` measures both sides interleaved in
one process (sequential benchmark blocks sit in different host-load
windows) and asserts the >= 100x floor; the pytest-benchmark entries
track the two absolute timings in the baseline history.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Tuple

from repro.analyze.api import Analysis
from repro.analyze.blocks import analyze_built_block, config_for_block
from repro.lint.blocks import BuiltBlock, build_shipped_block
from repro.pulsesim import Simulator
from repro.trace.session import TraceSession

#: The asserted floor for static-analysis speedup over the traced
#: reference epoch (the committed JSON reports the measured ratios).
SPEEDUP_FLOOR = 100.0

_RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "results", "analyze", "benchmark.json",
)


def _dense_epoch_stimulus(built: BuiltBlock) -> List[int]:
    """One pulse in every slot of the block's epoch (worst-case duty)."""
    epoch = built.config.epoch
    return [slot * epoch.slot_fs for slot in range(epoch.n_max)]


def _run_dense_epoch(built: BuiltBlock, kernel: str, traced: bool):
    """Simulate one dense epoch on the block's own netlist.

    Returns the run stats; detaches taps and resets circuit state so the
    same ``BuiltBlock`` can host repeated rounds.
    """
    circuit = built.circuit
    times = _dense_epoch_stimulus(built)
    session = TraceSession(circuit) if traced else None
    sim = Simulator(circuit, kernel=kernel, trace=session)
    for element, port in built.entry_points:
        sim.schedule_train(element, port, times)
    stats = sim.run()
    events, pulses = stats.events_processed, stats.pulses_emitted
    if session is not None:
        session.detach()
    circuit.reset()
    return events, pulses


def _check_proofs(analysis: Analysis) -> None:
    """The proof obligations the static side must discharge per round."""
    report = analysis.report
    assert report.ok, report.format_text(verbose=True)
    assert report.stats["epoch_slack_fs"] > 0
    assert report.stats["mergers_proved"] == report.stats["mergers_checked"]
    assert report.stats["queue_depth_bound"] is not None


def _best_of(fn: Callable[[], object], rounds: int, reps: int) -> float:
    """Best mean-per-call over ``rounds`` blocks of ``reps`` calls."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def test_static_analysis_dpu(benchmark):
    """Proof-mode analysis of the shipped DPU (epoch + collision proofs)."""
    built = build_shipped_block("dpu")
    analysis = benchmark(analyze_built_block, built)
    _check_proofs(analysis)
    assert analysis.fixpoint.iterations == len(built.circuit.elements)


def test_simulated_epoch_dpu_reference_traced(benchmark):
    """The dynamic comparator: dense traced epoch, reference kernel."""
    built = build_shipped_block("dpu")
    events, pulses = benchmark(_run_dense_epoch, built, "reference", True)
    assert events > 0 and pulses > 0


def test_static_vs_simulated_speedup(tmp_path):
    """Assert the >= 100x claim and emit ``results/analyze/benchmark.json``.

    Both sides run interleaved in this one process: the static side as
    best-of-7 blocks of 50 analyses, each dynamic configuration as
    best-of-3 single epochs.  Interleaving keeps host-load drift from
    polluting a cross-measurement ratio (same reasoning as the kernel
    regression gate's trace-overhead re-measurement).
    """
    static_block = build_shipped_block("dpu")
    config = config_for_block(static_block)

    # Warm the evaluation-plan cache (first call pays the flattening);
    # steady-state cost is the claim, matching lint/verify usage.
    analysis = analyze_built_block(static_block, config)
    _check_proofs(analysis)

    static_s = _best_of(
        lambda: analyze_built_block(static_block, config), rounds=7, reps=50)

    dynamic_configs: List[Tuple[str, str, bool]] = [
        ("reference_traced", "reference", True),
        ("reference_untraced", "reference", False),
        ("auto_traced", "auto", True),
        ("auto_untraced", "auto", False),
    ]
    dynamic: Dict[str, Dict[str, object]] = {}
    counts: Dict[str, Tuple[int, int]] = {}
    for label, kernel, traced in dynamic_configs:
        built = build_shipped_block("dpu")
        counts[label] = _run_dense_epoch(built, kernel, traced)  # warm-up
        elapsed = _best_of(
            lambda b=built, k=kernel, t=traced: _run_dense_epoch(b, k, t),
            rounds=3, reps=1)
        dynamic[label] = {
            "kernel": kernel,
            "traced": traced,
            "wall_s": elapsed,
            "events_processed": counts[label][0],
            "pulses_emitted": counts[label][1],
            "speedup_vs_static": elapsed / static_s,
        }

    headline = dynamic["reference_traced"]["wall_s"] / static_s
    entry = {
        "benchmark": "analyze-static-vs-simulated-epoch",
        "block": "dpu",
        "protocol": {
            "static": "proof-mode analyze_circuit on the shipped DPU "
                      "netlist (warm evaluation plan, fresh report), "
                      "best-of-7 x 50 calls",
            "dynamic": "one dense epoch (every entry port pulsed in all "
                       "256 slots) on the same netlist, best-of-3 runs",
            "comparator": "reference_traced (tracing is required to "
                          "observe the per-port counts/windows the "
                          "analyzer bounds statically)",
        },
        "epoch": {
            "bits": static_block.config.epoch.bits,
            "slot_fs": static_block.config.epoch.slot_fs,
            "duration_fs": static_block.config.epoch.duration_fs,
        },
        "static_analysis_wall_s": static_s,
        "dynamic": dynamic,
        "speedup_vs_reference_traced": headline,
        "speedup_floor": SPEEDUP_FLOOR,
    }

    os.makedirs(os.path.dirname(_RESULTS_PATH), exist_ok=True)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=False)
        fh.write("\n")

    assert headline >= SPEEDUP_FLOOR, (
        f"static analysis is only {headline:.0f}x faster than the traced "
        f"reference epoch ({static_s * 1e6:.1f} us vs "
        f"{dynamic['reference_traced']['wall_s'] * 1e3:.2f} ms); "
        f"floor is {SPEEDUP_FLOOR:.0f}x"
    )
