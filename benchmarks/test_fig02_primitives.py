"""Fig 2: Race-Logic min and CMOS-style pulse-stream multiplication."""

from _util import run_and_check
from repro.experiments import fig02_primitives


def test_fig02_primitives(benchmark):
    run_and_check(benchmark, fig02_primitives.run)
