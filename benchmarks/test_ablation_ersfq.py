"""Ablation: plain RSFQ vs ERSFQ biasing for the 32-lane DPU (section 5.4.5).

ERSFQ swaps the resistive bias network for JJ limiters: passive power
disappears, area grows ~1.4x.  For the DPU the passive term dominates by
orders of magnitude, so the trade is decisively worth it — the design
choice DESIGN.md carries from the paper's power discussion.
"""

from repro.models import area, power
from repro.units import to_mw, to_uw


def test_ablation_rsfq_vs_ersfq_dpu(benchmark):
    length = 32

    def run():
        rsfq_area = area.dpu_unary_jj(length)
        rsfq_power = power.dpu_active_w(length) + power.dpu_passive_w(length)
        ersfq_area = area.ersfq_jj(rsfq_area)
        ersfq_power = power.ersfq_power_w(power.dpu_active_w(length))
        return rsfq_area, rsfq_power, ersfq_area, ersfq_power

    rsfq_area, rsfq_power, ersfq_area, ersfq_power = benchmark(run)
    print(
        f"\nRSFQ : {rsfq_area:6,.0f} JJs, {to_mw(rsfq_power):7.3f} mW total"
        f"\nERSFQ: {ersfq_area:6,.0f} JJs, {to_uw(ersfq_power):7.3f} uW total"
    )
    assert ersfq_area == rsfq_area * 1.4
    # Passive power dominates plain RSFQ by ~3 orders of magnitude.
    assert rsfq_power / ersfq_power > 100
    # The trade: 40 % more junctions for ~99.8 % less power.
    assert ersfq_power < 0.01 * rsfq_power
