"""Fig 8: unary vs binary adder latency and area."""

from _util import run_and_check
from repro.experiments import fig08_adder


def test_fig08_adder(benchmark):
    run_and_check(benchmark, fig08_adder.run)
