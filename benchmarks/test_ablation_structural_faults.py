"""Ablation: physical fault injection on the *structural* datapath.

Fig 19's error study runs on the functional accuracy model; this ablation
reproduces its qualitative conclusions directly on netlists with
fault-injection channels spliced into the wires:

* jitter on a balancer input provokes t_BFF transition hazards but never
  loses pulses (the counting network degrades gracefully);
* dropping stream pulses shifts counts by exactly the pulses lost (each
  worth 1/2^B);
* the same drop rate on a Race-Logic lane corrupts entire operands — the
  paper's "all the information is concentrated in a single pulse".
"""

from repro.core.counting import CountingNetwork, counting_network_output_count
from repro.core.multiplier import SETUP_FS, build_unipolar_multiplier
from repro.encoding.epoch import EpochSpec
from repro.pulsesim import Circuit, DropChannel, Simulator
from repro.pulsesim.schedule import uniform_stream_times


def test_ablation_stream_vs_rl_pulse_loss(benchmark):
    epoch = EpochSpec(bits=5)
    n_max = epoch.n_max
    drop_rate = 0.25

    def run():
        # Stream-side loss: thin the stream feeding a multiplier.
        circuit = Circuit()
        mult = build_unipolar_multiplier(circuit, "mul")
        channel = circuit.add(DropChannel("drop", drop_rate, seed=9))
        a_element, a_port = mult.input("a")
        circuit.connect(channel, "q", a_element, a_port)
        probe = mult.probe_output("out")
        sim = Simulator(circuit)
        mult.drive(sim, "epoch", 0)
        sim.schedule_train(
            channel, "a",
            [t + SETUP_FS for t in uniform_stream_times(n_max, n_max, epoch.slot_fs)],
        )
        mult.drive(sim, "b", SETUP_FS + epoch.slot_time(n_max // 2))
        sim.run()
        stream_loss_count = probe.count()

        # RL-side loss: the same drop rate on the Race-Logic lane either
        # leaves the operand intact or replaces it with full scale.
        rl_outcomes = []
        for seed in range(8):
            circuit = Circuit()
            mult = build_unipolar_multiplier(circuit, "mul")
            channel = circuit.add(DropChannel("drop", drop_rate, seed=seed))
            b_element, b_port = mult.input("b")
            circuit.connect(channel, "q", b_element, b_port)
            probe = mult.probe_output("out")
            sim = Simulator(circuit)
            mult.drive(sim, "epoch", 0)
            mult.drive(
                sim, "a",
                [t + SETUP_FS for t in uniform_stream_times(n_max, n_max, epoch.slot_fs)],
            )
            sim.schedule_input(channel, "a", SETUP_FS + epoch.slot_time(n_max // 2))
            sim.run()
            rl_outcomes.append(probe.count())
        return stream_loss_count, rl_outcomes

    stream_loss_count, rl_outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = n_max // 2  # full-rate stream gated at half the epoch
    stream_error = abs(stream_loss_count - expected) / n_max
    print(
        f"\n25 % stream loss: count {stream_loss_count} vs {expected} "
        f"(value error {stream_error:.2f})"
        f"\n25 % RL-lane loss outcomes over 8 trials: {rl_outcomes} "
        f"(correct {expected} or full-scale {n_max})"
    )
    # Stream loss degrades proportionally; a lost RL pulse is catastrophic.
    assert stream_error < drop_rate + 0.1
    assert set(rl_outcomes) <= {expected, n_max}
    assert n_max in rl_outcomes


def test_ablation_counting_network_keeps_pulses_under_jitter(benchmark):
    from repro.pulsesim import JitterChannel

    epoch = EpochSpec(bits=5)
    counts = [12, 20, 7, 31]

    def run():
        circuit = Circuit()
        from repro.core.counting import build_counting_network

        network = build_counting_network(circuit, "cn", 4)
        probe = network.probe_output("y")
        alt = network.probe_output("y_alt")
        channels = []
        sim = Simulator(circuit)
        for lane, n in enumerate(counts):
            channel = circuit.add(JitterChannel(f"j{lane}", std_fs=4_000, seed=lane))
            element, port = network.input(f"a{lane}")
            circuit.connect(channel, "q", element, port)
            channels.append(channel)
            sim.schedule_train(
                channel, "a", uniform_stream_times(n, epoch.n_max, epoch.slot_fs)
            )
        sim.run()
        hazards = sum(
            e.hazard_events for e in network.elements if hasattr(e, "hazard_events")
        )
        return probe.count(), alt.count(), hazards

    y_count, alt_count, hazards = benchmark.pedantic(run, rounds=1, iterations=1)
    ideal = counting_network_output_count(counts)
    print(
        f"\njittered 4:1 network: Y1 {y_count} vs ideal {ideal}, "
        f"Y2 {alt_count}, hazards {hazards}"
    )
    # Hazards misroute pulses between the Y branches but never lose them:
    # the root's two outputs carry whatever the first level forwarded,
    # which is half the total give or take the level-1 misroutes.
    assert hazards > 0  # the jitter really provoked transition hazards
    assert abs((y_count + alt_count) - sum(counts) / 2) <= hazards
    assert abs(y_count - ideal) <= max(2, hazards)
