"""Fig 11: integrator-buffer waveforms."""

from _util import run_and_check
from repro.experiments import fig11_buffer


def test_fig11_buffer(benchmark):
    run_and_check(benchmark, fig11_buffer.run)
