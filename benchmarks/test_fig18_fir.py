"""Fig 18: FIR latency/throughput/area/efficiency panels."""

from _util import run_and_check
from repro.experiments import fig18_fir


def test_fig18_fir(benchmark):
    run_and_check(benchmark, fig18_fir.run)
