"""Fig 14: PE latency and iso-throughput area."""

from _util import run_and_check
from repro.experiments import fig14_pe


def test_fig14_pe(benchmark):
    run_and_check(benchmark, fig14_pe.run)
