"""The experiment runner itself: cold compute vs warm cache-hit cost."""

from repro.runner import ResultCache, run_suite

# Cheap, representative slice of the registry (two sweep-capable figures,
# one simulator-backed experiment, one table).
SUITE = ["table2", "fig02", "fig14", "fig18"]


def test_runner_cold_suite(benchmark):
    report = benchmark.pedantic(
        lambda: run_suite(SUITE), rounds=1, iterations=1
    )
    assert report.failures == 0
    assert list(report.outcomes) == ["table2", "fig02", "fig14", "fig18"]


def test_runner_warm_cache_suite(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_suite(SUITE, cache=cache)
    assert cold.cache_misses == len(SUITE)

    report = benchmark.pedantic(
        lambda: run_suite(SUITE, cache=cache), rounds=3, iterations=1
    )
    assert report.failures == 0
    assert report.cache_hits == len(SUITE)
    # The whole point of the cache: a warm run must be far cheaper than
    # the cold one it replays.
    assert report.wall_time_s < cold.wall_time_s
