#!/usr/bin/env python3
"""Closed-loop load generator for the usfq-serve HTTP service.

Fires ``--requests`` distinct DPU dot-product requests at ``--concurrency``
closed-loop client threads and reports throughput plus p50/p95/p99
latency as JSON.  Two ways to point it at a server:

* ``--url http://host:port`` — attack a server you booted yourself;
* ``--spawn`` — boot ``python -m repro.serve`` as a subprocess on an
  ephemeral port (flags after ``--`` pass through, e.g.
  ``--spawn -- --max-batch 1``), parse the listening line, attack it,
  SIGTERM it, and check it drained cleanly.

The CI smoke job runs exactly this against both a coalescing and a
``--max-batch 1`` server; the committed ``results/serve`` evidence is
the same tool on a quiet machine.  A second pass over the *same*
request set (``--passes 2``) measures the warm-cache path — every
pass-2 request is a content-addressed cache hit.

Example::

    PYTHONPATH=src python benchmarks/loadgen.py --spawn \\
        --concurrency 64 --requests 256 --bits 5 --length 8 --bipolar \\
        -- --max-batch 64 --max-wait-us 2000
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

_LISTEN_RE = re.compile(r"listening on http://([^:]+):(\d+)")


def build_requests(
    count: int, bits: int, length: int, bipolar: bool, seed: int
) -> List[Dict[str, Any]]:
    """``count`` distinct dot-product payloads over one DPU config."""
    rng = random.Random(seed)
    n_max = 1 << bits
    config = {
        "bits": bits,
        "slot_fs": 40_000,
        "length": length,
        "bipolar": bipolar,
    }
    return [
        {
            "op": "dpu.dot",
            "config": dict(config),
            "a_slots": [rng.randrange(n_max + 1) for _ in range(length)],
            "b_counts": [rng.randrange(n_max + 1) for _ in range(length)],
        }
        for _ in range(count)
    ]


def _percentile(ordered: List[float], fraction: float) -> float:
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_pass(
    host: str,
    port: int,
    payloads: List[Dict[str, Any]],
    concurrency: int,
    timeout: float,
) -> Dict[str, Any]:
    """One closed-loop pass: every payload once, ``concurrency`` clients."""
    latencies: List[float] = []
    cache_hits = 0
    errors: List[str] = []
    lock = threading.Lock()
    cursor = iter(range(len(payloads)))

    def client() -> None:
        nonlocal cache_hits
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                body = json.dumps(payloads[index]).encode()
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST",
                        "/v1/compute",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    data = response.read()
                    elapsed_ms = (time.perf_counter() - started) * 1e3
                except OSError as exc:
                    with lock:
                        errors.append(f"request {index}: {exc!r}")
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    continue
                with lock:
                    if response.status != 200:
                        errors.append(
                            f"request {index}: HTTP {response.status} "
                            f"{data[:120]!r}"
                        )
                    else:
                        latencies.append(elapsed_ms)
                        if response.getheader("X-Cache") == "hit":
                            cache_hits += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, daemon=True)
        for _ in range(min(concurrency, len(payloads)))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    ordered = sorted(latencies)
    return {
        "requests_ok": len(latencies),
        "errors": errors,
        "cache_hits": cache_hits,
        "wall_s": round(wall_s, 6),
        "throughput_rps": (
            round(len(latencies) / wall_s, 2) if wall_s > 0 else None
        ),
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50), 4) if ordered else None,
            "p95": round(_percentile(ordered, 0.95), 4) if ordered else None,
            "p99": round(_percentile(ordered, 0.99), 4) if ordered else None,
            "mean": (
                round(sum(ordered) / len(ordered), 4) if ordered else None
            ),
        },
    }


def spawn_server(extra_args: List[str], boot_timeout: float) -> Tuple[
    subprocess.Popen, str, int
]:
    """Boot ``python -m repro.serve --port 0``; returns (proc, host, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + boot_timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTEN_RE.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
    process.kill()
    stderr = process.stderr.read() if process.stderr else ""
    raise RuntimeError(
        f"server did not print a listening line (last: {line!r}; "
        f"stderr: {stderr[:500]!r})"
    )


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    server_args: List[str] = []
    if "--" in argv:
        split = argv.index("--")
        argv, server_args = argv[:split], argv[split + 1 :]
    parser = argparse.ArgumentParser(
        description="Load-test usfq-serve; JSON report on stdout."
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="http://host:port of a running server")
    target.add_argument(
        "--spawn",
        action="store_true",
        help="boot python -m repro.serve on an ephemeral port "
        "(server flags go after --)",
    )
    parser.add_argument("--concurrency", type=int, default=64)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--passes", type=int, default=1,
                        help="repeat the request set (pass 2+ hits the cache)")
    parser.add_argument("--bits", type=int, default=5)
    parser.add_argument("--length", type=int, default=8)
    parser.add_argument("--bipolar", action="store_true")
    parser.add_argument("--seed", type=int, default=20220711)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--boot-timeout", type=float, default=60.0)
    parser.add_argument("--label", default=None,
                        help="free-form tag copied into the report")
    args = parser.parse_args(argv)

    payloads = build_requests(
        args.requests, args.bits, args.length, args.bipolar, args.seed
    )
    process = None
    if args.spawn:
        process, host, port = spawn_server(server_args, args.boot_timeout)
    else:
        match = re.match(r"https?://([^:/]+):(\d+)", args.url)
        if not match:
            parser.error(f"cannot parse --url {args.url!r}")
        host, port = match.group(1), int(match.group(2))

    report: Dict[str, Any] = {
        "label": args.label,
        "workload": {
            "op": "dpu.dot",
            "bits": args.bits,
            "length": args.length,
            "bipolar": args.bipolar,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "seed": args.seed,
        },
        "server_args": server_args if args.spawn else None,
        "passes": [],
    }
    exit_code = 0
    try:
        for index in range(args.passes):
            result = run_pass(
                host, port, payloads, args.concurrency, args.timeout
            )
            result["pass"] = index + 1
            report["passes"].append(result)
            if result["errors"] or result["requests_ok"] != args.requests:
                exit_code = 1
    finally:
        if process is not None:
            process.send_signal(signal.SIGTERM)
            try:
                drained = process.wait(timeout=30) == 0
            except subprocess.TimeoutExpired:
                process.kill()
                drained = False
            report["server_drained_cleanly"] = drained
            if not drained:
                exit_code = 1
    print(json.dumps(report, indent=2, sort_keys=True))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
