"""Cross-validation matrix: every structural block vs its functional model."""

from _util import run_and_check
from repro.experiments import validation


def test_validation_matrix(benchmark):
    run_and_check(benchmark, lambda: validation.run(trials=16))
