"""Shared helpers for the benchmark suite.

Each ``test_<table|figure>`` benchmark regenerates one table/figure of the
paper via its experiment module, asserts every paper-vs-measured claim
still holds, and prints the rendered report (visible with ``pytest -s`` and
captured in ``bench_output.txt``).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, format_result


def run_and_check(benchmark, runner, rounds: int = 1) -> ExperimentResult:
    """Benchmark one experiment runner and verify its claims."""
    result = benchmark.pedantic(runner, rounds=rounds, iterations=1)
    print()
    print(format_result(result))
    failed = [claim.description for claim in result.claims if not claim.holds]
    assert not failed, f"claims failed: {failed}"
    return result
