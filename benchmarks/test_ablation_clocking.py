"""Ablation: the clocking burden of binary SFQ vs clockless U-SFQ.

The paper's opening argument: binary RSFQ datapaths are deeply pipelined
with "almost every cell synchronized with a global clock", paying both
junctions (the clock splitter tree) and clock pulses (active power) that
the wave-pipelined unary datapath avoids.  This ablation measures it on
our gate-level structures: an 8-bit ripple-carry adder and a shift-and-add
multiplier versus the 56-JJ balancer and the 46-JJ unary multiplier.
"""

from repro.core.balancer import BALANCER_JJ
from repro.core.binary_adder import RippleCarryAdder
from repro.core.binary_multiplier import ShiftAddMultiplier
from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ


def test_ablation_clock_tree_burden(benchmark):
    def run():
        adder = RippleCarryAdder(8)
        # Exercise the netlist so the numbers describe a working circuit.
        assert adder.add(200, 55, 1) == 256
        mult = ShiftAddMultiplier(8)
        assert mult.multiply(123, 45) == 5_535
        return adder, mult

    adder, mult = benchmark.pedantic(run, rounds=1, iterations=1)

    datapath = adder.jj_count
    clock_tree = adder.clock_tree_jj
    print(
        f"\n8-bit binary adder: {datapath} datapath JJs + {clock_tree} "
        f"clock-tree JJs across {adder.clocked_cell_count} clocked cells"
        f"\n8-bit binary multiplier (sequential): {mult.jj_count:,} JJs"
        f"\nU-SFQ: balancer {BALANCER_JJ} JJs, multiplier "
        f"{MULTIPLIER_BIPOLAR_JJ} JJs — zero clocked cells"
    )
    # Every binary logic cell is clocked; the clock tree alone outweighs
    # the entire balancer.
    assert adder.clocked_cell_count == 5 * 8
    assert clock_tree > BALANCER_JJ
    # Gate-level binary blocks vs their unary counterparts.
    assert datapath + clock_tree > 8 * BALANCER_JJ
    assert mult.jj_count > 30 * MULTIPLIER_BIPOLAR_JJ
