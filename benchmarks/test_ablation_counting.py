"""Ablation: design choices the paper (and DESIGN.md) call out.

1. Balancer counting network vs merger tree as the unary adder — the
   merger is 11x smaller but loses pulses when streams collide, while the
   balancer is loss-free (section 4.2's motivation).
2. Exact counting-network arithmetic vs the paper's full-precision-sum
   accuracy model — the physical cascade costs resolution at low bit
   counts (the divide-by-L quantisation DESIGN.md documents).
3. Uniform-rate vs burst (typical-PNM) operand streams — non-uniform
   spacing hurts multiplication accuracy (Fig 9's motivation).
"""

import numpy as np

from repro.core.adder import MergerAdder, merger_tree_jj
from repro.core.counting import CountingNetwork, counting_network_jj
from repro.core.fir import UnaryFirFilter
from repro.core.multiplier import UnipolarMultiplier, unipolar_product_count
from repro.dsp.firdesign import design_lowpass
from repro.dsp.golden import make_golden_reference
from repro.dsp.snr import snr_db
from repro.encoding.epoch import EpochSpec
from repro.pulsesim.schedule import burst_stream_times, uniform_stream_times


def test_ablation_balancer_vs_merger_adder(benchmark):
    """Same colliding workload: the balancer keeps every pulse."""
    counts = [9, 9, 9, 9]  # all lanes pulse in the same slots
    times = [uniform_stream_times(n, 16, 12_000) for n in counts]

    def run():
        network = CountingNetwork(4)
        merger = MergerAdder(4)
        return network.run(times), merger.run(times)

    balanced, merged = benchmark(run)
    assert balanced == 9  # exact: ceil(36 / 4)
    assert merged < sum(counts)  # collisions ate pulses
    # The price of correctness: 56 vs 5 JJs per 2:1 stage.
    assert counting_network_jj(4) > merger_tree_jj(4)
    print(
        f"\nbalancer: {balanced} (exact) @ {counting_network_jj(4)} JJs vs "
        f"merger: {merged}/{sum(counts)} pulses @ {merger_tree_jj(4)} JJs"
    )


def test_ablation_exact_vs_paper_arithmetic(benchmark):
    """Physical ceil-cascade vs the paper's Octave accuracy model."""
    golden = make_golden_reference(n_samples=1_500)

    def run():
        out = {}
        for bits in (6, 8, 16):
            epoch = EpochSpec(bits)
            exact = UnaryFirFilter(epoch, golden.h, exact_counting=True)
            paper = UnaryFirFilter(epoch, golden.h, exact_counting=False)
            out[bits] = (
                snr_db(golden.target, exact.process(golden.x), skip=golden.skip),
                snr_db(golden.target, paper.process(golden.x), skip=golden.skip),
            )
        return out

    snrs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nbits  exact-counting SNR  paper-model SNR")
    for bits, (exact_snr, paper_snr) in snrs.items():
        print(f"{bits:>4}  {exact_snr:>18.1f}  {paper_snr:>15.1f}")
    # At 16 bits the divide-by-L cost vanishes; at low bits it dominates.
    assert abs(snrs[16][0] - snrs[16][1]) < 1.0
    assert snrs[6][0] < snrs[6][1]


def test_ablation_uniform_vs_burst_streams(benchmark):
    """Burst (typical-PNM) streams skew the RL filtering product."""
    epoch = EpochSpec(bits=6)
    mult = UnipolarMultiplier(epoch)
    n_a, n_max = 32, 64

    def run():
        uniform_err = burst_err = 0.0
        for slot_b in range(0, n_max + 1, 4):
            exact = n_a * slot_b / n_max
            uniform_err += abs(unipolar_product_count(n_a, slot_b, n_max) - exact)
            burst_pass = sum(
                1
                for t in burst_stream_times(n_a, n_max, epoch.slot_fs)
                if t < slot_b * epoch.slot_fs
            )
            burst_err += abs(burst_pass - exact)
        return uniform_err, burst_err

    uniform_err, burst_err = benchmark(run)
    print(f"\nmean |error| pulses: uniform {uniform_err / 17:.2f} vs burst {burst_err / 17:.2f}")
    assert uniform_err < burst_err
    assert mult.run_counts(32, 32) == unipolar_product_count(32, 32, 64)
