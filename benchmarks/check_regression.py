#!/usr/bin/env python3
"""Gate a pytest-benchmark JSON run against the committed baseline.

Two checks, the most machine-independent one first:

1. **Kernel speedup ratio** (within the new run, so host speed cancels
   out): for every pair ``<name>_reference_kernel`` /
   ``<name>_sealed_kernel``, the sealed median must be at least
   ``--min-speedup`` times faster than the reference median.  This is the
   property the compiled kernel exists for; losing it is a regression no
   matter how fast the host is.

2. **Relative regression vs baseline**: medians are normalised by the
   run-wide median of new/baseline ratios, which absorbs the host being
   uniformly slower or faster than the machine that produced
   ``BENCH_baseline.json``.  Any single benchmark whose *normalised*
   median regresses more than ``--threshold`` (default 25%) fails — that
   shape of change means one code path got slower, not that CI got a cold
   runner.

A benchmark present in the baseline but missing from the run fails the
gate (a silently dropped benchmark must not look like a pass); one
present only in the run is reported but allowed, so a PR can add
benchmarks and re-baseline in the same change.

Re-baseline (run from the repository root)::

    PYTHONPATH=src python -m pytest benchmarks/test_microbench_kernels.py \
        --benchmark-json=benchmarks/BENCH_baseline.json -q

Gate a fresh run::

    PYTHONPATH=src python -m pytest benchmarks/test_microbench_kernels.py \
        --benchmark-json=bench.json -q
    python benchmarks/check_regression.py bench.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional

_REF_SUFFIX = "_reference_kernel"
_SEALED_SUFFIX = "_sealed_kernel"


def load_medians(path: Path) -> Dict[str, float]:
    """``benchmark name -> median seconds`` from a pytest-benchmark JSON."""
    with open(path) as handle:
        document = json.load(handle)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in document["benchmarks"]
    }


def check_speedups(
    new: Dict[str, float], min_speedup: float, failures: List[str]
) -> None:
    pairs = [
        (name, name[: -len(_REF_SUFFIX)] + _SEALED_SUFFIX)
        for name in sorted(new)
        if name.endswith(_REF_SUFFIX)
    ]
    for reference, sealed in pairs:
        if sealed not in new:
            failures.append(f"{reference} has no {sealed} counterpart")
            continue
        speedup = new[reference] / new[sealed]
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"  speedup {reference[: -len(_REF_SUFFIX)]}: "
            f"sealed is {speedup:.2f}x faster than reference "
            f"(floor {min_speedup:.2f}x) [{verdict}]"
        )
        if speedup < min_speedup:
            failures.append(
                f"sealed kernel only {speedup:.2f}x faster than reference "
                f"on {reference[: -len(_REF_SUFFIX)]} (need {min_speedup:.2f}x)"
            )


def check_baseline(
    new: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    failures: List[str],
) -> None:
    missing = sorted(set(baseline) - set(new))
    for name in missing:
        failures.append(f"benchmark {name} is in the baseline but was not run")
    added = sorted(set(new) - set(baseline))
    for name in added:
        print(f"  new benchmark {name}: not in baseline, skipped "
              "(re-baseline to start tracking it)")
    common = sorted(set(new) & set(baseline))
    if not common:
        failures.append("no benchmarks in common with the baseline")
        return
    ratios = {name: new[name] / baseline[name] for name in common}
    scale = statistics.median(ratios.values())
    print(f"  host speed vs baseline machine: {scale:.2f}x "
          "(medians normalised by this before comparing)")
    for name in common:
        relative = ratios[name] / scale - 1.0
        verdict = "ok" if relative <= threshold else "FAIL"
        print(
            f"  {name}: {new[name] * 1e3:.2f} ms vs baseline "
            f"{baseline[name] * 1e3:.2f} ms "
            f"({relative:+.1%} after normalisation) [{verdict}]"
        )
        if relative > threshold:
            failures.append(
                f"{name} regressed {relative:+.1%} vs baseline "
                f"(threshold {threshold:.0%})"
            )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a kernel benchmark regresses vs the baseline."
    )
    parser.add_argument("run", help="pytest-benchmark JSON of the new run")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent / "BENCH_baseline.json"),
        help="committed baseline JSON (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed normalised regression per benchmark (default: 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="required sealed-vs-reference speedup within the run "
        "(default: 2.0 — generous so noisy CI hosts do not flake; the "
        "committed results/ measurements track the real figure)",
    )
    args = parser.parse_args(argv)

    new = load_medians(Path(args.run))
    baseline = load_medians(Path(args.baseline))
    failures: List[str] = []
    print("kernel speedup gate:")
    check_speedups(new, args.min_speedup, failures)
    print("baseline regression gate:")
    check_baseline(new, baseline, args.threshold, failures)

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark regression(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
