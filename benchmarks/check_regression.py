#!/usr/bin/env python3
"""Gate a pytest-benchmark JSON run against the committed baseline.

Five always-on checks, the most machine-independent ones first, plus an
opt-in sixth:

1. **Kernel speedup ratio** (within the new run, so host speed cancels
   out): for every pair ``<name>_reference_kernel`` /
   ``<name>_sealed_kernel``, the sealed median must be at least
   ``--min-speedup`` times faster than the reference median.  This is the
   property the compiled kernel exists for; losing it is a regression no
   matter how fast the host is.

2. **Batch throughput floor** (also within the new run): for every pair
   ``<name>_batch_kernel`` / ``<name>_sealed_kernel`` that recorded
   per-run event counts in ``extra_info``, the batch kernel's aggregate
   events/s must be at least ``--min-batch-speedup`` (default 50x) times
   the sealed kernel's — the fleet-scale property the batch kernel
   exists for.  Skipped when the run has no ``*_batch_kernel``
   benchmarks.

3. **Shard speedup floor** (``--min-shard-speedup``, default 2.5x, also
   within the new run): for every pair ``<name>_shard_k<K>`` /
   ``<name>_shard_mono``, the K-worker partitioned run must beat the
   monolithic sealed run on wall clock.  CPU-aware: lanes whose
   recording host had fewer than K CPUs are reported but skipped (a
   1-CPU container cannot demonstrate parallel speedup), so the floor
   only bites where it is physically meaningful.

4. **Serve coalescing floor** (``--min-serve-speedup``, default 4x,
   also within the new run): for every pair ``<name>_serve_coalesced``
   / ``<name>_serve_solo`` that recorded per-run request counts in
   ``extra_info``, the micro-batching server's requests/s must be at
   least the floor times the ``max_batch=1`` server's — the property
   the serving layer exists for (N concurrent requests ride one batch
   dispatch).  Skipped when the run has no ``*_serve_coalesced``
   benchmarks.

5. **Relative regression vs baseline**: medians are normalised by the
   run-wide median of new/baseline ratios, which absorbs the host being
   uniformly slower or faster than the machine that produced
   ``BENCH_baseline.json``.  Any single benchmark whose *normalised*
   median regresses more than ``--threshold`` (default 25%) fails — that
   shape of change means one code path got slower, not that CI got a cold
   runner.

6. **Tracing-off overhead** (``--max-trace-overhead``, measured by this
   script itself): the public ``Simulator.run()`` — whose only addition
   over the kernel loop is the is-a-trace-session-installed dispatch —
   against the sealed ``_run`` loop called directly, interleaved in one
   process so host-load drift cancels (see
   :func:`measure_trace_off_overhead`).  CI passes ``0.02``: tracing
   switched off must stay under 2% overhead.  Requires
   ``PYTHONPATH=src``.

A benchmark present in the baseline but missing from the run fails the
gate (a silently dropped benchmark must not look like a pass); one
present only in the run is reported but allowed, so a PR can add
benchmarks and re-baseline in the same change.

Re-baseline (run from the repository root)::

    PYTHONPATH=src python -m pytest benchmarks/test_microbench_kernels.py \
        benchmarks/test_batch_kernel.py benchmarks/test_shard_kernel.py \
        benchmarks/test_serve_latency.py \
        --benchmark-json=benchmarks/BENCH_baseline.json -q

Gate a fresh run::

    PYTHONPATH=src python -m pytest benchmarks/test_microbench_kernels.py \
        benchmarks/test_batch_kernel.py benchmarks/test_shard_kernel.py \
        benchmarks/test_serve_latency.py \
        --benchmark-json=bench.json -q
    python benchmarks/check_regression.py bench.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_REF_SUFFIX = "_reference_kernel"
_SEALED_SUFFIX = "_sealed_kernel"
_BATCH_SUFFIX = "_batch_kernel"
_SHARD_MONO_SUFFIX = "_shard_mono"
_SHARD_K_MARKER = "_shard_k"
_SERVE_COALESCED_SUFFIX = "_serve_coalesced"
_SERVE_SOLO_SUFFIX = "_serve_solo"


def load_medians(path: Path) -> Dict[str, float]:
    """``benchmark name -> median seconds`` from a pytest-benchmark JSON."""
    with open(path) as handle:
        document = json.load(handle)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in document["benchmarks"]
    }


def load_events(path: Path) -> Dict[str, int]:
    """``benchmark name -> events per run`` (from ``extra_info``), where
    the benchmark recorded one."""
    with open(path) as handle:
        document = json.load(handle)
    return {
        bench["name"]: bench["extra_info"]["events"]
        for bench in document["benchmarks"]
        if "events" in bench.get("extra_info", {})
    }


def load_extra(path: Path) -> Dict[str, dict]:
    """``benchmark name -> full extra_info dict`` for every benchmark."""
    with open(path) as handle:
        document = json.load(handle)
    return {
        bench["name"]: bench.get("extra_info", {})
        for bench in document["benchmarks"]
    }


def check_speedups(
    new: Dict[str, float], min_speedup: float, failures: List[str]
) -> None:
    pairs = [
        (name, name[: -len(_REF_SUFFIX)] + _SEALED_SUFFIX)
        for name in sorted(new)
        if name.endswith(_REF_SUFFIX)
    ]
    for reference, sealed in pairs:
        if sealed not in new:
            failures.append(f"{reference} has no {sealed} counterpart")
            continue
        speedup = new[reference] / new[sealed]
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"  speedup {reference[: -len(_REF_SUFFIX)]}: "
            f"sealed is {speedup:.2f}x faster than reference "
            f"(floor {min_speedup:.2f}x) [{verdict}]"
        )
        if speedup < min_speedup:
            failures.append(
                f"sealed kernel only {speedup:.2f}x faster than reference "
                f"on {reference[: -len(_REF_SUFFIX)]} (need {min_speedup:.2f}x)"
            )


def check_batch_throughput(
    new: Dict[str, float],
    events: Dict[str, int],
    min_speedup: float,
    failures: List[str],
) -> None:
    """Fleet-scale floor: for every ``<name>_batch_kernel`` /
    ``<name>_sealed_kernel`` pair that recorded per-run event counts, the
    batch kernel's aggregate events/s must be at least ``min_speedup``
    times the sealed kernel's.  Rates come from the same run, so host
    speed cancels out; workloads may differ per kernel (the batch side
    runs 1024 lanes), which is why this compares events/s rather than raw
    medians.
    """
    batch_names = [name for name in sorted(new) if name.endswith(_BATCH_SUFFIX)]
    if not batch_names:
        print("  (no *_batch_kernel benchmarks in this run)")
        return
    for batch in batch_names:
        sealed = batch[: -len(_BATCH_SUFFIX)] + _SEALED_SUFFIX
        if sealed not in new:
            failures.append(f"{batch} has no {sealed} counterpart")
            continue
        missing = [n for n in (batch, sealed) if n not in events]
        if missing:
            failures.append(
                f"{', '.join(missing)}: no extra_info['events'] recorded; "
                "cannot gate batch throughput"
            )
            continue
        batch_rate = events[batch] / new[batch]
        sealed_rate = events[sealed] / new[sealed]
        speedup = batch_rate / sealed_rate
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"  batch throughput {batch[: -len(_BATCH_SUFFIX)]}: "
            f"{batch_rate:,.0f} vs {sealed_rate:,.0f} events/s "
            f"({speedup:.0f}x, floor {min_speedup:.0f}x) [{verdict}]"
        )
        if speedup < min_speedup:
            failures.append(
                f"batch kernel only {speedup:.1f}x the sealed kernel's "
                f"aggregate events/s on {batch[: -len(_BATCH_SUFFIX)]} "
                f"(need {min_speedup:.0f}x)"
            )


def check_shard_speedup(
    new: Dict[str, float],
    extra: Dict[str, dict],
    min_speedup: float,
    failures: List[str],
) -> None:
    """Parallel-speedup floor: for every ``<name>_shard_k<K>`` /
    ``<name>_shard_mono`` pair, the K-worker partitioned run must beat
    the monolithic sealed run by ``min(min_speedup, min_speedup * K/4)``
    — i.e. the full floor at the headline K=4 lane, proportionally less
    at K=2, and never more than the flag asks for.

    CPU-aware: each shard benchmark records the recording host's
    ``os.cpu_count()`` in ``extra_info["cpus"]``; lanes the host could
    not physically parallelise (``cpus < K``, including 1-CPU CI
    containers) are reported but not enforced, as is the K=1 sanity
    lane.  A shard lane that *failed to record* cpus fails the gate —
    an unknowable host must not look like a pass.
    """
    shard_names = [
        name for name in sorted(new)
        if _SHARD_K_MARKER in name and not name.endswith(_SHARD_MONO_SUFFIX)
    ]
    if not shard_names:
        print("  (no *_shard_k* benchmarks in this run)")
        return
    for name in shard_names:
        base, _, k_text = name.rpartition(_SHARD_K_MARKER)
        try:
            num_shards = int(k_text)
        except ValueError:
            continue  # not a shard lane, just a name collision
        mono = base + _SHARD_MONO_SUFFIX
        if mono not in new:
            failures.append(f"{name} has no {mono} counterpart")
            continue
        cpus = extra.get(name, {}).get("cpus")
        if cpus is None:
            failures.append(
                f"{name}: no extra_info['cpus'] recorded; cannot tell "
                "whether the host could parallelise this lane"
            )
            continue
        speedup = new[mono] / new[name]
        if num_shards < 2 or cpus < num_shards:
            reason = ("sanity lane" if num_shards < 2
                      else f"host had {cpus} CPU(s)")
            print(
                f"  shard speedup {base} K={num_shards}: {speedup:.2f}x "
                f"vs monolithic [skipped: {reason}]"
            )
            continue
        floor = min(min_speedup, min_speedup * num_shards / 4.0)
        verdict = "ok" if speedup >= floor else "FAIL"
        print(
            f"  shard speedup {base} K={num_shards}: {speedup:.2f}x vs "
            f"monolithic (floor {floor:.2f}x, host {cpus} CPUs) [{verdict}]"
        )
        if speedup < floor:
            failures.append(
                f"{num_shards}-shard parallel run only {speedup:.2f}x the "
                f"monolithic sealed run on {base} (need {floor:.2f}x on a "
                f"{cpus}-CPU host)"
            )


def check_serve_throughput(
    new: Dict[str, float],
    extra: Dict[str, dict],
    min_speedup: float,
    failures: List[str],
) -> None:
    """Serving-layer floor: for every ``<name>_serve_coalesced`` /
    ``<name>_serve_solo`` pair that recorded per-run request counts, the
    micro-batching server's requests/s must be at least ``min_speedup``
    times the ``max_batch=1`` server's.  Both halves come from the same
    run on the same host with the same worker tier, so the ratio
    isolates coalescing itself.
    """
    coalesced_names = [
        name for name in sorted(new)
        if name.endswith(_SERVE_COALESCED_SUFFIX)
    ]
    if not coalesced_names:
        print("  (no *_serve_coalesced benchmarks in this run)")
        return
    for coalesced in coalesced_names:
        solo = coalesced[: -len(_SERVE_COALESCED_SUFFIX)] + _SERVE_SOLO_SUFFIX
        if solo not in new:
            failures.append(f"{coalesced} has no {solo} counterpart")
            continue
        missing = [
            n for n in (coalesced, solo)
            if "requests" not in extra.get(n, {})
        ]
        if missing:
            failures.append(
                f"{', '.join(missing)}: no extra_info['requests'] recorded; "
                "cannot gate serve throughput"
            )
            continue
        coalesced_rate = extra[coalesced]["requests"] / new[coalesced]
        solo_rate = extra[solo]["requests"] / new[solo]
        speedup = coalesced_rate / solo_rate
        base = coalesced[: -len(_SERVE_COALESCED_SUFFIX)]
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"  serve throughput {base}: "
            f"{coalesced_rate:,.0f} vs {solo_rate:,.0f} requests/s "
            f"({speedup:.1f}x, floor {min_speedup:.1f}x) [{verdict}]"
        )
        if speedup < min_speedup:
            failures.append(
                f"coalescing server only {speedup:.1f}x the max_batch=1 "
                f"server's requests/s on {base} (need {min_speedup:.1f}x)"
            )


def measure_trace_off_overhead(pairs: int = 15) -> Tuple[float, float, float]:
    """Paired-ratio cost of the ``run()`` dispatch vs the raw sealed loop.

    Sequential pytest-benchmark blocks can land in different host-load
    windows (frequency scaling, noisy CI neighbours), which swamps a 2%
    comparison between two ~250 ms benchmarks.  Instead, each sample here
    is a *back-to-back pair* — one ``Simulator.run()`` epoch and one
    direct ``_run`` epoch, order alternating — so both halves of a ratio
    share the same load window; the median over the pair ratios then
    discards the pairs that straddled a load change.  Returns
    ``(median_ratio, run_min_s, hotloop_min_s)``.

    Imports the stream-fabric workload from ``test_microbench_kernels``,
    so invoke with ``PYTHONPATH=src`` like the benchmarks themselves.
    """
    import gc
    from time import perf_counter

    from test_microbench_kernels import _run_stream_fabric

    def one(direct: bool) -> float:
        gc.collect()
        start = perf_counter()
        _run_stream_fabric("sealed", direct)
        return perf_counter() - start

    one(False)  # warm-up epoch, discarded
    ratios: List[float] = []
    run_min = hot_min = float("inf")
    for index in range(pairs):
        if index % 2 == 0:
            run_s, hot_s = one(False), one(True)
        else:
            hot_s, run_s = one(True), one(False)
        ratios.append(run_s / hot_s)
        run_min = min(run_min, run_s)
        hot_min = min(hot_min, hot_s)
    return statistics.median(ratios), run_min, hot_min


def check_trace_overhead(max_overhead: float, failures: List[str]) -> None:
    """Tracing switched off must cost ``<= max_overhead`` on the hot path."""
    try:
        ratio, run_min, hot_min = measure_trace_off_overhead()
    except ImportError as exc:
        failures.append(
            f"cannot measure trace overhead ({exc}); run with PYTHONPATH=src"
        )
        return
    overhead = ratio - 1.0
    verdict = "ok" if overhead <= max_overhead else "FAIL"
    print(
        f"  trace-off overhead stream_fabric: {overhead:+.1%} median over "
        f"paired epochs (cap {max_overhead:.0%}; mins: run() "
        f"{run_min * 1e3:.2f} ms, hot loop {hot_min * 1e3:.2f} ms) "
        f"[{verdict}]"
    )
    if overhead > max_overhead:
        failures.append(
            f"tracing-off dispatch costs {overhead:+.1%} over the raw "
            f"sealed hot loop (cap {max_overhead:.0%})"
        )


def check_baseline(
    new: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    failures: List[str],
) -> None:
    missing = sorted(set(baseline) - set(new))
    for name in missing:
        failures.append(f"benchmark {name} is in the baseline but was not run")
    added = sorted(set(new) - set(baseline))
    for name in added:
        print(f"  new benchmark {name}: not in baseline, skipped "
              "(re-baseline to start tracking it)")
    common = sorted(set(new) & set(baseline))
    if not common:
        failures.append("no benchmarks in common with the baseline")
        return
    ratios = {name: new[name] / baseline[name] for name in common}
    scale = statistics.median(ratios.values())
    print(f"  host speed vs baseline machine: {scale:.2f}x "
          "(medians normalised by this before comparing)")
    for name in common:
        relative = ratios[name] / scale - 1.0
        verdict = "ok" if relative <= threshold else "FAIL"
        print(
            f"  {name}: {new[name] * 1e3:.2f} ms vs baseline "
            f"{baseline[name] * 1e3:.2f} ms "
            f"({relative:+.1%} after normalisation) [{verdict}]"
        )
        if relative > threshold:
            failures.append(
                f"{name} regressed {relative:+.1%} vs baseline "
                f"(threshold {threshold:.0%})"
            )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a kernel benchmark regresses vs the baseline."
    )
    parser.add_argument("run", help="pytest-benchmark JSON of the new run")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent / "BENCH_baseline.json"),
        help="committed baseline JSON (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed normalised regression per benchmark (default: 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="required sealed-vs-reference speedup within the run "
        "(default: 2.0 — generous so noisy CI hosts do not flake; the "
        "committed results/ measurements track the real figure)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=50.0,
        metavar="X",
        help="required batch-vs-sealed aggregate events/s ratio for every "
        "*_batch_kernel / *_sealed_kernel pair (default: 50.0; skipped "
        "when the run contains no batch benchmarks)",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=2.5,
        metavar="X",
        help="required K-shard-vs-monolithic wall-clock speedup at K=4 "
        "(scaled proportionally for other K; default: 2.5; lanes the "
        "recording host could not parallelise are skipped, so 1-CPU "
        "containers still run the benchmarks without flaking the gate)",
    )
    parser.add_argument(
        "--min-serve-speedup",
        type=float,
        default=4.0,
        metavar="X",
        help="required coalesced-vs-solo requests/s ratio for every "
        "*_serve_coalesced / *_serve_solo pair (default: 4.0 — well "
        "below the ~10-18x a quiet machine shows, see results/serve; "
        "skipped when the run contains no serve benchmarks)",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="additionally fail when the public run() dispatch costs more "
        "than this fraction over the raw sealed hot loop (measured "
        "interleaved in-process, needs PYTHONPATH=src; CI uses 0.02: "
        "tracing switched off must stay under 2%% overhead)",
    )
    args = parser.parse_args(argv)

    new = load_medians(Path(args.run))
    baseline = load_medians(Path(args.baseline))
    failures: List[str] = []
    print("kernel speedup gate:")
    check_speedups(new, args.min_speedup, failures)
    print("batch throughput gate:")
    check_batch_throughput(
        new, load_events(Path(args.run)), args.min_batch_speedup, failures
    )
    extra = load_extra(Path(args.run))
    print("shard speedup gate:")
    check_shard_speedup(new, extra, args.min_shard_speedup, failures)
    print("serve throughput gate:")
    check_serve_throughput(new, extra, args.min_serve_speedup, failures)
    if args.max_trace_overhead is not None:
        print("tracing-off overhead gate:")
        check_trace_overhead(args.max_trace_overhead, failures)
    print("baseline regression gate:")
    check_baseline(new, baseline, args.threshold, failures)

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark regression(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
