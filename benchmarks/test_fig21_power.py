"""Fig 21: bipolar multiplier active power vs operands."""

from _util import run_and_check
from repro.experiments import fig21_power


def test_fig21_power(benchmark):
    run_and_check(benchmark, fig21_power.run)
